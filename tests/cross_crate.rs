//! Cross-crate integration tests: the claims that span the whole stack —
//! reusability of DSL expressions across applications (§10.2), topology
//! and semantics of every catalogue architecture, and transports.

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw::arch::caching::{caching, CachingSpec};
use csaw::arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw::arch::failover::{failover, FailoverSpec};
use csaw::arch::parallel_sharding::{parallel_sharding, ParallelShardingSpec};
use csaw::arch::sharding::{sharding, ShardingSpec};
use csaw::arch::snapshot::{snapshot, SnapshotSpec};
use csaw::arch::watched::{watched_failover, WatchedSpec};
use csaw::core::program::{LoadConfig, Program};
use csaw::core::value::Value;
use csaw::runtime::runtime::Policy;
use csaw::runtime::{LinkKind, Runtime, RuntimeConfig};
use csaw::semantics::{denote_program, topology, DenoteConfig};

fn all_architectures() -> Vec<(&'static str, Program)> {
    vec![
        ("snapshot", snapshot(&SnapshotSpec::default())),
        ("sharding", sharding(&ShardingSpec::default())),
        ("parallel_sharding", parallel_sharding(&ParallelShardingSpec::default())),
        ("caching", caching(&CachingSpec::default())),
        ("failover", failover(&FailoverSpec::default())),
        ("watched", watched_failover(&WatchedSpec::default())),
        ("checkpoint", checkpoint(&CheckpointSpec::default())),
    ]
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Every catalogue architecture compiles, has a non-trivial topology, and
/// denotes to valid event structures.
#[test]
fn catalogue_compiles_with_topology_and_semantics() {
    for (name, program) in all_architectures() {
        let cp = csaw::core::compile(program, &LoadConfig::new())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let topo = topology(&cp);
        assert!(!topo.edges.is_empty(), "{name}: empty topology");
        let sem = denote_program(&cp, &DenoteConfig::default());
        assert!(sem.startup.is_valid(), "{name}: invalid startup semantics");
        assert!(!sem.junctions.is_empty(), "{name}: no junction semantics");
        for (j, es) in &sem.junctions {
            assert!(es.is_valid(), "{name}/{j}: invalid event structure");
        }
    }
}

/// The pretty-printer renders every architecture and the LoC metric is
/// within Table-2 plausibility (tens of lines, not thousands).
#[test]
fn catalogue_pretty_prints_with_sane_loc() {
    for (name, program) in all_architectures() {
        let loc = csaw::core::pretty::loc_of_program(&program);
        assert!(
            (15..600).contains(&loc),
            "{name}: implausible DSL LoC {loc}"
        );
        let rendered = csaw::core::pretty::print_program(&program);
        assert!(rendered.contains("InstanceTypes"), "{name}");
        assert!(rendered.contains("def main"), "{name}");
    }
}

/// The §10.2 reusability claim, live: the *identical* compiled sharding
/// program runs a Redis workload and a Suricata workload — only the
/// bound `InstanceApp`s differ.
#[test]
fn same_architecture_drives_redis_and_suricata() {
    let spec = ShardingSpec::default();
    let program = sharding(&spec);
    let cp = csaw::core::compile(program, &LoadConfig::new()).unwrap();

    // Round 1: Redis apps.
    {
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        let front = csaw::redis::apps::ShardFrontApp::new(csaw::redis::apps::ShardMode::ByKey, 4);
        let requests = Arc::clone(&front.requests);
        let replies = Arc::clone(&front.replies);
        rt.bind_app("Fnt", Box::new(front));
        for i in 1..=4 {
            rt.bind_app(&format!("Bck{i}"), Box::new(csaw::redis::apps::ServerApp::new()));
        }
        rt.set_policy("Fnt", "junction", Policy::OnDemand);
        rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();
        for i in 0..8 {
            requests
                .lock()
                .push_back(csaw::redis::Command::Set(format!("k{i}"), vec![1]));
            rt.invoke("Fnt", "junction").unwrap();
        }
        assert!(wait_until(Duration::from_secs(5), || replies.lock().len() == 8));
        rt.shutdown();
    }

    // Round 2: Suricata apps, same compiled program.
    {
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        let front = csaw::suricata::apps::SteeringApp::new(4);
        let packets = Arc::clone(&front.packets);
        let counts = Arc::clone(&front.alert_counts);
        rt.bind_app("Fnt", Box::new(front));
        let mut engines = Vec::new();
        for i in 1..=4 {
            let app = csaw::suricata::apps::EngineApp::new();
            engines.push(Arc::clone(&app.engine));
            rt.bind_app(&format!("Bck{i}"), Box::new(app));
        }
        rt.set_policy("Fnt", "junction", Policy::OnDemand);
        rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();
        let cap = csaw::suricata::SyntheticCapture::generate(&csaw::suricata::CaptureSpec {
            flows: 20,
            packets: 64,
            ..Default::default()
        });
        for p in &cap.packets {
            packets.lock().push_back(p.clone());
            rt.invoke("Fnt", "junction").unwrap();
        }
        assert!(wait_until(Duration::from_secs(5), || counts.lock().len() == 64));
        let total: u64 = engines.iter().map(|e| e.lock().packets_seen).sum();
        assert_eq!(total, 64);
        rt.shutdown();
    }
}

/// The snapshot architecture works identically over the in-process and
/// TCP transports (the cURL same-VM/cross-VM contrast).
#[test]
fn snapshot_over_direct_and_tcp() {
    for kind in [LinkKind::Direct, LinkKind::Tcp] {
        let spec = SnapshotSpec::default();
        let cp = csaw::core::compile(snapshot(&spec), &LoadConfig::new()).unwrap();
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        rt.set_link("Act", "Aud", kind);
        let act = csaw::curl::apps::CurlApp::new(csaw::curl::LinkModel {
            latency: Duration::ZERO,
            bandwidth: 1 << 30,
            chunk: 64 * 1024,
        });
        let jobs = Arc::clone(&act.jobs);
        rt.bind_app("Act", Box::new(act));
        let aud = csaw::curl::apps::AuditorApp::new();
        let log = Arc::clone(&aud.log);
        rt.bind_app("Aud", Box::new(aud));
        rt.set_policy("Act", "junction", Policy::OnDemand);
        rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();
        jobs.lock().push(("u".into(), 256 * 1024));
        rt.invoke("Act", "junction").unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || !log.lock().is_empty()),
            "{kind:?}: audit record never arrived"
        );
        assert_eq!(log.lock()[0].done, 256 * 1024);
        rt.shutdown();
    }
}

/// Suricata under the checkpoint architecture: engine state survives a
/// crash through the DSL-managed checkpoint.
#[test]
fn suricata_checkpoint_restores_flow_table() {
    let spec = CheckpointSpec::default();
    let cp = csaw::core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let prim = csaw::suricata::apps::EngineApp::new();
    let engine = Arc::clone(&prim.engine);
    rt.bind_app("Prim", Box::new(prim));
    rt.bind_app("Store", Box::new(csaw::redis::apps::CheckpointStoreApp::new()));
    rt.set_policy("Prim", "checkpoint", Policy::Periodic(Duration::from_millis(20)));
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    let cap = csaw::suricata::SyntheticCapture::generate(&csaw::suricata::CaptureSpec {
        flows: 40,
        packets: 500,
        ..Default::default()
    });
    for p in &cap.packets {
        engine.lock().process(p);
    }
    let flows = engine.lock().flow_count();
    assert!(flows > 0);
    // Let a checkpoint capture the state, then crash and recover.
    std::thread::sleep(Duration::from_millis(80));
    rt.crash("Prim");
    *engine.lock() = csaw::suricata::Engine::new();
    rt.set_policy("Prim", "checkpoint", Policy::OnDemand);
    rt.restart("Prim").unwrap();
    rt.deliver_for_test("Prim", "recover", csaw::kv::Update::assert("NeedState", "driver"));
    assert!(wait_until(Duration::from_secs(5), || {
        engine.lock().flow_count() == flows
    }));
    assert_eq!(engine.lock().packets_seen, 500);
    rt.shutdown();
}

/// The Table-2 harness rows hold as a machine-checked claim.
#[test]
fn table2_shape_holds() {
    let rows = csaw_bench_table2();
    assert_eq!(rows.len(), 3);
    for (feature, dsl, redis_c) in rows {
        assert!(dsl < redis_c, "{feature}: DSL {dsl} !< direct {redis_c}");
    }
}

fn csaw_bench_table2() -> Vec<(String, usize, usize)> {
    // Recompute the essence of the Table-2 comparison without depending
    // on the bench crate: DSL LoC vs the direct control's LoC.
    let mgmt = csaw::redis::direct::loc_mgmt();
    vec![
        (
            "Checkpointing".to_string(),
            csaw::core::pretty::loc_of_program(&checkpoint(&CheckpointSpec::default())),
            csaw::redis::direct::loc_checkpoint() + mgmt,
        ),
        (
            "Sharding".to_string(),
            csaw::core::pretty::loc_of_program(&sharding(&ShardingSpec::default())),
            csaw::redis::direct::loc_sharding() + mgmt,
        ),
        (
            "Caching".to_string(),
            csaw::core::pretty::loc_of_program(&caching(&CachingSpec::default())),
            csaw::redis::direct::loc_caching() + mgmt,
        ),
    ]
}
