//! Split-brain fencing under self-healing supervision, end to end:
//! partition the preferred back-end of the supervised fail-over
//! architecture, let [`csaw::runtime::Runtime::supervise`] detect the
//! partition and promote the spare via a live reconfiguration, heal the
//! partition, and prove the fenced-out zombie primary can no longer ack
//! anything — while the identical run with fencing disabled reproduces
//! the classic split-brain anomaly the fence exists to stop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csaw::arch::watched::{promoted, supervised_failover, WatchedSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::redis::apps::ServerApp;
use csaw::redis::{Command, Reply};
use csaw::runtime::app::AppError;
use csaw::runtime::runtime::Policy;
use csaw::runtime::supervisor::RepairAction;
use csaw::runtime::{
    FailureClass, FaultPlan, HeartbeatConfig, HostCtx, InstanceApp, ReconfigSpec, RepairPolicy,
    RepairRecord, Runtime, RuntimeConfig, SupervisorConfig,
};
use csaw::semantics::{
    check_repair_jsonl, denote_program, ConformanceOptions, DenoteConfig, ProgramSemantics,
};

const FRONT_TIMEOUT: Duration = Duration::from_millis(300);

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// KV front-end for the watched architecture: `H1` pops the pending
/// command, `save("n")` ships it, `restore("m")` collects the reply.
struct FrontApp {
    requests: Arc<Mutex<VecDeque<Command>>>,
    replies: Arc<Mutex<Vec<Reply>>>,
    current: Option<Command>,
}

impl FrontApp {
    fn new() -> FrontApp {
        FrontApp {
            requests: Arc::new(Mutex::new(VecDeque::new())),
            replies: Arc::new(Mutex::new(Vec::new())),
            current: None,
        }
    }
}

impl InstanceApp for FrontApp {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), AppError> {
        if name == "H1" {
            self.current = Some(self.requests.lock().unwrap().pop_front().ok_or("no request")?);
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, AppError> {
        Ok(Value::Bytes(self.current.as_ref().ok_or("no current")?.encode()))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), AppError> {
        self.replies
            .lock()
            .unwrap()
            .push(Reply::decode(value.as_bytes().ok_or("bytes")?)?);
        Ok(())
    }
}

/// Drive one command to a reply, retrying through repair windows.
fn drive(
    rt: &Runtime,
    requests: &Arc<Mutex<VecDeque<Command>>>,
    replies: &Arc<Mutex<Vec<Reply>>>,
    cmd: Command,
    deadline: Duration,
) -> Option<Reply> {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        {
            let mut q = requests.lock().unwrap();
            if q.is_empty() {
                q.push_back(cmd.clone());
            }
        }
        let before = replies.lock().unwrap().len();
        let invoked = rt.invoke("f", "junction").is_ok();
        if invoked
            && wait_until(Duration::from_millis(400), || {
                replies.lock().unwrap().len() > before
            })
        {
            return Some(replies.lock().unwrap()[before].clone());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    None
}

/// Every directed link between the preferred back-end and the rest.
const O_LINKS: [(&str, &str); 4] = [("o", "f"), ("f", "o"), ("o", "s"), ("s", "o")];

struct Outcome {
    repair: Option<RepairRecord>,
    /// The zombie's stale `Reply` landed at the front post-heal.
    stale_reply_applied: bool,
    /// A request completed after the heal (the system stayed usable).
    post_heal_reply: Option<Reply>,
    /// Acked SETs missing from both stores.
    lost_acked_sets: usize,
    fenced_sends: u64,
    trace_jsonl: String,
    trace_dropped: u64,
    /// Epoch chain for cross-epoch conformance: A then every repair target.
    sems: Vec<ProgramSemantics>,
}

/// One full scenario: traffic → partition `o` → supervised promotion →
/// more traffic → heal → zombie pokes → one more request.
fn run_split_brain(fencing: bool, seed: u64) -> Outcome {
    let spec = WatchedSpec::default();
    let a = csaw::core::compile(supervised_failover(&spec), &LoadConfig::new()).unwrap();
    let b = csaw::core::compile(promoted(&spec), &LoadConfig::new()).unwrap();

    let rt = Runtime::new(&a, RuntimeConfig::default());
    rt.set_tracing(true);
    if !fencing {
        rt.set_fencing(false);
    }
    let front = FrontApp::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let o = ServerApp::new();
    let s = ServerApp::new();
    let store_o = Arc::clone(&o.store);
    let store_s = Arc::clone(&s.store);
    rt.bind_app("o", Box::new(o));
    rt.bind_app("s", Box::new(s));
    rt.set_policy("f", "junction", Policy::OnDemand);
    // Per-seed jitter on the promoted reply path varies the interleaving.
    rt.set_fault_plan(
        "s",
        "f",
        FaultPlan::none()
            .with_jitter(Duration::from_millis(seed % 4))
            .with_seed(seed),
    );
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();
    rt.enable_heartbeats(HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspicion: Duration::from_millis(40),
        k_missed: 2,
    });

    // Pre-partition traffic, served by the preferred back-end and
    // mirrored to the spare (the §7.2 default arm engages both).
    let mut acked_sets: Vec<(String, Vec<u8>)> = Vec::new();
    for cmd in [
        Command::Set("a".into(), b"1".to_vec()),
        Command::Incr("ctr".into()),
        Command::Set("b".into(), b"2".to_vec()),
    ] {
        let reply = drive(&rt, &requests, &replies, cmd.clone(), Duration::from_secs(8))
            .unwrap_or_else(|| panic!("seed {seed}: pre-partition {cmd:?} refused"));
        assert!(!matches!(reply, Reply::Error(_)), "seed {seed}: {reply:?}");
        if let Command::Set(k, v) = cmd {
            acked_sets.push((k, v));
        }
    }

    // The repair: promote the spare by reconfiguring to the `promoted`
    // architecture. The zombie `o` stays in the program, fenced.
    let target = b.clone();
    let policy = RepairPolicy::new().on(
        FailureClass::Partition,
        vec![RepairAction::Reconfigure(Arc::new(move |_rt, _inst| {
            (target.clone(), ReconfigSpec::default())
        }))],
    );
    let sup = rt.supervise(SupervisorConfig {
        poll: Duration::from_millis(10),
        quorum: 2,
        confirm_polls: 2,
        verify_timeout: Duration::from_secs(1),
        policy,
        ..Default::default()
    });

    // Partition the preferred back-end from everyone.
    for (from, to) in O_LINKS {
        rt.set_fault_plan(from, to, FaultPlan::none().with_drop(1.0).with_seed(seed));
    }
    assert!(
        wait_until(Duration::from_secs(10), || {
            sup.records().iter().any(|r| r.instance == "o" && r.ok)
        }),
        "seed {seed}: supervisor never repaired the partitioned primary"
    );

    // Post-promotion traffic is served by the promoted spare.
    for cmd in [Command::Set("c".into(), b"3".to_vec()), Command::Get("ctr".into())] {
        let reply = drive(&rt, &requests, &replies, cmd.clone(), Duration::from_secs(8))
            .unwrap_or_else(|| panic!("seed {seed}: post-promotion {cmd:?} refused"));
        if let Command::Set(k, v) = cmd {
            acked_sets.push((k, v));
        } else {
            assert_eq!(reply, Reply::Bulk(b"1".to_vec()), "seed {seed}");
        }
    }

    // Heal the partition and wake the zombie: re-assert its run guard so
    // it replays its last request and tries to ack the front. With the
    // fence up those sends are dead on the wire; without it they land.
    for (from, to) in O_LINKS {
        rt.set_fault_plan(from, to, FaultPlan::none());
    }
    rt.deliver_for_test("o", "junction", csaw::kv::Update::assert("Run[o]", "zombie-driver"));
    let stale_reply_applied = wait_until(Duration::from_millis(400), || {
        rt.peek_prop("f", "junction", "Reply") == Some(true)
    });

    // The healed system still serves (only meaningful with the fence:
    // a landed stale Reply wedges the front's ¬Reply guard).
    let post_heal_reply = if fencing {
        drive(&rt, &requests, &replies, Command::Get("ctr".into()), Duration::from_secs(8))
    } else {
        None
    };

    let repair = sup.records().into_iter().find(|r| r.instance == "o");
    let mut sems = vec![denote_program(&a, &DenoteConfig::default())];
    for p in sup.programs() {
        sems.push(denote_program(&p, &DenoteConfig::default()));
    }
    sup.stop();
    let fenced_sends = rt.link_stats().fenced;
    let trace_jsonl = rt.trace_jsonl();
    let trace_dropped = rt.trace_dropped();
    rt.shutdown();

    let lost_acked_sets = acked_sets
        .iter()
        .filter(|(k, v)| {
            store_o.lock().get(k) != Some(v.as_slice())
                && store_s.lock().get(k) != Some(v.as_slice())
        })
        .count();

    Outcome {
        repair,
        stale_reply_applied,
        post_heal_reply,
        lost_acked_sets,
        fenced_sends,
        trace_jsonl,
        trace_dropped,
        sems,
    }
}

/// The headline test: partition → promote → heal, and the fenced zombie
/// primary cannot ack writes or corrupt the front. The repair is fully
/// recorded, nothing acked is lost, and the whole multi-epoch trace
/// conforms to the event-structure semantics of both programs.
#[test]
fn split_brain_is_prevented_by_the_supervisor_fence() {
    let out = run_split_brain(true, 0);

    let repair = out.repair.expect("a repair record for o");
    assert_eq!(repair.class, FailureClass::Partition);
    assert_eq!(repair.action, "reconfigure");
    assert!(repair.ok, "{repair:?}");
    let epoch = repair.fence_epoch.expect("reconfigure repair carries a fence epoch");
    assert!(epoch >= 1);
    assert!(repair.mttr() > Duration::ZERO);

    assert!(!out.stale_reply_applied, "the zombie's stale Reply must be fenced out");
    assert!(out.fenced_sends >= 1, "the fence must actually have fired");
    assert_eq!(out.lost_acked_sets, 0, "acked writes lost across the repair");
    assert_eq!(
        out.post_heal_reply,
        Some(Reply::Bulk(b"1".to_vec())),
        "post-heal reads must see exactly one INCR application"
    );

    // Cross-epoch conformance: epoch 0 against the supervised program,
    // epoch 1 against the promoted one, plus the repair-event protocol.
    let sems: Vec<Option<&ProgramSemantics>> = out.sems.iter().map(Some).collect();
    assert_eq!(sems.len(), 2, "one reconfiguring repair → a two-epoch chain");
    // `deliver_for_test` injects applies with no matching send, so the
    // send/apply pairing rule is off; everything else is in force.
    let opts = ConformanceOptions { require_send_for_apply: false };
    assert_eq!(out.trace_dropped, 0, "trace evicted records; buffer too small");
    let report = check_repair_jsonl(&out.trace_jsonl, &sems, &opts).expect("trace parses");
    assert!(
        report.ok(),
        "cross-epoch violations:\n{}",
        report
            .violations
            .iter()
            .take(8)
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The ablation that proves the fence is load-bearing: the same
/// scenario with fencing disabled reproduces split-brain — the healed
/// zombie's stale `Reply` lands at the front. (Run with fencing enabled
/// this assertion is exactly the one the test above inverts.)
#[test]
fn split_brain_reproduces_with_fencing_disabled() {
    let out = run_split_brain(false, 0);
    assert!(
        out.stale_reply_applied,
        "without the fence the zombie primary's stale ack must land (split-brain)"
    );
}

/// Property-style loop: 48 seeds of link jitter around the same
/// partition → promotion → heal schedule; in every interleaving the
/// fence holds — zero stale applications, zero lost acked writes.
#[test]
fn split_brain_fence_holds_across_48_seeds() {
    let failures = Arc::new(AtomicU64::new(0));
    for chunk in (0..48u64).collect::<Vec<_>>().chunks(8) {
        std::thread::scope(|scope| {
            for &seed in chunk {
                let failures = Arc::clone(&failures);
                scope.spawn(move || {
                    let out = run_split_brain(true, seed);
                    if out.stale_reply_applied
                        || out.lost_acked_sets != 0
                        || out.fenced_sends == 0
                        || out.repair.as_ref().is_none_or(|r| !r.ok)
                    {
                        eprintln!(
                            "seed {seed}: stale={} lost={} fenced={} repair={:?}",
                            out.stale_reply_applied,
                            out.lost_acked_sets,
                            out.fenced_sends,
                            out.repair
                        );
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }
    assert_eq!(failures.load(Ordering::Relaxed), 0, "seeds with fence violations");
}
