//! Property-based tests on the core invariants, spanning crates.

use csaw::core::formula::{Dnf, DnfLit, Formula, Ternary};
use csaw::core::names::JRef;
use csaw::kv::{Table, Update};
use csaw::serial::{decode, encode, CodecConfig, HeapValue, Prim, Registry, TypeDesc};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Formulas: DNF preserves truth under every assignment
// ---------------------------------------------------------------------

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::False),
        Just(Formula::True),
        (0..4u8).prop_map(|i| Formula::prop(format!("P{i}"))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

fn eval_bool(f: &Formula, assignment: &[bool; 4]) -> bool {
    let local = |k: &str| {
        k.strip_prefix('P')
            .and_then(|i| i.parse::<usize>().ok())
            .map(|i| assignment[i])
    };
    let remote = |_: &JRef, _: &str| Ternary::Unknown;
    let sub = |_: &str, _: &str| Ternary::Unknown;
    f.eval(&local, &remote, &sub) == Ternary::True
}

fn eval_dnf(d: &Dnf, assignment: &[bool; 4]) -> bool {
    d.clauses.iter().any(|clause| {
        clause.iter().all(|lit| match lit {
            DnfLit::Prop(k, want) => {
                let i: usize = k[1..].parse().unwrap();
                assignment[i] == *want
            }
            _ => false,
        })
    })
}

proptest! {
    /// The §8.3 DNF decomposition is truth-preserving.
    #[test]
    fn dnf_preserves_truth(f in arb_formula(), bits in 0u8..16) {
        let assignment = [
            bits & 1 != 0,
            bits & 2 != 0,
            bits & 4 != 0,
            bits & 8 != 0,
        ];
        let direct = eval_bool(&f, &assignment);
        let via_dnf = eval_dnf(&f.dnf(), &assignment);
        prop_assert_eq!(direct, via_dnf, "formula {} under {:?}", f, assignment);
    }

    /// Double negation and De Morgan hold through DNF.
    #[test]
    fn dnf_double_negation(f in arb_formula(), bits in 0u8..16) {
        let assignment = [
            bits & 1 != 0,
            bits & 2 != 0,
            bits & 4 != 0,
            bits & 8 != 0,
        ];
        let nn = f.clone().not().not();
        prop_assert_eq!(eval_dnf(&f.dnf(), &assignment), eval_dnf(&nn.dnf(), &assignment));
    }
}

// ---------------------------------------------------------------------
// KV tables: update-queue semantics
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum TableOp {
    Deliver(u8, bool),
    LocalWrite(u8, bool),
    BeginEnd,
    Keep(u8),
    Flush,
}

fn arb_ops() -> impl Strategy<Value = Vec<TableOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..3u8, any::<bool>()).prop_map(|(k, v)| TableOp::Deliver(k, v)),
            (0..3u8, any::<bool>()).prop_map(|(k, v)| TableOp::LocalWrite(k, v)),
            Just(TableOp::BeginEnd),
            (0..3u8).prop_map(TableOp::Keep),
            Just(TableOp::Flush),
        ],
        0..40,
    )
}

proptest! {
    /// Whatever the op sequence: declared keys never disappear, reads
    /// never panic, and a final flush empties the pending queue.
    #[test]
    fn table_is_robust_under_op_sequences(ops in arb_ops()) {
        let mut t = Table::new();
        for k in 0..3u8 {
            t.declare_prop(format!("P{k}"), false);
        }
        for op in &ops {
            match op {
                TableOp::Deliver(k, v) => {
                    let key = format!("P{k}");
                    let u = if *v { Update::assert(key, "x") } else { Update::retract(key, "x") };
                    t.deliver(u);
                }
                TableOp::LocalWrite(k, v) => {
                    t.set_prop_local(&format!("P{k}"), *v).unwrap();
                }
                TableOp::BeginEnd => {
                    t.begin_activation();
                    t.end_activation();
                }
                TableOp::Keep(k) => t.keep(&[format!("P{k}")]),
                TableOp::Flush => t.flush_pending(),
            }
            for k in 0..3u8 {
                let key = format!("P{k}");
                prop_assert!(t.prop(&key).is_some());
            }
        }
        t.flush_pending();
        prop_assert_eq!(t.pending_len(), 0);
    }

    /// An idle junction eventually observes the last delivered value
    /// (updates apply in arrival order at the next scheduling).
    #[test]
    fn last_delivery_wins_when_idle(values in prop::collection::vec(any::<bool>(), 1..20)) {
        let mut t = Table::new();
        t.declare_prop("P", false);
        for v in &values {
            let u = if *v { Update::assert("P", "x") } else { Update::retract("P", "x") };
            t.deliver(u);
        }
        t.begin_activation();
        prop_assert_eq!(t.prop("P"), Some(*values.last().unwrap()));
    }
}

// ---------------------------------------------------------------------
// Serialization: schema-directed round trips
// ---------------------------------------------------------------------

fn arb_flat_schema_and_value() -> impl Strategy<Value = (TypeDesc, HeapValue)> {
    let field = prop_oneof![
        any::<i64>().prop_map(|v| (TypeDesc::Prim(Prim::I64), HeapValue::Int(v))),
        any::<u32>().prop_map(|v| (TypeDesc::Prim(Prim::U32), HeapValue::UInt(v as u64))),
        any::<bool>().prop_map(|v| (TypeDesc::Prim(Prim::Bool), HeapValue::Bool(v))),
        "[a-z]{0,12}".prop_map(|s| {
            (TypeDesc::CString { max_len: 64 }, HeapValue::CString(s))
        }),
        prop::collection::vec(any::<u8>(), 0..48).prop_map(|b| {
            (TypeDesc::Blob { max_len: 64 }, HeapValue::Blob(b))
        }),
    ];
    prop::collection::vec(field, 1..8).prop_map(|fields| {
        let (types, values): (Vec<_>, Vec<_>) = fields.into_iter().unzip();
        let ty = TypeDesc::Struct {
            name: "t".into(),
            fields: types
                .into_iter()
                .enumerate()
                .map(|(i, t)| (format!("f{i}"), t))
                .collect(),
        };
        (ty, HeapValue::Struct(values))
    })
}

proptest! {
    /// encode ∘ decode = id for arbitrary flat structs.
    #[test]
    fn serial_round_trips((ty, value) in arb_flat_schema_and_value()) {
        let reg = Registry::new();
        let cfg = CodecConfig::default();
        let bytes = encode(&value, &ty, &reg, &cfg).unwrap();
        let back = decode(&bytes, &ty, &reg, &cfg).unwrap();
        prop_assert_eq!(back, value);
    }

    /// Linked lists of arbitrary length round-trip (within depth).
    #[test]
    fn serial_list_round_trips(values in prop::collection::vec(any::<i64>(), 0..64)) {
        let mut reg = Registry::new();
        reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
        let ty = TypeDesc::ptr(TypeDesc::Named("node".into()));
        let cfg = CodecConfig { max_depth: 128, max_bytes: 1 << 20 };
        let list = HeapValue::list_from(values.iter().copied().map(HeapValue::Int));
        let bytes = encode(&list, &ty, &reg, &cfg).unwrap();
        let back = decode(&bytes, &ty, &reg, &cfg).unwrap();
        let got: Vec<i64> = back
            .list_values()
            .iter()
            .map(|v| match v {
                HeapValue::Int(i) => *i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        prop_assert_eq!(got, values);
    }

    /// Decoding never panics on arbitrary bytes (errors are Errs).
    #[test]
    fn serial_decode_handles_garbage(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut reg = Registry::new();
        reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
        for ty in [
            TypeDesc::Prim(Prim::I32),
            TypeDesc::CString { max_len: 16 },
            TypeDesc::ptr(TypeDesc::Named("node".into())),
        ] {
            let _ = decode(&bytes, &ty, &reg, &CodecConfig::default());
        }
    }
}

// ---------------------------------------------------------------------
// Substrate protocols
// ---------------------------------------------------------------------

proptest! {
    /// Redis commands round-trip for arbitrary keys and binary values.
    #[test]
    fn command_round_trips(key in "[ -~]{0,32}", value in prop::collection::vec(any::<u8>(), 0..256)) {
        use csaw::redis::Command;
        for cmd in [
            Command::Get(key.clone()),
            Command::Set(key.clone(), value.clone()),
            Command::Append(key.clone(), value.clone()),
            Command::Del(key.clone()),
        ] {
            prop_assert_eq!(Command::decode(&cmd.encode()).unwrap(), cmd);
        }
    }

    /// Packets round-trip for arbitrary headers and payloads.
    #[test]
    fn packet_round_trips(
        ts in any::<u64>(),
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        proto_pick in 0..3usize,
        flags in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        use csaw::suricata::{Packet, Proto};
        let p = Packet {
            ts_usec: ts,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: [Proto::Tcp, Proto::Udp, Proto::Icmp][proto_pick],
            flags,
            payload,
        };
        prop_assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    /// Store checkpoints round-trip for arbitrary contents.
    #[test]
    fn store_checkpoint_round_trips(
        entries in prop::collection::btree_map("[a-z]{1,8}", prop::collection::vec(any::<u8>(), 0..64), 0..20)
    ) {
        let mut s = csaw::redis::Store::new();
        for (k, v) in &entries {
            s.set(k, v.clone());
        }
        let blob = s.checkpoint().unwrap();
        let mut s2 = csaw::redis::Store::new();
        s2.restore(&blob).unwrap();
        prop_assert_eq!(s, s2);
    }
}

// ---------------------------------------------------------------------
// Event structures: validity of denoted programs
// ---------------------------------------------------------------------

proptest! {
    /// Every architecture in the catalogue denotes to a *valid* event
    /// structure (conflict irreflexivity under inheritance), for varying
    /// back-end counts.
    #[test]
    fn architectures_denote_validly(n in 1..5usize) {
        use csaw::arch::sharding::{sharding, ShardingSpec};
        use csaw::core::program::LoadConfig;
        use csaw::semantics::{denote_program, DenoteConfig};
        let p = sharding(&ShardingSpec { n_backends: n, ..Default::default() });
        let cp = csaw::core::compile(p, &LoadConfig::new()).unwrap();
        let sem = denote_program(&cp, &DenoteConfig::default());
        prop_assert!(sem.startup.is_valid());
        for (name, es) in &sem.junctions {
            prop_assert!(es.is_valid(), "junction {} invalid", name);
            prop_assert!(!es.is_empty(), "junction {} empty", name);
        }
    }
}
