//! Randomized property tests on the core invariants, spanning crates.
//!
//! These were originally proptest-based; the offline build vendors a
//! minimal `rand` shim instead, so each property is exercised over a
//! fixed-seed randomized corpus (deterministic across runs).

use csaw::core::formula::{Dnf, DnfLit, Formula, Ternary};
use csaw::core::names::JRef;
use csaw::kv::{Table, Update};
use csaw::serial::{decode, encode, CodecConfig, HeapValue, Prim, Registry, TypeDesc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every randomized corpus honors the unified `CSAW_SEED` override —
/// the same knob the chaos soaks and the deterministic-simulation
/// harness use — and prints its seed, so a failing test names the
/// exact corpus to reproduce.
fn corpus_rng(default: u64) -> StdRng {
    let seed = csaw::runtime::env_seed(default);
    eprintln!("corpus seed: {seed:#x} (override with CSAW_SEED)");
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------
// Formulas: DNF preserves truth under every assignment
// ---------------------------------------------------------------------

fn arb_formula(rng: &mut StdRng, depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..3) {
            0 => Formula::False,
            1 => Formula::True,
            _ => Formula::prop(format!("P{}", rng.gen_range(0..4u8))),
        };
    }
    match rng.gen_range(0..4) {
        0 => arb_formula(rng, depth - 1).not(),
        1 => arb_formula(rng, depth - 1).and(arb_formula(rng, depth - 1)),
        2 => arb_formula(rng, depth - 1).or(arb_formula(rng, depth - 1)),
        _ => arb_formula(rng, depth - 1).implies(arb_formula(rng, depth - 1)),
    }
}

fn eval_bool(f: &Formula, assignment: &[bool; 4]) -> bool {
    let local = |k: &str| {
        k.strip_prefix('P')
            .and_then(|i| i.parse::<usize>().ok())
            .map(|i| assignment[i])
    };
    let remote = |_: &JRef, _: &str| Ternary::Unknown;
    let sub = |_: &str, _: &str| Ternary::Unknown;
    f.eval(&local, &remote, &sub) == Ternary::True
}

fn eval_dnf(d: &Dnf, assignment: &[bool; 4]) -> bool {
    d.clauses.iter().any(|clause| {
        clause.iter().all(|lit| match lit {
            DnfLit::Prop(k, want) => {
                let i: usize = k[1..].parse().unwrap();
                assignment[i] == *want
            }
            _ => false,
        })
    })
}

fn assignments() -> impl Iterator<Item = [bool; 4]> {
    (0u8..16).map(|bits| {
        [
            bits & 1 != 0,
            bits & 2 != 0,
            bits & 4 != 0,
            bits & 8 != 0,
        ]
    })
}

/// The §8.3 DNF decomposition is truth-preserving.
#[test]
fn dnf_preserves_truth() {
    let mut rng = corpus_rng(0xD1F0);
    for _ in 0..200 {
        let f = arb_formula(&mut rng, 4);
        let d = f.dnf();
        for assignment in assignments() {
            let direct = eval_bool(&f, &assignment);
            let via_dnf = eval_dnf(&d, &assignment);
            assert_eq!(direct, via_dnf, "formula {} under {:?}", f, assignment);
        }
    }
}

/// Double negation and De Morgan hold through DNF.
#[test]
fn dnf_double_negation() {
    let mut rng = corpus_rng(0xD2F0);
    for _ in 0..200 {
        let f = arb_formula(&mut rng, 4);
        let nn = f.clone().not().not();
        let (d, dnn) = (f.dnf(), nn.dnf());
        for assignment in assignments() {
            assert_eq!(
                eval_dnf(&d, &assignment),
                eval_dnf(&dnn, &assignment),
                "formula {} under {:?}",
                f,
                assignment
            );
        }
    }
}

// ---------------------------------------------------------------------
// KV tables: update-queue semantics
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum TableOp {
    Deliver(u8, bool),
    LocalWrite(u8, bool),
    BeginEnd,
    Keep(u8),
    Flush,
}

fn arb_ops(rng: &mut StdRng) -> Vec<TableOp> {
    let n = rng.gen_range(0..40);
    (0..n)
        .map(|_| match rng.gen_range(0..5) {
            0 => TableOp::Deliver(rng.gen_range(0..3u8), rng.gen()),
            1 => TableOp::LocalWrite(rng.gen_range(0..3u8), rng.gen()),
            2 => TableOp::BeginEnd,
            3 => TableOp::Keep(rng.gen_range(0..3u8)),
            _ => TableOp::Flush,
        })
        .collect()
}

/// Whatever the op sequence: declared keys never disappear, reads
/// never panic, and a final flush empties the pending queue.
#[test]
fn table_is_robust_under_op_sequences() {
    let mut rng = corpus_rng(0x7AB1E);
    for _ in 0..100 {
        let ops = arb_ops(&mut rng);
        let mut t = Table::new();
        for k in 0..3u8 {
            t.declare_prop(format!("P{k}"), false);
        }
        for op in &ops {
            match op {
                TableOp::Deliver(k, v) => {
                    let key = format!("P{k}");
                    let u = if *v {
                        Update::assert(key, "x")
                    } else {
                        Update::retract(key, "x")
                    };
                    t.deliver(u);
                }
                TableOp::LocalWrite(k, v) => {
                    t.set_prop_local(&format!("P{k}"), *v).unwrap();
                }
                TableOp::BeginEnd => {
                    t.begin_activation();
                    t.end_activation();
                }
                TableOp::Keep(k) => t.keep(&[format!("P{k}")]),
                TableOp::Flush => t.flush_pending(),
            }
            for k in 0..3u8 {
                let key = format!("P{k}");
                assert!(t.prop(&key).is_some(), "{key} vanished under {ops:?}");
            }
        }
        t.flush_pending();
        assert_eq!(t.pending_len(), 0);
    }
}

/// An idle junction eventually observes the last delivered value
/// (updates apply in arrival order at the next scheduling).
#[test]
fn last_delivery_wins_when_idle() {
    let mut rng = corpus_rng(0x1D1E);
    for _ in 0..100 {
        let n = rng.gen_range(1..20);
        let values: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut t = Table::new();
        t.declare_prop("P", false);
        for v in &values {
            let u = if *v {
                Update::assert("P", "x")
            } else {
                Update::retract("P", "x")
            };
            t.deliver(u);
        }
        t.begin_activation();
        assert_eq!(t.prop("P"), Some(*values.last().unwrap()));
    }
}

// ---------------------------------------------------------------------
// Serialization: schema-directed round trips
// ---------------------------------------------------------------------

fn arb_lowercase(rng: &mut StdRng, max_len: usize) -> String {
    let n = rng.gen_range(0..=max_len);
    (0..n).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect()
}

fn arb_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| rng.gen()).collect()
}

fn arb_flat_schema_and_value(rng: &mut StdRng) -> (TypeDesc, HeapValue) {
    let n_fields = rng.gen_range(1..8);
    let fields: Vec<(TypeDesc, HeapValue)> = (0..n_fields)
        .map(|_| match rng.gen_range(0..5) {
            0 => (TypeDesc::Prim(Prim::I64), HeapValue::Int(rng.gen::<i64>())),
            1 => (
                TypeDesc::Prim(Prim::U32),
                HeapValue::UInt(rng.gen::<u32>() as u64),
            ),
            2 => (TypeDesc::Prim(Prim::Bool), HeapValue::Bool(rng.gen())),
            3 => (
                TypeDesc::CString { max_len: 64 },
                HeapValue::CString(arb_lowercase(rng, 12)),
            ),
            _ => (
                TypeDesc::Blob { max_len: 64 },
                HeapValue::Blob(arb_bytes(rng, 48)),
            ),
        })
        .collect();
    let (types, values): (Vec<_>, Vec<_>) = fields.into_iter().unzip();
    let ty = TypeDesc::Struct {
        name: "t".into(),
        fields: types
            .into_iter()
            .enumerate()
            .map(|(i, t)| (format!("f{i}"), t))
            .collect(),
    };
    (ty, HeapValue::Struct(values))
}

/// encode ∘ decode = id for arbitrary flat structs.
#[test]
fn serial_round_trips() {
    let mut rng = corpus_rng(0x5E41);
    for _ in 0..100 {
        let (ty, value) = arb_flat_schema_and_value(&mut rng);
        let reg = Registry::new();
        let cfg = CodecConfig::default();
        let bytes = encode(&value, &ty, &reg, &cfg).unwrap();
        let back = decode(&bytes, &ty, &reg, &cfg).unwrap();
        assert_eq!(back, value);
    }
}

/// Linked lists of arbitrary length round-trip (within depth).
#[test]
fn serial_list_round_trips() {
    let mut rng = corpus_rng(0x5E42);
    for _ in 0..40 {
        let n = rng.gen_range(0..64);
        let values: Vec<i64> = (0..n).map(|_| rng.gen()).collect();
        let mut reg = Registry::new();
        reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
        let ty = TypeDesc::ptr(TypeDesc::Named("node".into()));
        let cfg = CodecConfig { max_depth: 128, max_bytes: 1 << 20 };
        let list = HeapValue::list_from(values.iter().copied().map(HeapValue::Int));
        let bytes = encode(&list, &ty, &reg, &cfg).unwrap();
        let back = decode(&bytes, &ty, &reg, &cfg).unwrap();
        let got: Vec<i64> = back
            .list_values()
            .iter()
            .map(|v| match v {
                HeapValue::Int(i) => *i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(got, values);
    }
}

/// Decoding never panics on arbitrary bytes (errors are Errs).
#[test]
fn serial_decode_handles_garbage() {
    let mut rng = corpus_rng(0x5E43);
    for _ in 0..200 {
        let bytes = arb_bytes(&mut rng, 128);
        let mut reg = Registry::new();
        reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
        for ty in [
            TypeDesc::Prim(Prim::I32),
            TypeDesc::CString { max_len: 16 },
            TypeDesc::ptr(TypeDesc::Named("node".into())),
        ] {
            let _ = decode(&bytes, &ty, &reg, &CodecConfig::default());
        }
    }
}

// ---------------------------------------------------------------------
// Substrate protocols
// ---------------------------------------------------------------------

/// Redis commands round-trip for arbitrary keys and binary values.
#[test]
fn command_round_trips() {
    use csaw::redis::Command;
    let mut rng = corpus_rng(0xC0DE);
    for _ in 0..100 {
        let key: String = {
            let n = rng.gen_range(0..=32);
            (0..n).map(|_| (rng.gen_range(0x20..0x7Fu8)) as char).collect()
        };
        let value = arb_bytes(&mut rng, 256);
        for cmd in [
            Command::Get(key.clone()),
            Command::Set(key.clone(), value.clone()),
            Command::Append(key.clone(), value.clone()),
            Command::Del(key.clone()),
        ] {
            assert_eq!(Command::decode(&cmd.encode()).unwrap(), cmd);
        }
    }
}

/// Packets round-trip for arbitrary headers and payloads.
#[test]
fn packet_round_trips() {
    use csaw::suricata::{Packet, Proto};
    let mut rng = corpus_rng(0x9AC7);
    for _ in 0..100 {
        let p = Packet {
            ts_usec: rng.gen(),
            src_ip: rng.gen(),
            dst_ip: rng.gen(),
            src_port: rng.gen(),
            dst_port: rng.gen(),
            proto: [Proto::Tcp, Proto::Udp, Proto::Icmp][rng.gen_range(0..3usize)],
            flags: rng.gen(),
            payload: arb_bytes(&mut rng, 256),
        };
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }
}

/// Store checkpoints round-trip for arbitrary contents.
#[test]
fn store_checkpoint_round_trips() {
    let mut rng = corpus_rng(0x5703);
    for _ in 0..50 {
        let mut s = csaw::redis::Store::new();
        let n = rng.gen_range(0..20);
        for _ in 0..n {
            let k = arb_lowercase(&mut rng, 8);
            if k.is_empty() {
                continue;
            }
            s.set(&k, arb_bytes(&mut rng, 64));
        }
        let blob = s.checkpoint().unwrap();
        let mut s2 = csaw::redis::Store::new();
        s2.restore(&blob).unwrap();
        assert_eq!(s, s2);
    }
}

// ---------------------------------------------------------------------
// Event structures: validity of denoted programs
// ---------------------------------------------------------------------

/// Every architecture in the catalogue denotes to a *valid* event
/// structure (conflict irreflexivity under inheritance), for varying
/// back-end counts.
#[test]
fn architectures_denote_validly() {
    use csaw::arch::sharding::{sharding, ShardingSpec};
    use csaw::core::program::LoadConfig;
    use csaw::semantics::{denote_program, DenoteConfig};
    for n in 1..5usize {
        let p = sharding(&ShardingSpec { n_backends: n, ..Default::default() });
        let cp = csaw::core::compile(p, &LoadConfig::new()).unwrap();
        let sem = denote_program(&cp, &DenoteConfig::default());
        assert!(sem.startup.is_valid());
        for (name, es) in &sem.junctions {
            assert!(es.is_valid(), "junction {} invalid", name);
            assert!(!es.is_empty(), "junction {} empty", name);
        }
    }
}
