//! # csaw — C-Saw in Rust
//!
//! A from-scratch Rust reproduction of *"A Domain-Specific Language for
//! Reconfigurable, Distributed Software Architecture"* (Zhu, Zhao,
//! Sultana; IPPS 2023 / IJNC 14(1), 2024): an embedded DSL that expresses
//! a program's **architecture** — fail-over, sharding, caching,
//! checkpointing, remote auditing — as coordination over distributed
//! key-value tables, decoupled from the application logic it organizes.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the DSL: syntax, builders, validation, template expansion;
//! * [`kv`] — junction KV tables with the paper's update semantics;
//! * [`serial`] — the C-strider-analog serialization framework (§9);
//! * [`runtime`] — the libcompart-analog runtime + DSL interpreter;
//! * [`semantics`] — event-structure denotational semantics (§8);
//! * [`arch`] — the architecture catalogue (§5/§7): snapshots, sharding,
//!   parallel sharding, caching, fail-over, watched fail-over,
//!   checkpointing;
//! * [`redis`] / [`curl`] / [`suricata`] — the substrate applications the
//!   evaluation re-architects.
//!
//! ## Quickstart
//!
//! ```
//! use csaw::core::builder::fig3_program;
//! use csaw::core::program::LoadConfig;
//! use csaw::runtime::{Runtime, RuntimeConfig};
//!
//! // Compile the paper's Fig. 3 program (`H1;H2` split across two
//! // coordinated instances) and run it.
//! let compiled = csaw::core::compile(fig3_program(), &LoadConfig::new()).unwrap();
//! let rt = Runtime::new(&compiled, RuntimeConfig::default());
//! rt.run_main(vec![]).unwrap();
//! // … bind apps, invoke junctions, inspect state …
//! rt.shutdown();
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper's
//! evaluation.

pub use csaw_arch as arch;
pub use csaw_core as core;
pub use csaw_kv as kv;
pub use csaw_runtime as runtime;
pub use csaw_semantics as semantics;
pub use csaw_serial as serial;
pub use mini_curl as curl;
pub use mini_redis as redis;
pub use mini_suricata as suricata;
