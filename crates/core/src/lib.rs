//! # csaw-core — the C-Saw DSL
//!
//! This crate implements the C-Saw domain-specific language from
//! *"A Domain-Specific Language for Reconfigurable, Distributed Software
//! Architecture"* (Zhu, Zhao, Sultana). C-Saw expresses a program's
//! *architecture* — how application-logic fragments are invoked, connected
//! and synchronized — as expressions over distributed key-value tables
//! attached to *junctions* inside *instances*.
//!
//! The crate provides:
//!
//! * the abstract syntax of the DSL ([`expr::Expr`], [`formula::Formula`],
//!   [`decl::Decl`], [`program::Program`], …) mirroring Table 1 of the paper,
//! * an ergonomic builder API ([`builder`]) and macros for constructing
//!   architecture descriptions in Rust,
//! * static validation ([`validate`]) of the paper's well-formedness rules
//!   (case-arm constraints, declaration scoping, no self-communication,
//!   no host code inside transaction blocks, …),
//! * compile-time *template expansion* ([`expand`]): function inlining and
//!   `for`-loop unrolling over compile-time sets, producing a
//!   [`program::CompiledProgram`] that the `csaw-runtime` crate interprets,
//! * a pretty-printer ([`pretty`]) that renders programs in (an ASCII
//!   rendition of) the paper's concrete syntax, used by the Table-2
//!   lines-of-code study.
//!
//! The execution semantics live in `csaw-runtime`; the denotational
//! event-structure semantics (§8 of the paper) live in `csaw-semantics`.

pub mod builder;
pub mod decl;
pub mod diff;
pub mod error;
pub mod expand;
pub mod expr;
pub mod formula;
pub mod macros;
pub mod names;
pub mod plan;
pub mod pretty;
pub mod program;
pub mod validate;
pub mod value;

pub use decl::{Decl, Param, ParamKind};
pub use diff::{compose_diffs, diff_programs, InstanceDiff, JunctionChange, NetChange, ProgramDiff};
pub use error::{CoreError, CoreResult};
pub use expr::{Arg, CaseArm, CaseGuard, Expr, ForOp, Terminator};
pub use formula::Formula;
pub use names::{Ident, JRef, NameRef, PropRef, SetElem, SetRef};
pub use plan::{
    plan_break_before_make, plan_reconfiguration, Plan, PlanConstraints, PlanError, PlanPhase,
};
pub use program::{
    CompiledInstance, CompiledProgram, FuncDef, InstanceType, JunctionDef, LoadConfig, MainDef,
    Program,
};
pub use value::Value;

/// Compile a program: validate it, then expand all templates
/// (function calls, `for` loops, derived declarations) against the
/// load-time configuration.
pub fn compile(program: Program, config: &LoadConfig) -> CoreResult<CompiledProgram> {
    validate::validate(&program)?;
    let expanded = expand::expand(program, config)?;
    validate::validate_compiled(&expanded)?;
    Ok(expanded)
}
