//! The expression language `E` (Table 1) plus terminators `T`.

use std::time::Duration;

use crate::formula::Formula;
use crate::names::{Ident, JRef, NameRef, PropRef, SetElem, SetRef};
use crate::value::Value;

/// A terminator for a `case` arm: `break` leaves the case, `next` retries
/// the case matching only after the arm that succeeded, `reconsider`
/// re-matches the case and fails if the match is unchanged (§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Leave the case expression.
    Break,
    /// Retry the case, matching only arms after the one that succeeded.
    Next,
    /// Re-match the case; fail if no different match is possible.
    Reconsider,
}

/// The operator threaded through a `for` loop's unrolling
/// (`op ∈ {∨, ∧, ;, +, ∥, otherwise[t]}` — §6, *Template-based recursion*).
/// The formula operators ∨/∧ live on [`Formula::For`].
#[derive(Clone, Debug, PartialEq)]
pub enum ForOp {
    /// Sequential composition `;`.
    Seq,
    /// Parallel composition `+`.
    Par,
    /// Replicated parallel composition `∥`.
    Rep,
    /// Failure-handling composition `otherwise[t]`; the optional timeout is
    /// a reference to a timeout parameter.
    Otherwise(Option<NameRef>),
}

/// An argument to a function call, `start`, or `main`.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Reference to a name in scope (parameter, set, idx, prop, data…).
    Name(NameRef),
    /// A junction reference.
    Junction(JRef),
    /// A literal set (e.g. `{b1::serve, b2::serve}` in Fig. 12).
    SetLit(Vec<SetElem>),
    /// A literal proposition name (passed to templates, cf. `Watch`).
    Prop(Ident),
    /// A literal host value (timeouts in `main`, scalar config).
    Value(Value),
    /// `⌊k * t⌉`: host-computed scaling of a timeout parameter, the only
    /// host-expression argument form the paper uses (Fig. 12's
    /// `reactivate(⌊3 ∗ t⌉)`).
    ScaledTimeout {
        /// Timeout parameter being scaled.
        base: NameRef,
        /// Numerator of the scale factor.
        num: u32,
        /// Denominator of the scale factor.
        den: u32,
    },
}

impl Arg {
    /// Literal duration argument.
    pub fn duration(d: Duration) -> Arg {
        Arg::Value(Value::Duration(d))
    }
    /// Reference to a parameter in the caller's scope.
    pub fn name(n: impl Into<String>) -> Arg {
        Arg::Name(NameRef::var(n))
    }
}

/// One arm of a `case` expression.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseArm {
    /// The arm's guard formula, possibly `for`-quantified (Fig. 10 uses
    /// `for b̃ ∈ backends ¬Call ∧ InitBackend[b̃] ⇒ …`, which expands to one
    /// arm per set element).
    pub guard: CaseGuard,
    /// The arm body.
    pub body: Expr,
    /// How the arm terminates.
    pub terminator: Terminator,
}

/// Guard of a case arm.
#[derive(Clone, Debug, PartialEq)]
pub enum CaseGuard {
    /// Ordinary formula guard.
    Plain(Formula),
    /// `for x̃ ∈ S F[x̃] ⇒ E[x̃]`: expands into one arm per element.
    For {
        /// Bound symbol.
        var: Ident,
        /// Iterated set.
        set: SetRef,
        /// Guard with `var` free.
        formula: Formula,
    },
}

/// A C-Saw expression (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `⌊H⌉{V⃗}`: invoke host-language code registered under `name`.
    /// Only the symbols in `writes` may be written by the host (§4).
    Host {
        /// Registered host-function name.
        name: Ident,
        /// Writable junction-state symbols (`{V⃗}`).
        writes: Vec<Ident>,
    },
    /// `⟨E⟩`: fate scope — if part of the expression fails, the whole
    /// scope fails unless handled (§6).
    Scope(Box<Expr>),
    /// `⟨|E|⟩`: transaction — on failure the KV table rolls back to the
    /// state at entry. Host code is not allowed inside.
    Transaction(Box<Expr>),
    /// `return`: terminate the junction activation successfully. It
    /// "leaves a fate scope" (§6), and because functions are inlined
    /// templates it leaves the *junction* even when written inside a
    /// function body.
    Return,
    /// `write(n, γ)`: push named datum `n` to junction γ's table.
    Write {
        /// Name of the datum (must be `save`d, i.e. *named data*).
        data: NameRef,
        /// Destination junction.
        to: JRef,
    },
    /// `wait [n⃗] F`: block until `F` holds, admitting external updates to
    /// the propositions of `F` and the listed data keys while blocked.
    Wait {
        /// Data keys whose updates are admitted while waiting.
        data: Vec<NameRef>,
        /// The awaited formula.
        formula: Formula,
    },
    /// `save(…, n)`: serialize host state into table entry `n`.
    Save {
        /// Destination datum.
        data: NameRef,
    },
    /// `restore(n, …)`: deserialize table entry `n` back into host state.
    /// Restoring `undef` is an error.
    Restore {
        /// Source datum.
        data: NameRef,
    },
    /// `E1; E2; …`: sequential composition.
    Seq(Vec<Expr>),
    /// `E1 + E2 + …`: parallel composition.
    Par(Vec<Expr>),
    /// `∥n E`: replicated parallel composition (n concurrent copies).
    Rep {
        /// Replication factor.
        n: u32,
        /// Replicated body.
        body: Box<Expr>,
    },
    /// `E1 otherwise[t] E2`: run `E1` with deadline `t`; on failure or
    /// timeout run `E2`. With no `t`, `E2` handles failures only.
    Otherwise {
        /// Attempted expression.
        body: Box<Expr>,
        /// Optional timeout parameter.
        timeout: Option<NameRef>,
        /// Failure handler.
        handler: Box<Expr>,
    },
    /// `stop ι`: stop a running instance (fails if not running).
    Stop(NameRef),
    /// `start ι γ1(p⃗) …`: start an instance, binding arguments to its
    /// junctions' parameters (fails if already running).
    Start {
        /// Instance to start.
        instance: NameRef,
        /// Per-junction argument lists. A `None` junction name binds the
        /// type's sole junction (Fig. 3's `start f (g)`).
        junction_args: Vec<(Option<Ident>, Vec<Arg>)>,
    },
    /// `assert [γ] P`: set proposition P true at γ (empty `[]` = locally).
    Assert {
        /// Destination junction; `None` = local.
        at: Option<JRef>,
        /// The proposition.
        prop: PropRef,
    },
    /// `retract [γ] P`: set proposition P false at γ.
    Retract {
        /// Destination junction; `None` = local.
        at: Option<JRef>,
        /// The proposition.
        prop: PropRef,
    },
    /// `f(p⃗)`: call a function template (inlined at compile time).
    Call {
        /// Function name.
        func: Ident,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// `verify G`: assert a (possibly junction-relative) safety condition;
    /// errors if it evaluates false *or unknown* (ternary logic, §6).
    Verify(Formula),
    /// No-op; can only succeed.
    Skip,
    /// Branch back to the beginning of the junction; bounded per
    /// scheduling.
    Retry,
    /// `keep`: discard pending parallel KV updates for the given keys
    /// (idempotent; props and data).
    Keep {
        /// Keys whose pending updates to drop.
        keys: Vec<NameRef>,
    },
    /// `case { F1 ⇒ E1; T1 … otherwise ⇒ En }`.
    Case {
        /// The guarded arms, tried top-down.
        arms: Vec<CaseArm>,
        /// The mandatory `otherwise` arm.
        otherwise: Box<Expr>,
    },
    /// `if F then E [else E]` — sugar used pervasively in the paper's
    /// examples (Figs. 4, 6, 10); desugars to a two-arm case.
    If {
        /// Condition.
        cond: Formula,
        /// Then-branch.
        then: Box<Expr>,
        /// Optional else-branch.
        els: Option<Box<Expr>>,
    },
    /// `for x̃ ∈ S op E[x̃]`: template recursion, unrolled at compile time.
    For {
        /// Bound symbol.
        var: Ident,
        /// Iterated set.
        set: SetRef,
        /// Composition operator.
        op: ForOp,
        /// Body with `var` free.
        body: Box<Expr>,
    },
    /// Marker inserted by expansion around unrolled `;`-loops so that
    /// `break` exits the loop early (§6: "Using break we can exit the
    /// loop early").
    LoopScope(Box<Expr>),
    /// `break` in statement position (loop exit).
    Break,
    /// `next` in statement position (only valid as an arm terminator; kept
    /// in the AST for pretty-printing fidelity).
    Next,
    /// `reconsider` in statement position (valid inside a case arm body,
    /// cf. Fig. 4 line ➎).
    Reconsider,
}

impl Expr {
    /// `self; other`
    pub fn then(self, other: Expr) -> Expr {
        match self {
            Expr::Seq(mut v) => {
                v.push(other);
                Expr::Seq(v)
            }
            first => Expr::Seq(vec![first, other]),
        }
    }

    /// `self otherwise[t] handler`
    pub fn otherwise(self, timeout: Option<NameRef>, handler: Expr) -> Expr {
        Expr::Otherwise {
            body: Box::new(self),
            timeout,
            handler: Box::new(handler),
        }
    }

    /// Visit every sub-expression (including `self`), pre-order.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Scope(e)
            | Expr::Transaction(e)
            | Expr::Rep { body: e, .. }
            | Expr::For { body: e, .. }
            | Expr::LoopScope(e) => e.walk(f),
            Expr::Seq(es) | Expr::Par(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            Expr::Otherwise { body, handler, .. } => {
                body.walk(f);
                handler.walk(f);
            }
            Expr::Case { arms, otherwise } => {
                for arm in arms {
                    arm.body.walk(f);
                }
                otherwise.walk(f);
            }
            Expr::If { then, els, .. } => {
                then.walk(f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Count of AST nodes (used in tests and the LoC study).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_flattens_sequences() {
        let e = Expr::Skip.then(Expr::Return).then(Expr::Break);
        match e {
            Expr::Seq(v) => assert_eq!(v.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Seq(vec![
            Expr::Skip,
            Expr::Case {
                arms: vec![CaseArm {
                    guard: CaseGuard::Plain(Formula::prop("Work")),
                    body: Expr::Retry,
                    terminator: Terminator::Break,
                }],
                otherwise: Box::new(Expr::Skip),
            },
        ]);
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        // Seq, Skip, Case, Retry, Skip(otherwise)
        assert_eq!(count, 5);
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn otherwise_structure() {
        let e = Expr::Otherwise {
            body: Box::new(Expr::Skip),
            timeout: Some(NameRef::var("t")),
            handler: Box::new(Expr::Call {
                func: "complain".into(),
                args: vec![],
            }),
        };
        if let Expr::Otherwise { timeout, .. } = &e {
            assert_eq!(timeout.as_ref().unwrap().raw(), "t");
        } else {
            unreachable!()
        }
    }
}
