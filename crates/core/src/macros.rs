//! Macro front-end for the DSL's formula sub-language.
//!
//! The builder API constructs formulas with method chains; these macros
//! let guards and `wait`/`verify` conditions read like the paper:
//!
//! ```
//! use csaw_core::formula;
//! use csaw_core::formula::Formula;
//!
//! // guard ¬Starting ∧ Req           (Fig. 13)
//! let g = formula!(!Starting && Req);
//! // Backend[tgt] indexed propositions
//! let b = formula!(Backend[tgt]);
//! // S(o) — liveness (Fig. 16)
//! let l = formula!(S(o));
//! assert_eq!(g, Formula::prop("Starting").not().and(Formula::prop("Req")));
//! ```
//!
//! Grammar (binary operators associate right; mixed operators need
//! parentheses, matching how the paper parenthesizes):
//!
//! ```text
//! F ::= atom | !F | (F) | F && F | F || F | F -> F
//! atom ::= ident | ident[ident] | S(ident) | false | true
//! ```

/// Build a [`crate::formula::Formula`] from paper-like syntax. See the
/// module docs of [`crate::macros`].
#[macro_export]
macro_rules! formula {
    // Parenthesized
    ( ( $($inner:tt)+ ) ) => { $crate::formula!($($inner)+) };
    // Negation of an atom/group followed by a binary operator: negation
    // binds tighter than the connectives.
    ( ! $p:ident && $($rest:tt)+ ) => {
        $crate::formula::Formula::prop(stringify!($p)).not().and($crate::formula!($($rest)+))
    };
    ( ! $p:ident || $($rest:tt)+ ) => {
        $crate::formula::Formula::prop(stringify!($p)).not().or($crate::formula!($($rest)+))
    };
    ( ! $p:ident -> $($rest:tt)+ ) => {
        $crate::formula::Formula::prop(stringify!($p)).not().implies($crate::formula!($($rest)+))
    };
    ( ! $p:ident [ $ix:ident ] && $($rest:tt)+ ) => {
        $crate::formula::Formula::prop_at(stringify!($p), $crate::names::NameRef::var(stringify!($ix)))
            .not().and($crate::formula!($($rest)+))
    };
    ( ! $p:ident [ $ix:ident ] || $($rest:tt)+ ) => {
        $crate::formula::Formula::prop_at(stringify!($p), $crate::names::NameRef::var(stringify!($ix)))
            .not().or($crate::formula!($($rest)+))
    };
    ( ! ( $($inner:tt)+ ) && $($rest:tt)+ ) => {
        $crate::formula!($($inner)+).not().and($crate::formula!($($rest)+))
    };
    ( ! ( $($inner:tt)+ ) || $($rest:tt)+ ) => {
        $crate::formula!($($inner)+).not().or($crate::formula!($($rest)+))
    };
    ( ! ( $($inner:tt)+ ) -> $($rest:tt)+ ) => {
        $crate::formula!($($inner)+).not().implies($crate::formula!($($rest)+))
    };
    // Negation of the whole remainder (atom or group in tail position).
    ( ! $($rest:tt)+ ) => { $crate::formula!($($rest)+).not() };
    // Constants
    ( false ) => { $crate::formula::Formula::False };
    ( true ) => { $crate::formula::Formula::True };
    // Liveness S(ι)
    ( S ( $i:ident ) ) => {
        $crate::formula::Formula::live(stringify!($i))
    };
    ( S ( $i:ident ) && $($rest:tt)+ ) => {
        $crate::formula::Formula::live(stringify!($i)).and($crate::formula!($($rest)+))
    };
    ( S ( $i:ident ) || $($rest:tt)+ ) => {
        $crate::formula::Formula::live(stringify!($i)).or($crate::formula!($($rest)+))
    };
    ( S ( $i:ident ) -> $($rest:tt)+ ) => {
        $crate::formula::Formula::live(stringify!($i)).implies($crate::formula!($($rest)+))
    };
    // Indexed proposition, then operator
    ( $p:ident [ $ix:ident ] && $($rest:tt)+ ) => {
        $crate::formula::Formula::prop_at(
            stringify!($p),
            $crate::names::NameRef::var(stringify!($ix)),
        ).and($crate::formula!($($rest)+))
    };
    ( $p:ident [ $ix:ident ] || $($rest:tt)+ ) => {
        $crate::formula::Formula::prop_at(
            stringify!($p),
            $crate::names::NameRef::var(stringify!($ix)),
        ).or($crate::formula!($($rest)+))
    };
    ( $p:ident [ $ix:ident ] -> $($rest:tt)+ ) => {
        $crate::formula::Formula::prop_at(
            stringify!($p),
            $crate::names::NameRef::var(stringify!($ix)),
        ).implies($crate::formula!($($rest)+))
    };
    ( $p:ident [ $ix:ident ] ) => {
        $crate::formula::Formula::prop_at(
            stringify!($p),
            $crate::names::NameRef::var(stringify!($ix)),
        )
    };
    // Plain proposition, then operator
    ( $p:ident && $($rest:tt)+ ) => {
        $crate::formula::Formula::prop(stringify!($p)).and($crate::formula!($($rest)+))
    };
    ( $p:ident || $($rest:tt)+ ) => {
        $crate::formula::Formula::prop(stringify!($p)).or($crate::formula!($($rest)+))
    };
    ( $p:ident -> $($rest:tt)+ ) => {
        $crate::formula::Formula::prop(stringify!($p)).implies($crate::formula!($($rest)+))
    };
    ( $p:ident ) => { $crate::formula::Formula::prop(stringify!($p)) };
    // Parenthesized left operand
    ( ( $($l:tt)+ ) && $($rest:tt)+ ) => {
        $crate::formula!($($l)+).and($crate::formula!($($rest)+))
    };
    ( ( $($l:tt)+ ) || $($rest:tt)+ ) => {
        $crate::formula!($($l)+).or($crate::formula!($($rest)+))
    };
    ( ( $($l:tt)+ ) -> $($rest:tt)+ ) => {
        $crate::formula!($($l)+).implies($crate::formula!($($rest)+))
    };
}

#[cfg(test)]
mod tests {
    use crate::formula::Formula;
    use crate::names::NameRef;

    #[test]
    fn atoms() {
        assert_eq!(formula!(Work), Formula::prop("Work"));
        assert_eq!(formula!(false), Formula::False);
        assert_eq!(formula!(true), Formula::True);
        assert_eq!(formula!(S(o)), Formula::live("o"));
        assert_eq!(
            formula!(Backend[tgt]),
            Formula::prop_at("Backend", NameRef::var("tgt"))
        );
    }

    #[test]
    fn negation_and_connectives() {
        assert_eq!(formula!(!Work), Formula::prop("Work").not());
        assert_eq!(
            formula!(!Starting && Req),
            Formula::prop("Starting").not().and(Formula::prop("Req"))
        );
        assert_eq!(
            formula!(A || B),
            Formula::prop("A").or(Formula::prop("B"))
        );
        assert_eq!(
            formula!(A -> B),
            Formula::prop("A").implies(Formula::prop("B"))
        );
    }

    #[test]
    fn paper_guards() {
        // Fig. 14's serve guard: Activating ∨ (Active ∧ Running[self])
        let g = formula!(Activating || (Active && Running[me]));
        assert_eq!(
            g,
            Formula::prop("Activating").or(
                Formula::prop("Active")
                    .and(Formula::prop_at("Running", NameRef::var("me")))
            )
        );
        // Fig. 16's cs guard: ¬S(o) ∧ S(s) ∧ S(f) — right associated.
        let w = formula!(!(S(o)) && S(s) && S(f));
        assert_eq!(
            w,
            Formula::live("o")
                .not()
                .and(Formula::live("s").and(Formula::live("f")))
        );
    }

    #[test]
    fn parenthesized_left_operands() {
        let f = formula!((A && B) -> C);
        assert_eq!(
            f,
            Formula::prop("A")
                .and(Formula::prop("B"))
                .implies(Formula::prop("C"))
        );
    }

    #[test]
    fn nested_negation() {
        assert_eq!(formula!(!!A), Formula::prop("A").not().not());
        assert_eq!(
            formula!(!(A || B)),
            Formula::prop("A").or(Formula::prop("B")).not()
        );
    }
}
