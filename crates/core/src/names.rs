//! Names and references used throughout the DSL.
//!
//! The paper names several kinds of entity: propositions, data, instances,
//! junctions, sets and variables (definition parameters, `for`-bound
//! symbols, and `idx` cursors). References to them fall into two classes:
//! *literals*, fixed in the program text, and *variables*, resolved either
//! at compile time (function parameters, `for`-bound symbols — both are
//! template-expanded) or at run time (definition parameters and `idx`
//! cursors).

use std::fmt;

/// Plain identifier. The DSL has a flat namespace per kind of entity.
pub type Ident = String;

/// A name that is either a literal identifier or a variable to be resolved.
///
/// After [`crate::expand::expand`] runs, the only remaining `Var`s refer to
/// definition parameters and `idx` cursors, both resolved by the runtime.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NameRef {
    /// A literal name fixed in the program text.
    Lit(Ident),
    /// A variable: definition parameter, `for`-bound symbol, or `idx`.
    Var(Ident),
}

impl NameRef {
    /// Literal constructor.
    pub fn lit(s: impl Into<String>) -> Self {
        NameRef::Lit(s.into())
    }
    /// Variable constructor.
    pub fn var(s: impl Into<String>) -> Self {
        NameRef::Var(s.into())
    }
    /// The literal name, if this reference is already resolved.
    pub fn as_lit(&self) -> Option<&str> {
        match self {
            NameRef::Lit(s) => Some(s),
            NameRef::Var(_) => None,
        }
    }
    /// The variable name, if unresolved.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            NameRef::Var(s) => Some(s),
            NameRef::Lit(_) => None,
        }
    }
    /// The underlying identifier regardless of class.
    pub fn raw(&self) -> &str {
        match self {
            NameRef::Lit(s) | NameRef::Var(s) => s,
        }
    }
}

impl fmt::Display for NameRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameRef::Lit(s) => write!(f, "{s}"),
            NameRef::Var(s) => write!(f, "{s}"),
        }
    }
}

/// A reference to a junction, the unit of addressability in C-Saw.
///
/// Junction names are always fully qualified (`instance::junction`), but an
/// instance with a single junction may be addressed by its instance name
/// alone, and the special names `me::junction` / `me::instance::j` refer to
/// the containing junction and to sibling junctions of the containing
/// instance respectively (§6, "Instance and junction references").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum JRef {
    /// `instance::junction`, where the instance part may be a variable.
    Qualified { instance: NameRef, junction: Ident },
    /// A bare reference resolved at run time: either an instance with a
    /// single junction, or a parameter/`idx` holding a junction target.
    Bare(NameRef),
    /// `me::junction` — the containing junction.
    MyJunction,
    /// `me::instance` — the containing instance (for `stop`, liveness…).
    MyInstance,
    /// `me::instance::<j>` — a sibling junction of the containing instance.
    Sibling(Ident),
}

impl JRef {
    /// `instance::junction` with a literal instance name.
    pub fn qualified(instance: impl Into<String>, junction: impl Into<String>) -> Self {
        JRef::Qualified {
            instance: NameRef::lit(instance),
            junction: junction.into(),
        }
    }
    /// Bare literal reference (single-junction instance).
    pub fn instance(name: impl Into<String>) -> Self {
        JRef::Bare(NameRef::lit(name))
    }
    /// Bare variable reference (parameter or `idx` cursor).
    pub fn var(name: impl Into<String>) -> Self {
        JRef::Bare(NameRef::var(name))
    }
}

impl fmt::Display for JRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JRef::Qualified { instance, junction } => write!(f, "{instance}::{junction}"),
            JRef::Bare(n) => write!(f, "{n}"),
            JRef::MyJunction => write!(f, "me::junction"),
            JRef::MyInstance => write!(f, "me::instance"),
            JRef::Sibling(j) => write!(f, "me::instance::{j}"),
        }
    }
}

/// A (possibly indexed) proposition reference, e.g. `Work` or `Backend[tgt]`.
///
/// Both the proposition name and the index may be variables; `for`-bound
/// indices are substituted away during expansion, `idx`/parameter indices
/// resolve at run time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PropRef {
    /// Proposition name (may be a function parameter, cf. `Watch` in §7.4).
    pub name: NameRef,
    /// Optional index into a set-derived family of propositions.
    pub index: Option<NameRef>,
}

impl PropRef {
    /// Unindexed literal proposition.
    pub fn plain(name: impl Into<String>) -> Self {
        PropRef {
            name: NameRef::lit(name),
            index: None,
        }
    }
    /// Indexed proposition `name[index]` with a variable index.
    pub fn indexed(name: impl Into<String>, index: NameRef) -> Self {
        PropRef {
            name: NameRef::lit(name),
            index: Some(index),
        }
    }
    /// The flattened table key, if fully resolved (e.g. `Backend[b1]`).
    pub fn as_key(&self) -> Option<String> {
        let name = self.name.as_lit()?;
        match &self.index {
            None => Some(name.to_string()),
            Some(ix) => ix.as_lit().map(|i| format!("{name}[{i}]")),
        }
    }
}

impl fmt::Display for PropRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.index {
            None => write!(f, "{}", self.name),
            Some(ix) => write!(f, "{}[{ix}]", self.name),
        }
    }
}

/// An element of a compile-time set.
///
/// Sets may contain "any kind of data but not other sets" (§6); in practice
/// the paper's sets hold instance references, junction references, and
/// scalar data used as shard labels.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SetElem {
    /// An instance name (e.g. `{Bck1, …, BckN}` in Fig. 5).
    Instance(Ident),
    /// A fully-qualified junction (e.g. `{b1::serve, b2::serve}` in Fig. 12).
    Junction(Ident, Ident),
    /// Scalar string datum.
    Str(String),
    /// Scalar integer datum.
    Int(i64),
}

impl SetElem {
    /// Canonical text used to index proposition families and to substitute
    /// `for`-bound symbols.
    pub fn key(&self) -> String {
        match self {
            SetElem::Instance(i) => i.clone(),
            SetElem::Junction(i, j) => format!("{i}::{j}"),
            SetElem::Str(s) => s.clone(),
            SetElem::Int(i) => i.to_string(),
        }
    }
}

impl fmt::Display for SetElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// A reference to a set: literal (`{Bck1, Bck2}`), or by name (declared via
/// `set`/`subset`, passed as a parameter, or provided at load time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetRef {
    /// Literal set, fixed in the program text.
    Lit(Vec<SetElem>),
    /// Named set (a `set`/`subset` declaration or a set-valued parameter).
    Named(NameRef),
}

impl SetRef {
    /// Literal set of instance names.
    pub fn instances<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        SetRef::Lit(names.into_iter().map(|n| SetElem::Instance(n.into())).collect())
    }
}

impl fmt::Display for SetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetRef::Lit(elems) => {
                write!(f, "{{")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            SetRef::Named(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_ref_accessors() {
        let l = NameRef::lit("Bck1");
        let v = NameRef::var("tgt");
        assert_eq!(l.as_lit(), Some("Bck1"));
        assert_eq!(l.as_var(), None);
        assert_eq!(v.as_var(), Some("tgt"));
        assert_eq!(v.as_lit(), None);
        assert_eq!(l.raw(), "Bck1");
        assert_eq!(v.raw(), "tgt");
    }

    #[test]
    fn prop_ref_keys() {
        assert_eq!(PropRef::plain("Work").as_key().unwrap(), "Work");
        let indexed = PropRef::indexed("Backend", NameRef::lit("b1"));
        assert_eq!(indexed.as_key().unwrap(), "Backend[b1]");
        let unresolved = PropRef::indexed("Backend", NameRef::var("tgt"));
        assert_eq!(unresolved.as_key(), None);
    }

    #[test]
    fn jref_display() {
        assert_eq!(JRef::qualified("f", "b").to_string(), "f::b");
        assert_eq!(JRef::instance("Aud").to_string(), "Aud");
        assert_eq!(JRef::MyJunction.to_string(), "me::junction");
        assert_eq!(JRef::Sibling("serve".into()).to_string(), "me::instance::serve");
    }

    #[test]
    fn set_elem_keys() {
        assert_eq!(SetElem::Instance("b1".into()).key(), "b1");
        assert_eq!(SetElem::Junction("b1".into(), "serve".into()).key(), "b1::serve");
        assert_eq!(SetElem::Int(7).key(), "7");
        assert_eq!(SetElem::Str("x".into()).key(), "x");
    }

    #[test]
    fn set_ref_display() {
        let s = SetRef::instances(["b1", "b2"]);
        assert_eq!(s.to_string(), "{b1, b2}");
        assert_eq!(SetRef::Named(NameRef::var("backends")).to_string(), "backends");
    }
}
