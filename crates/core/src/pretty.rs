//! Pretty-printer: renders programs in an ASCII rendition of the paper's
//! concrete syntax.
//!
//! Besides readability and debugging, the printer backs the Table-2
//! lines-of-code study: [`loc_of_program`] counts the printed lines of an
//! architecture description the same way the paper counts DSL LoC.

use std::fmt::Write as _;

use crate::decl::Decl;
use crate::expr::{Arg, CaseGuard, Expr, ForOp, Terminator};
use crate::names::SetRef;
use crate::program::{CompiledProgram, FuncDef, JunctionDef, Program};

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "InstanceTypes = {{{}}}",
        p.types.iter().map(|t| t.name.as_str()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(
        out,
        "Instances = {{{}}}",
        p.instances
            .iter()
            .map(|(i, t)| format!("{i} : {t}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "def main({}) <| ",
        p.main.params.iter().map(|x| x.name.as_str()).collect::<Vec<_>>().join(", ")
    );
    print_expr(&p.main.body, 1, &mut out);
    for f in &p.functions {
        print_func(f, &mut out);
    }
    for t in &p.types {
        for j in &t.junctions {
            print_junction(&t.name, j, &mut out);
        }
    }
    out
}

/// Render one junction definition.
pub fn print_junction(type_name: &str, j: &JunctionDef, out: &mut String) {
    let params = j.params.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(", ");
    let _ = writeln!(out, "def {type_name}::{}({params}) <|", j.name);
    for d in &j.decls {
        let _ = writeln!(out, "| {}", print_decl(d));
    }
    print_expr(&j.body, 1, out);
}

fn print_func(f: &FuncDef, out: &mut String) {
    let params = f.params.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(", ");
    let _ = writeln!(out, "def {}({params}) <|", f.name);
    for d in &f.decls {
        let _ = writeln!(out, "| {}", print_decl(d));
    }
    print_expr(&f.body, 1, out);
}

/// Render a declaration.
pub fn print_decl(d: &Decl) -> String {
    match d {
        Decl::Prop { prop, init } => {
            if *init {
                format!("init prop {prop}")
            } else {
                format!("init prop !{prop}")
            }
        }
        Decl::Data { name } => format!("init data {name}"),
        Decl::Guard(f) => format!("guard {f}"),
        Decl::Set { name, elems } => match elems {
            Some(e) => format!("set {name} = {}", SetRef::Lit(e.clone())),
            None => format!("set {name}"),
        },
        Decl::Subset { name, of } => format!("subset {name} of {of}"),
        Decl::Idx { name, of } => format!("idx {name} of {of}"),
        Decl::ForProps { var, set, prop, init } => {
            let neg = if *init { "" } else { "!" };
            format!("for {var} in {set} init prop {neg}{prop}")
        }
    }
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn line(n: usize, s: &str, out: &mut String) {
    indent(n, out);
    out.push_str(s);
    out.push('\n');
}

fn print_arg(a: &Arg) -> String {
    match a {
        Arg::Name(n) => n.to_string(),
        Arg::Junction(j) => j.to_string(),
        Arg::SetLit(e) => SetRef::Lit(e.clone()).to_string(),
        Arg::Prop(p) => p.clone(),
        Arg::Value(v) => v.to_string(),
        Arg::ScaledTimeout { base, num, den } => {
            if *den == 1 {
                format!("|_{num} * {base}_|")
            } else {
                format!("|_{num}/{den} * {base}_|")
            }
        }
    }
}

/// Render an expression at the given indentation depth.
pub fn print_expr(e: &Expr, depth: usize, out: &mut String) {
    match e {
        Expr::Host { name, writes } => {
            if writes.is_empty() {
                line(depth, &format!("|_{name}_|;"), out);
            } else {
                line(depth, &format!("|_{name}_|{{{}}};", writes.join(", ")), out);
            }
        }
        Expr::Scope(inner) => {
            line(depth, "<", out);
            print_expr(inner, depth + 1, out);
            line(depth, ">", out);
        }
        Expr::Transaction(inner) => {
            line(depth, "<|", out);
            print_expr(inner, depth + 1, out);
            line(depth, "|>", out);
        }
        Expr::LoopScope(inner) => print_expr(inner, depth, out),
        Expr::Return => line(depth, "return;", out),
        Expr::Write { data, to } => line(depth, &format!("write({data}, {to});"), out),
        Expr::Wait { data, formula } => {
            let d = data.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
            line(depth, &format!("wait [{d}] {formula};"), out);
        }
        Expr::Save { data } => line(depth, &format!("save(..., {data});"), out),
        Expr::Restore { data } => line(depth, &format!("restore({data}, ...);"), out),
        Expr::Seq(es) => {
            for x in es {
                print_expr(x, depth, out);
            }
        }
        Expr::Par(es) => {
            for (i, x) in es.iter().enumerate() {
                if i > 0 {
                    line(depth, "+", out);
                }
                print_expr(x, depth, out);
            }
        }
        Expr::Rep { n, body } => {
            line(depth, &format!("||{n}"), out);
            print_expr(body, depth + 1, out);
        }
        Expr::Otherwise { body, timeout, handler } => {
            print_expr(body, depth, out);
            match timeout {
                Some(t) => line(depth, &format!("otherwise[{t}]"), out),
                None => line(depth, "otherwise", out),
            }
            print_expr(handler, depth + 1, out);
        }
        Expr::Stop(i) => line(depth, &format!("stop {i};"), out),
        Expr::Start { instance, junction_args } => {
            let mut s = format!("start {instance}");
            for (j, args) in junction_args {
                let a = args.iter().map(print_arg).collect::<Vec<_>>().join(", ");
                match j {
                    Some(name) => {
                        let _ = write!(s, " {name}({a})");
                    }
                    None => {
                        let _ = write!(s, "({a})");
                    }
                }
            }
            s.push(';');
            line(depth, &s, out);
        }
        Expr::Assert { at, prop } => match at {
            Some(j) => line(depth, &format!("assert [{j}] {prop};"), out),
            None => line(depth, &format!("assert [] {prop};"), out),
        },
        Expr::Retract { at, prop } => match at {
            Some(j) => line(depth, &format!("retract [{j}] {prop};"), out),
            None => line(depth, &format!("retract [] {prop};"), out),
        },
        Expr::Call { func, args } => {
            let a = args.iter().map(print_arg).collect::<Vec<_>>().join(", ");
            line(depth, &format!("{func}({a});"), out);
        }
        Expr::Verify(f) => line(depth, &format!("verify {f};"), out),
        Expr::Skip => line(depth, "skip;", out),
        Expr::Retry => line(depth, "retry;", out),
        Expr::Keep { keys } => {
            let k = keys.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
            line(depth, &format!("keep [{k}];"), out);
        }
        Expr::Case { arms, otherwise } => {
            line(depth, "case {", out);
            for a in arms {
                match &a.guard {
                    CaseGuard::Plain(f) => line(depth + 1, &format!("{f} =>"), out),
                    CaseGuard::For { var, set, formula } => {
                        line(depth + 1, &format!("for {var} in {set} {formula} =>"), out)
                    }
                }
                print_expr(&a.body, depth + 2, out);
                let term = match a.terminator {
                    Terminator::Break => "break",
                    Terminator::Next => "next",
                    Terminator::Reconsider => "reconsider",
                };
                line(depth + 2, term, out);
            }
            line(depth + 1, "otherwise =>", out);
            print_expr(otherwise, depth + 2, out);
            line(depth, "}", out);
        }
        Expr::If { cond, then, els } => {
            line(depth, &format!("if {cond} then"), out);
            print_expr(then, depth + 1, out);
            if let Some(x) = els {
                line(depth, "else", out);
                print_expr(x, depth + 1, out);
            }
        }
        Expr::For { var, set, op, body } => {
            let op_s = match op {
                ForOp::Seq => ";".to_string(),
                ForOp::Par => "+".to_string(),
                ForOp::Rep => "||".to_string(),
                ForOp::Otherwise(Some(t)) => format!("otherwise[{t}]"),
                ForOp::Otherwise(None) => "otherwise".to_string(),
            };
            line(depth, &format!("for {var} in {set} {op_s}"), out);
            print_expr(body, depth + 1, out);
        }
        Expr::Break => line(depth, "break;", out),
        Expr::Next => line(depth, "next;", out),
        Expr::Reconsider => line(depth, "reconsider;", out),
    }
}

/// Lines of code of a rendered program — the DSL-side metric of the
/// paper's Table 2 ("we give each LoC of DSL code the same weight as a
/// LoC of C code"). Blank lines are not counted.
pub fn loc_of_program(p: &Program) -> usize {
    print_program(p).lines().filter(|l| !l.trim().is_empty()).count()
}

/// Lines of code of a single junction definition.
pub fn loc_of_junction(type_name: &str, j: &JunctionDef) -> usize {
    let mut s = String::new();
    print_junction(type_name, j, &mut s);
    s.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Lines of code of a compiled program (post-expansion; used by the
/// "DSL in C" analog column, which counts the generated/decoupled form).
pub fn loc_of_compiled(cp: &CompiledProgram) -> usize {
    let mut total = 0;
    for inst in &cp.instances {
        for j in &inst.junctions {
            total += loc_of_junction(&inst.type_name, j);
        }
    }
    let mut s = String::new();
    print_expr(&cp.program.main.body, 0, &mut s);
    total + s.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn fig3_prints_and_counts() {
        let p = fig3_program();
        let s = print_program(&p);
        assert!(s.contains("InstanceTypes = {tau_f, tau_g}"));
        assert!(s.contains("def tau_f::junction(g) <|"));
        assert!(s.contains("| init prop !Work"));
        assert!(s.contains("wait [] !Work;"));
        let loc = loc_of_program(&p);
        assert!(loc > 10 && loc < 40, "unexpected LoC: {loc}");
    }

    #[test]
    fn case_prints_terminators() {
        let e = case(
            vec![arm(Formula::prop("Work"), skip(), Terminator::Reconsider)],
            skip(),
        );
        let mut s = String::new();
        print_expr(&e, 0, &mut s);
        assert!(s.contains("Work =>"));
        assert!(s.contains("reconsider"));
        assert!(s.contains("otherwise =>"));
    }

    #[test]
    fn scaled_timeout_prints() {
        assert_eq!(
            print_arg(&Arg::ScaledTimeout {
                base: crate::names::NameRef::var("t"),
                num: 3,
                den: 1
            }),
            "|_3 * t_|"
        );
    }

    use crate::formula::Formula;
}
