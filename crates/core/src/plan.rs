//! Declarative reconfiguration planning.
//!
//! `Runtime::reconfigure` executes *one* structural diff; callers who
//! need a multi-step transition (grow a shard set, then re-point the
//! router, then retire the old shards) have so far sequenced the phases
//! by hand. This module lifts that sequencing into the DSL layer: a
//! caller states a **target architecture** plus operational
//! **constraints** — how many instances may quiesce concurrently, which
//! instances must transition together (colocation), which must never
//! pause together (anti-affinity), and a per-phase pause budget — and
//! [`plan_reconfiguration`] emits a validated, minimal-disruption
//! [`Plan`]: an ordered sequence of phased [`ProgramDiff`]s whose
//! targets walk the system from A to B make-before-make-do-before-break:
//!
//! 1. **Make** — all added instances come up first (their quiesce set is
//!    empty, so bystanders never pause).
//! 2. **Change** — modified instances are re-pointed in chunks of at
//!    most `max_concurrent_quiesce`.
//! 3. **Break** — removed instances retire last, again chunked, after
//!    no live instance routes to them.
//!
//! The planner shares one differ with the executor ([`diff_programs`]):
//! each phase's recorded diff is exactly what `Runtime::reconfigure`
//! will recompute when handed that phase's target, and
//! [`compose_diffs`] lets tests assert the phases compose back to the
//! full A→B diff. Validity checking against the declared constraints is
//! deliberately *separate* (in `csaw-semantics::plan_check`, in the
//! spirit of Bozga–Iosif–Sifakis local reasoning): the checker trusts
//! the constraint declaration, not the planner.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::diff::{diff_programs, ProgramDiff};
use crate::program::{CompiledInstance, CompiledProgram, Program};

/// Operational constraints on a planned transition.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanConstraints {
    /// Maximum number of instances quiesced (paused + migrated) in any
    /// single phase. Added instances do not count — they do not exist
    /// yet, so bringing them up pauses nothing.
    pub max_concurrent_quiesce: usize,
    /// Groups of instances that must transition in the same phase
    /// (e.g. a shard and its co-resident cache move together so
    /// cross-instance state stays consistent). Names not touched by the
    /// diff are ignored.
    pub colocate: Vec<Vec<String>>,
    /// Pairs of instances that must never be quiesced in the same phase
    /// (e.g. a primary and its replica — one side must stay live).
    pub anti_affinity: Vec<(String, String)>,
    /// Per-phase SLO pause budget. The planner records it; the executor
    /// reports phases whose measured pause exceeded it.
    pub phase_pause_budget: Option<Duration>,
}

impl Default for PlanConstraints {
    fn default() -> Self {
        PlanConstraints {
            max_concurrent_quiesce: 1,
            colocate: Vec::new(),
            anti_affinity: Vec::new(),
            phase_pause_budget: None,
        }
    }
}

impl PlanConstraints {
    /// Constraints with a given quiesce bound and nothing else.
    pub fn max_quiesce(n: usize) -> Self {
        PlanConstraints { max_concurrent_quiesce: n, ..Default::default() }
    }

    /// Add a colocation group.
    pub fn with_colocate(mut self, group: &[&str]) -> Self {
        self.colocate.push(group.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Add an anti-affinity pair.
    pub fn with_anti_affinity(mut self, a: &str, b: &str) -> Self {
        self.anti_affinity.push((a.to_string(), b.to_string()));
        self
    }

    /// Set the per-phase pause budget.
    pub fn with_pause_budget(mut self, budget: Duration) -> Self {
        self.phase_pause_budget = Some(budget);
        self
    }
}

/// One phase of a plan: a target program one reconfiguration step away
/// from the previous phase's target (or from A, for the first phase).
#[derive(Clone, Debug)]
pub struct PlanPhase {
    /// Phase position, `0..plan.phases.len()`.
    pub index: usize,
    /// The structural diff this phase executes — exactly what
    /// `Runtime::reconfigure` recomputes when handed [`PlanPhase::target`].
    pub diff: ProgramDiff,
    /// The compiled program this phase transitions to. The final
    /// phase's target is the caller's B, verbatim.
    pub target: CompiledProgram,
}

impl PlanPhase {
    /// Names quiesced by this phase (removed ∪ changed).
    pub fn quiesced(&self) -> Vec<&str> {
        self.diff.quiesce_set()
    }
}

/// A validated, ordered sequence of phased reconfigurations from A to B.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The phases, in execution order. Empty when A and B are
    /// structurally identical.
    pub phases: Vec<PlanPhase>,
    /// The constraints the plan was computed under.
    pub constraints: PlanConstraints,
    /// The full A→B diff the phases decompose.
    pub full_diff: ProgramDiff,
}

impl Plan {
    /// Largest per-phase quiesce set in the plan.
    pub fn max_phase_quiesce(&self) -> usize {
        self.phases.iter().map(|p| p.diff.quiesce_set().len()).max().unwrap_or(0)
    }

    /// Whether the plan is a no-op (A and B structurally identical).
    pub fn is_identity(&self) -> bool {
        self.phases.is_empty()
    }

    /// Net per-instance effect of the phases, for composition checks
    /// against [`Plan::full_diff`] — see [`compose_diffs`].
    pub fn composed_net(&self) -> BTreeMap<String, crate::diff::NetChange> {
        let diffs: Vec<&ProgramDiff> = self.phases.iter().map(|p| &p.diff).collect();
        compose_diffs(&diffs)
    }
}

/// Re-export of the diff composition helper for plan-level checks.
pub use crate::diff::compose_diffs;

/// Why a transition cannot be planned under the given constraints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// `max_concurrent_quiesce` is zero but the transition needs to
    /// quiesce at least one instance.
    QuiesceBoundZero,
    /// A colocation group forces more concurrent quiesces than the
    /// bound allows.
    ColocationTooLarge {
        /// The offending group's members (touched instances only).
        group: Vec<String>,
        /// How many of them must quiesce together.
        quiesce: usize,
        /// The declared bound.
        max: usize,
    },
    /// A colocation group contains both sides of an anti-affinity pair,
    /// and both sides need quiescing — the constraints are unsatisfiable.
    AffinityConflict {
        /// The anti-affine pair forced together.
        pair: (String, String),
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::QuiesceBoundZero => {
                write!(f, "max_concurrent_quiesce is 0 but the transition must quiesce instances")
            }
            PlanError::ColocationTooLarge { group, quiesce, max } => write!(
                f,
                "colocation group {{{}}} needs {quiesce} concurrent quiesces > bound {max}",
                group.join(", ")
            ),
            PlanError::AffinityConflict { pair } => write!(
                f,
                "anti-affine instances {} and {} are forced into the same phase",
                pair.0, pair.1
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// One transition group: instances that must move in the same phase.
#[derive(Clone, Debug)]
struct Group {
    /// All touched members, deterministic order.
    members: Vec<String>,
    /// Members that quiesce (removed ∪ changed).
    quiesce: Vec<String>,
    /// Whether the group contains a changed (retained) instance.
    has_changed: bool,
    /// Whether the group contains an added instance.
    has_added: bool,
    /// Canonical ordering key: position of the earliest member in the
    /// canonical instance order.
    rank: usize,
}

/// Plan a minimal-disruption phased transition from `a` to `b`.
///
/// Phases come out make-before-break: all additions first (no
/// quiescing), then changed instances in chunks of at most
/// `max_concurrent_quiesce`, then removals last, likewise chunked.
/// Colocation groups always land in one phase; anti-affine pairs are
/// never packed into the same phase's quiesce set. Instances untouched
/// by the diff never appear in any phase.
pub fn plan_reconfiguration(
    a: &CompiledProgram,
    b: &CompiledProgram,
    constraints: &PlanConstraints,
) -> Result<Plan, PlanError> {
    let full = diff_programs(a, b);
    if full.is_identity() {
        return Ok(Plan { phases: Vec::new(), constraints: constraints.clone(), full_diff: full });
    }

    // Canonical order over touched instances: adds in B declaration
    // order, changes in B declaration order, removals in A declaration
    // order. Deterministic regardless of constraint declaration order.
    let mut rank: BTreeMap<&str, usize> = BTreeMap::new();
    let mut canonical: Vec<&str> = Vec::new();
    for n in &full.added {
        rank.insert(n.as_str(), canonical.len());
        canonical.push(n.as_str());
    }
    let changed_in_b_order: Vec<&str> = b
        .instances
        .iter()
        .filter(|i| full.changed.iter().any(|c| c.name == i.name))
        .map(|i| i.name.as_str())
        .collect();
    for n in &changed_in_b_order {
        rank.insert(n, canonical.len());
        canonical.push(n);
    }
    for n in &full.removed {
        rank.insert(n.as_str(), canonical.len());
        canonical.push(n.as_str());
    }

    let is_added = |n: &str| full.added.iter().any(|x| x == n);
    let is_removed = |n: &str| full.removed.iter().any(|x| x == n);
    let is_changed = |n: &str| full.changed.iter().any(|c| c.name == n);

    // Union-find over touched instances; colocation merges.
    let idx: BTreeMap<&str, usize> =
        canonical.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut parent: Vec<usize> = (0..canonical.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for group in &constraints.colocate {
        let touched: Vec<usize> =
            group.iter().filter_map(|n| idx.get(n.as_str()).copied()).collect();
        for w in touched.windows(2) {
            let (ra, rb) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
    }

    let mut groups: BTreeMap<usize, Group> = BTreeMap::new();
    for (i, name) in canonical.iter().enumerate() {
        let root = find(&mut parent, i);
        let g = groups.entry(root).or_insert_with(|| Group {
            members: Vec::new(),
            quiesce: Vec::new(),
            has_changed: false,
            has_added: false,
            rank: usize::MAX,
        });
        g.members.push(name.to_string());
        g.rank = g.rank.min(rank[name]);
        if is_changed(name) || is_removed(name) {
            g.quiesce.push(name.to_string());
        }
        g.has_changed |= is_changed(name);
        g.has_added |= is_added(name);
    }
    let mut groups: Vec<Group> = groups.into_values().collect();
    groups.sort_by_key(|g| g.rank);

    let max = constraints.max_concurrent_quiesce;
    if max == 0 && groups.iter().any(|g| !g.quiesce.is_empty()) {
        return Err(PlanError::QuiesceBoundZero);
    }
    for g in &groups {
        if g.quiesce.len() > max && !g.quiesce.is_empty() {
            // An unsatisfiable anti-affinity inside the group is the
            // sharper diagnosis when present.
            for (x, y) in &constraints.anti_affinity {
                if g.quiesce.iter().any(|m| m == x) && g.quiesce.iter().any(|m| m == y) {
                    return Err(PlanError::AffinityConflict { pair: (x.clone(), y.clone()) });
                }
            }
            return Err(PlanError::ColocationTooLarge {
                group: g.members.clone(),
                quiesce: g.quiesce.len(),
                max,
            });
        }
        for (x, y) in &constraints.anti_affinity {
            if g.quiesce.iter().any(|m| m == x) && g.quiesce.iter().any(|m| m == y) {
                return Err(PlanError::AffinityConflict { pair: (x.clone(), y.clone()) });
            }
        }
    }

    // Partition groups into the three waves.
    let mut add_groups: Vec<&Group> = Vec::new();
    let mut change_groups: Vec<&Group> = Vec::new();
    let mut remove_groups: Vec<&Group> = Vec::new();
    for g in &groups {
        if g.quiesce.is_empty() {
            add_groups.push(g);
        } else if g.has_changed || g.has_added {
            change_groups.push(g);
        } else {
            remove_groups.push(g);
        }
    }

    // Pack a wave's groups into phases of at most `max` concurrent
    // quiesces, never putting two anti-affine quiesce members together.
    fn pack<'g>(
        wave: Vec<&'g Group>,
        max: usize,
        anti: &[(String, String)],
    ) -> Vec<Vec<&'g Group>> {
        let conflicts = |phase: &[&Group], g: &Group| {
            anti.iter().any(|(x, y)| {
                let in_phase = |n: &str| phase.iter().any(|pg| pg.quiesce.iter().any(|m| m == n));
                (g.quiesce.iter().any(|m| m == x) && in_phase(y))
                    || (g.quiesce.iter().any(|m| m == y) && in_phase(x))
            })
        };
        let mut phases: Vec<Vec<&Group>> = Vec::new();
        let mut remaining = wave;
        while !remaining.is_empty() {
            let mut phase: Vec<&Group> = Vec::new();
            let mut load = 0usize;
            let mut rest: Vec<&Group> = Vec::new();
            for g in remaining {
                if load + g.quiesce.len() <= max && !conflicts(&phase, g) {
                    load += g.quiesce.len();
                    phase.push(g);
                } else {
                    rest.push(g);
                }
            }
            phases.push(phase);
            remaining = rest;
        }
        phases
    }

    let anti = &constraints.anti_affinity;
    let mut phase_groups: Vec<Vec<&Group>> = Vec::new();
    if !add_groups.is_empty() {
        // All pure additions fit one phase: nothing quiesces.
        phase_groups.push(add_groups);
    }
    phase_groups.extend(pack(change_groups, max, anti));
    phase_groups.extend(pack(remove_groups, max, anti));

    // Walk the phases, materializing each intermediate target from A's
    // instance list progressively rewritten toward B.
    let mut cur: Vec<CompiledInstance> = a.instances.clone();
    let mut phases: Vec<PlanPhase> = Vec::new();
    let total = phase_groups.len();
    let mut prev: CompiledProgram = a.clone();
    for (pi, pgroups) in phase_groups.into_iter().enumerate() {
        for g in pgroups {
            for name in &g.members {
                if is_removed(name) {
                    cur.retain(|i| &i.name != name);
                } else if is_changed(name) {
                    let nb = b.instance(name).expect("changed instance exists in B").clone();
                    if let Some(slot) = cur.iter_mut().find(|i| &i.name == name) {
                        *slot = nb;
                    }
                } else {
                    // Added: append in B order within the group.
                    cur.push(b.instance(name).expect("added instance exists in B").clone());
                }
            }
        }
        let target = if pi + 1 == total { b.clone() } else { synth_target(a, b, &cur) };
        let diff = diff_programs(&prev, &target);
        prev = target.clone();
        phases.push(PlanPhase { index: pi, diff, target });
    }

    Ok(Plan { phases, constraints: constraints.clone(), full_diff: full })
}

/// Deliberately *wrong* baseline planner: break-before-make. Removals
/// all come first in one unbounded phase (live routers still point at
/// the retired instances), then every change at once, then additions
/// last. Exists so the plan-validity checker and the sim oracles have a
/// realistic bug to catch — see the `fence-off-bug` scenario family.
pub fn plan_break_before_make(
    a: &CompiledProgram,
    b: &CompiledProgram,
    constraints: &PlanConstraints,
) -> Plan {
    let full = diff_programs(a, b);
    if full.is_identity() {
        return Plan { phases: Vec::new(), constraints: constraints.clone(), full_diff: full };
    }
    let mut cur: Vec<CompiledInstance> = a.instances.clone();
    let mut phases: Vec<PlanPhase> = Vec::new();
    let mut prev = a.clone();

    // Wave layout: [removals] [changes] [adds] — each unbounded.
    let mut waves: Vec<Vec<String>> = Vec::new();
    if !full.removed.is_empty() {
        waves.push(full.removed.clone());
    }
    if !full.changed.is_empty() {
        waves.push(full.changed.iter().map(|c| c.name.clone()).collect());
    }
    if !full.added.is_empty() {
        waves.push(full.added.clone());
    }
    let total = waves.len();
    for (pi, wave) in waves.into_iter().enumerate() {
        for name in &wave {
            if full.removed.contains(name) {
                cur.retain(|i| &i.name != name);
            } else if let Some(nb) = b.instance(name) {
                if cur.iter().any(|i| &i.name == name) {
                    if let Some(slot) = cur.iter_mut().find(|i| &i.name == name) {
                        *slot = nb.clone();
                    }
                } else {
                    cur.push(nb.clone());
                }
            }
        }
        let target = if pi + 1 == total { b.clone() } else { synth_target(a, b, &cur) };
        let diff = diff_programs(&prev, &target);
        prev = target.clone();
        phases.push(PlanPhase { index: pi, diff, target });
    }
    Plan { phases, constraints: constraints.clone(), full_diff: full }
}

/// Synthesize an intermediate compiled program over `cur`'s instance
/// set. Types and templates come from B (falling back to A's for types
/// only A declares); `main` is B's — denotation only walks it for
/// `Start` names, which is harmless mid-stream where no startup events
/// occur.
fn synth_target(
    a: &CompiledProgram,
    b: &CompiledProgram,
    cur: &[CompiledInstance],
) -> CompiledProgram {
    let mut types = b.program.types.clone();
    for t in &a.program.types {
        if !types.iter().any(|x| x.name == t.name) {
            types.push(t.clone());
        }
    }
    CompiledProgram {
        program: Program {
            types,
            instances: cur.iter().map(|i| (i.name.clone(), i.type_name.clone())).collect(),
            functions: b.program.functions.clone(),
            main: b.program.main.clone(),
        },
        instances: cur.to_vec(),
        retry_limit: b.retry_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::NetChange;
    use crate::expr::Expr;
    use crate::program::{InstanceType, JunctionDef, MainDef};

    fn j(name: &str, body: Expr) -> JunctionDef {
        JunctionDef::new(name, vec![], vec![], body)
    }

    fn compiled(instances: Vec<(&str, &str, Vec<JunctionDef>)>) -> CompiledProgram {
        CompiledProgram {
            program: Program {
                types: vec![InstanceType::new("T", vec![])],
                instances: instances
                    .iter()
                    .map(|(n, t, _)| (n.to_string(), t.to_string()))
                    .collect(),
                functions: vec![],
                main: MainDef { params: vec![], body: Expr::Skip },
            },
            instances: instances
                .into_iter()
                .map(|(n, t, js)| CompiledInstance {
                    name: n.into(),
                    type_name: t.into(),
                    junctions: js,
                })
                .collect(),
            retry_limit: 3,
        }
    }

    fn skip() -> Vec<JunctionDef> {
        vec![j("c", Expr::Skip)]
    }

    fn changed_shape() -> Vec<JunctionDef> {
        vec![j("c", Expr::Seq(vec![Expr::Skip, Expr::Return]))]
    }

    /// 2→4 shard grow: front changes, two backends added.
    fn grow() -> (CompiledProgram, CompiledProgram) {
        let a = compiled(vec![
            ("Fnt", "F", skip()),
            ("B1", "T", skip()),
            ("B2", "T", skip()),
        ]);
        let b = compiled(vec![
            ("Fnt", "F", changed_shape()),
            ("B1", "T", skip()),
            ("B2", "T", skip()),
            ("B3", "T", skip()),
            ("B4", "T", skip()),
        ]);
        (a, b)
    }

    /// 4→2 shard shrink: front changes, two backends removed.
    fn shrink() -> (CompiledProgram, CompiledProgram) {
        let (a, b) = grow();
        (b, a)
    }

    #[test]
    fn identity_plan_is_empty() {
        let (a, _) = grow();
        let plan = plan_reconfiguration(&a, &a.clone(), &PlanConstraints::max_quiesce(1)).unwrap();
        assert!(plan.is_identity());
        assert_eq!(plan.max_phase_quiesce(), 0);
    }

    #[test]
    fn grow_is_make_before_break() {
        let (a, b) = grow();
        let plan = plan_reconfiguration(&a, &b, &PlanConstraints::max_quiesce(1)).unwrap();
        // Phase 0: adds only, nothing quiesced. Phase 1: front re-point.
        assert_eq!(plan.phases.len(), 2);
        assert_eq!(plan.phases[0].diff.added, vec!["B3", "B4"]);
        assert!(plan.phases[0].quiesced().is_empty());
        assert_eq!(plan.phases[1].quiesced(), vec!["Fnt"]);
        // Final target is B verbatim.
        assert!(diff_programs(&plan.phases.last().unwrap().target, &b).is_identity());
    }

    #[test]
    fn shrink_chunks_removals_after_change() {
        let (a, b) = shrink();
        let plan = plan_reconfiguration(&a, &b, &PlanConstraints::max_quiesce(1)).unwrap();
        // Phase 0: front re-point; phases 1..: one removal each.
        assert_eq!(plan.phases.len(), 3);
        assert_eq!(plan.phases[0].quiesced(), vec!["Fnt"]);
        assert_eq!(plan.phases[1].diff.removed, vec!["B3"]);
        assert_eq!(plan.phases[2].diff.removed, vec!["B4"]);
        assert!(plan.max_phase_quiesce() <= 1);
        assert!(diff_programs(&plan.phases.last().unwrap().target, &b).is_identity());
    }

    #[test]
    fn quiesce_bound_respected_and_composition_holds() {
        let (a, b) = shrink();
        for maxq in 1..=3usize {
            let plan =
                plan_reconfiguration(&a, &b, &PlanConstraints::max_quiesce(maxq)).unwrap();
            assert!(plan.max_phase_quiesce() <= maxq, "bound {maxq} violated");
            // Phase diffs compose to the full diff.
            let net = plan.composed_net();
            let mut expect = BTreeMap::new();
            expect.insert("Fnt".to_string(), NetChange::Changed);
            expect.insert("B3".to_string(), NetChange::Removed);
            expect.insert("B4".to_string(), NetChange::Removed);
            assert_eq!(net, expect, "composition at bound {maxq}");
        }
    }

    #[test]
    fn colocation_lands_in_one_phase() {
        let (a, b) = shrink();
        let c = PlanConstraints::max_quiesce(2).with_colocate(&["B3", "B4"]);
        let plan = plan_reconfiguration(&a, &b, &c).unwrap();
        let both = plan
            .phases
            .iter()
            .find(|p| p.diff.removed.contains(&"B3".to_string()))
            .unwrap();
        assert!(both.diff.removed.contains(&"B4".to_string()));
    }

    #[test]
    fn colocation_too_large_is_rejected() {
        let (a, b) = shrink();
        let c = PlanConstraints::max_quiesce(1).with_colocate(&["B3", "B4"]);
        match plan_reconfiguration(&a, &b, &c) {
            Err(PlanError::ColocationTooLarge { quiesce: 2, max: 1, .. }) => {}
            other => panic!("expected ColocationTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn anti_affinity_splits_phases() {
        let (a, b) = shrink();
        let c = PlanConstraints::max_quiesce(2).with_anti_affinity("B3", "B4");
        let plan = plan_reconfiguration(&a, &b, &c).unwrap();
        for p in &plan.phases {
            let q = p.quiesced();
            assert!(
                !(q.contains(&"B3") && q.contains(&"B4")),
                "anti-affine pair co-quiesced in phase {}",
                p.index
            );
        }
    }

    #[test]
    fn affinity_conflict_is_rejected() {
        let (a, b) = shrink();
        let c = PlanConstraints::max_quiesce(2)
            .with_colocate(&["B3", "B4"])
            .with_anti_affinity("B3", "B4");
        match plan_reconfiguration(&a, &b, &c) {
            Err(PlanError::AffinityConflict { .. }) => {}
            other => panic!("expected AffinityConflict, got {other:?}"),
        }
    }

    #[test]
    fn zero_bound_rejected_when_quiesce_needed() {
        let (a, b) = shrink();
        match plan_reconfiguration(&a, &b, &PlanConstraints::max_quiesce(0)) {
            Err(PlanError::QuiesceBoundZero) => {}
            other => panic!("expected QuiesceBoundZero, got {other:?}"),
        }
        // Pure additions need no quiescing, so a zero bound is fine.
        let (a2, b2) = grow();
        let add_only = compiled(vec![
            ("Fnt", "F", skip()),
            ("B1", "T", skip()),
            ("B2", "T", skip()),
            ("B3", "T", skip()),
        ]);
        let plan = plan_reconfiguration(&a2, &add_only, &PlanConstraints::max_quiesce(0));
        assert!(plan.is_ok());
        let _ = b2;
    }

    #[test]
    fn phase_targets_are_continuous() {
        let (a, b) = shrink();
        let plan = plan_reconfiguration(&a, &b, &PlanConstraints::max_quiesce(1)).unwrap();
        let mut prev = a.clone();
        for p in &plan.phases {
            // Each recorded diff is exactly the executor's recomputation.
            assert_eq!(p.diff, diff_programs(&prev, &p.target), "phase {}", p.index);
            prev = p.target.clone();
        }
        assert!(diff_programs(&prev, &b).is_identity());
    }

    #[test]
    fn break_before_make_violates_ordering() {
        let (a, b) = shrink();
        let c = PlanConstraints::max_quiesce(1);
        let plan = plan_break_before_make(&a, &b, &c);
        // Removals come first and blow the bound.
        assert_eq!(plan.phases[0].diff.removed, vec!["B3", "B4"]);
        assert!(plan.max_phase_quiesce() > c.max_concurrent_quiesce);
        // But it still reaches B.
        assert!(diff_programs(&plan.phases.last().unwrap().target, &b).is_identity());
    }

    #[test]
    fn mixed_colocate_add_and_change_share_phase() {
        let (a, b) = grow();
        let c = PlanConstraints::max_quiesce(1).with_colocate(&["Fnt", "B3"]);
        let plan = plan_reconfiguration(&a, &b, &c).unwrap();
        let fnt_phase = plan
            .phases
            .iter()
            .find(|p| p.quiesced().contains(&"Fnt"))
            .unwrap();
        assert!(fnt_phase.diff.added.contains(&"B3".to_string()));
        assert!(diff_programs(&plan.phases.last().unwrap().target, &b).is_identity());
    }
}
