//! Compile-time template expansion.
//!
//! C-Saw has no run-time recursion: functions are templates inlined at
//! their call sites, and `for` loops unroll over compile-time sets (§6,
//! *Template-based Recursion*). This module performs both, producing a
//! [`CompiledProgram`] in which every remaining construct is directly
//! interpretable.
//!
//! Expansion is **per-instance**: two instances of the same type may be
//! started with different compile-time sets (the fail-over front-end's
//! `backends` parameter, Fig. 12), so each instance gets its own expanded
//! copy of its type's junctions.
//!
//! `for` over a **run-time subset** (Fig. 6's `for b̃ ∈ tgt +`) unrolls
//! over the subset's compile-time *superset*, guarding each unrolled body
//! with a membership test ([`Formula::InSubset`]) that the runtime
//! evaluates against the subset's current value.

use std::collections::HashMap;

use crate::decl::{Decl, ParamKind};
use crate::error::{CoreError, CoreResult};
use crate::expr::{Arg, CaseArm, CaseGuard, Expr, ForOp};
use crate::formula::Formula;
use crate::names::{Ident, JRef, NameRef, PropRef, SetElem, SetRef};
use crate::program::{
    CompiledInstance, CompiledProgram, JunctionDef, LoadConfig, MainDef, Program,
};

/// Upper bound on total expanded AST nodes, to stop runaway unrolling.
const NODE_BUDGET: usize = 2_000_000;
/// Maximum function-inlining depth (templates may call templates).
const INLINE_DEPTH: usize = 32;

/// What a substituted variable stands for.
#[derive(Clone, Debug)]
enum SubstVal {
    /// A function-call argument.
    Arg(Arg),
    /// A `for`-bound set element.
    Elem(SetElem),
}

/// Expansion context for one junction of one instance.
struct Ctx<'a> {
    program: &'a Program,
    /// Compile-time known sets in scope: name → elements.
    sets: HashMap<Ident, Vec<SetElem>>,
    /// Names that are run-time subsets (unrolling guards with membership).
    subsets: HashMap<Ident, Vec<SetElem>>,
    /// Active substitution (function params + `for`-bound symbols).
    subst: HashMap<Ident, SubstVal>,
    /// Declarations hoisted from inlined function templates (cf. `Watch`
    /// in Fig. 16, which declares propositions of its own).
    hoisted: Vec<Decl>,
    /// Inlining depth.
    depth: usize,
    /// Node budget counter.
    nodes: usize,
    /// Diagnostic location.
    location: String,
}

impl<'a> Ctx<'a> {
    fn spend(&mut self, n: usize) -> CoreResult<()> {
        self.nodes += n;
        if self.nodes > NODE_BUDGET {
            return Err(CoreError::ExpansionBudget(self.location.clone()));
        }
        Ok(())
    }

    fn lookup_subst(&self, name: &str) -> Option<&SubstVal> {
        self.subst.get(name)
    }

    /// Resolve a set reference to compile-time elements, or report whether
    /// it names a run-time subset (returning its superset elements).
    fn resolve_set(&self, set: &SetRef) -> CoreResult<(Vec<SetElem>, Option<Ident>)> {
        match set {
            SetRef::Lit(elems) => Ok((elems.clone(), None)),
            SetRef::Named(n) => {
                let raw = match self.lookup_subst(n.raw()) {
                    Some(SubstVal::Arg(Arg::SetLit(elems))) => return Ok((elems.clone(), None)),
                    Some(SubstVal::Arg(Arg::Name(inner))) => inner.raw().to_string(),
                    Some(SubstVal::Elem(e)) => {
                        return Err(CoreError::Scope {
                            context: self.location.clone(),
                            name: e.key(),
                            detail: "for-bound element used as a set".into(),
                        })
                    }
                    Some(SubstVal::Arg(other)) => {
                        return Err(CoreError::BadCall {
                            func: self.location.clone(),
                            detail: format!("argument {other:?} is not a set"),
                        })
                    }
                    None => n.raw().to_string(),
                };
                if let Some(elems) = self.sets.get(&raw) {
                    return Ok((elems.clone(), None));
                }
                if let Some(sup) = self.subsets.get(&raw) {
                    return Ok((sup.clone(), Some(raw)));
                }
                Err(CoreError::MissingSet(format!("{} (in {})", raw, self.location)))
            }
        }
    }
}

/// Expand a validated program against a load configuration.
pub fn expand(program: Program, config: &LoadConfig) -> CoreResult<CompiledProgram> {
    // Collect compile-time set bindings for (instance, junction, param)
    // from literal `start` arguments anywhere in the program.
    let start_sets = collect_start_sets(&program);

    let mut instances = Vec::with_capacity(program.instances.len());
    for (iname, tname) in &program.instances {
        let ty = program.get_type(tname).ok_or_else(|| {
            CoreError::Structure(format!("instance {iname} has unknown type {tname}"))
        })?;
        let mut junctions = Vec::with_capacity(ty.junctions.len());
        for j in &ty.junctions {
            junctions.push(expand_junction(&program, config, &start_sets, iname, tname, j)?);
        }
        instances.push(CompiledInstance {
            name: iname.clone(),
            type_name: tname.clone(),
            junctions,
        });
    }

    // Expand `main` (it may call templates and use `for` over literals).
    let mut main_ctx = Ctx {
        program: &program,
        sets: config
            .sets
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        subsets: HashMap::new(),
        subst: HashMap::new(),
        hoisted: Vec::new(),
        depth: 0,
        nodes: 0,
        location: "main".into(),
    };
    let main_body = expand_expr(&mut main_ctx, &program.main.body)?;
    let main = MainDef {
        params: program.main.params.clone(),
        body: main_body,
    };

    let expanded_program = Program {
        types: program.types.clone(),
        instances: program.instances.clone(),
        functions: vec![],
        main,
    };
    Ok(CompiledProgram {
        program: expanded_program,
        instances,
        retry_limit: config.retry_limit,
    })
}

/// Map `(instance, junction, param)` → literal set bound at a `start`.
type StartSets = HashMap<(Ident, Ident, Ident), Vec<SetElem>>;

fn collect_start_sets(program: &Program) -> StartSets {
    let mut out = StartSets::new();
    let mut record = |e: &Expr| {
        let Expr::Start { instance, junction_args } = e else {
            return;
        };
        let Some(iname) = instance.as_lit() else { return };
        let Some(ty) = program.type_of(iname) else { return };
        for (jname, args) in junction_args {
            let jdef = match jname {
                Some(j) => ty.junction(j),
                None if ty.junctions.len() == 1 => Some(&ty.junctions[0]),
                None => None,
            };
            let Some(jdef) = jdef else { continue };
            for (param, arg) in jdef.params.iter().zip(args.iter()) {
                if param.kind == ParamKind::Set {
                    if let Arg::SetLit(elems) = arg {
                        out.insert(
                            (iname.to_string(), jdef.name.clone(), param.name.clone()),
                            elems.clone(),
                        );
                    }
                }
            }
        }
    };
    program.main.body.walk(&mut record);
    for ty in &program.types {
        for j in &ty.junctions {
            j.body.walk(&mut record);
        }
    }
    for f in &program.functions {
        f.body.walk(&mut record);
    }
    out
}

fn expand_junction(
    program: &Program,
    config: &LoadConfig,
    start_sets: &StartSets,
    iname: &str,
    tname: &str,
    j: &JunctionDef,
) -> CoreResult<JunctionDef> {
    let location = format!("{iname}::{}", j.name);
    let mut sets = HashMap::new();
    let mut subsets = HashMap::new();

    // Seed known sets: declared literals, load-config values, set params
    // bound by literal `start` arguments (with load-config override).
    for d in &j.decls {
        match d {
            Decl::Set { name, elems: Some(e) } => {
                sets.insert(name.clone(), e.clone());
            }
            Decl::Set { name, elems: None } => {
                let scope = format!("{iname}::{}", j.name);
                let v = config
                    .set(&scope, name)
                    .or_else(|| config.set(&format!("{tname}::{}", j.name), name))
                    .ok_or_else(|| CoreError::MissingSet(format!("{name} (in {location})")))?;
                sets.insert(name.clone(), v.clone());
            }
            _ => {}
        }
    }
    for p in j.params.iter().filter(|p| p.kind == ParamKind::Set) {
        let scope = format!("{iname}::{}", j.name);
        if let Some(v) = config.set(&scope, &p.name) {
            sets.insert(p.name.clone(), v.clone());
        } else if let Some(v) =
            start_sets.get(&(iname.to_string(), j.name.clone(), p.name.clone()))
        {
            sets.insert(p.name.clone(), v.clone());
        }
    }
    // Subsets reference a previously-known superset.
    for d in &j.decls {
        if let Decl::Subset { name, of } = d {
            let sup = match of {
                SetRef::Lit(e) => e.clone(),
                SetRef::Named(n) => sets
                    .get(n.raw())
                    .cloned()
                    .ok_or_else(|| CoreError::MissingSet(format!("{} (in {location})", n.raw())))?,
            };
            subsets.insert(name.clone(), sup);
        }
    }

    let mut ctx = Ctx {
        program,
        sets,
        subsets,
        subst: HashMap::new(),
        hoisted: Vec::new(),
        depth: 0,
        nodes: 0,
        location,
    };

    // Expand declarations (ForProps unrolling; Set resolution to literals).
    let mut decls = Vec::new();
    for d in &j.decls {
        expand_decl(&mut ctx, d, &mut decls)?;
    }
    let body = expand_expr(&mut ctx, &j.body)?;
    // Hoisted declarations from inlined function templates.
    for d in std::mem::take(&mut ctx.hoisted) {
        if !decls.contains(&d) {
            decls.push(d);
        }
    }
    // Guards may contain `for`-formulas; expand them.
    for d in decls.iter_mut() {
        if let Decl::Guard(f) = d {
            *f = expand_formula(&mut ctx, f)?;
        }
    }

    Ok(JunctionDef {
        name: j.name.clone(),
        params: j.params.clone(),
        decls,
        body,
    })
}

fn expand_decl(ctx: &mut Ctx<'_>, d: &Decl, out: &mut Vec<Decl>) -> CoreResult<()> {
    ctx.spend(1)?;
    match d {
        Decl::ForProps { var, set, prop, init } => {
            let (elems, subset) = ctx.resolve_set(set)?;
            if subset.is_some() {
                return Err(CoreError::Structure(format!(
                    "for-declaration over run-time subset in {}",
                    ctx.location
                )));
            }
            for e in elems {
                let mut p = prop.clone();
                if let Some(ix) = &mut p.index {
                    if ix.as_var() == Some(var.as_str()) {
                        *ix = NameRef::lit(e.key());
                    }
                }
                out.push(Decl::Prop { prop: p, init: *init });
            }
        }
        Decl::Set { name, .. } => {
            let elems = ctx.sets.get(name).cloned().unwrap_or_default();
            out.push(Decl::Set {
                name: name.clone(),
                elems: Some(elems),
            });
        }
        // Resolve subset/idx base sets to literal element lists so the
        // runtime can enforce the §6 host-language contract.
        Decl::Subset { name, of } => {
            let (elems, _) = ctx.resolve_set(of)?;
            out.push(Decl::Subset {
                name: name.clone(),
                of: SetRef::Lit(elems),
            });
        }
        Decl::Idx { name, of } => {
            let (elems, _) = ctx.resolve_set(of)?;
            out.push(Decl::Idx {
                name: name.clone(),
                of: SetRef::Lit(elems),
            });
        }
        other => out.push(other.clone()),
    }
    Ok(())
}

fn subst_name(ctx: &Ctx<'_>, n: &NameRef) -> NameRef {
    match n {
        NameRef::Var(v) => match ctx.lookup_subst(v) {
            Some(SubstVal::Elem(e)) => NameRef::lit(e.key()),
            Some(SubstVal::Arg(Arg::Name(inner))) => inner.clone(),
            Some(SubstVal::Arg(Arg::Prop(p))) => NameRef::lit(p.clone()),
            Some(SubstVal::Arg(Arg::Junction(JRef::Bare(inner)))) => inner.clone(),
            Some(SubstVal::Arg(Arg::Junction(j))) => NameRef::lit(j.to_string()),
            _ => n.clone(),
        },
        lit => lit.clone(),
    }
}

fn subst_jref(ctx: &Ctx<'_>, j: &JRef) -> JRef {
    match j {
        JRef::Bare(NameRef::Var(v)) => match ctx.lookup_subst(v) {
            Some(SubstVal::Elem(SetElem::Instance(i))) => JRef::Bare(NameRef::lit(i.clone())),
            Some(SubstVal::Elem(SetElem::Junction(i, jn))) => JRef::Qualified {
                instance: NameRef::lit(i.clone()),
                junction: jn.clone(),
            },
            Some(SubstVal::Arg(Arg::Junction(inner))) => inner.clone(),
            Some(SubstVal::Arg(Arg::Name(inner))) => JRef::Bare(inner.clone()),
            _ => j.clone(),
        },
        JRef::Qualified { instance, junction } => JRef::Qualified {
            instance: subst_name(ctx, instance),
            junction: junction.clone(),
        },
        other => other.clone(),
    }
}

fn subst_prop(ctx: &Ctx<'_>, p: &PropRef) -> PropRef {
    PropRef {
        name: subst_name(ctx, &p.name),
        index: p.index.as_ref().map(|ix| subst_name(ctx, ix)),
    }
}

fn expand_formula(ctx: &mut Ctx<'_>, f: &Formula) -> CoreResult<Formula> {
    ctx.spend(1)?;
    Ok(match f {
        Formula::False => Formula::False,
        Formula::True => Formula::True,
        Formula::Prop(p) => Formula::Prop(subst_prop(ctx, p)),
        Formula::Not(inner) => Formula::Not(Box::new(expand_formula(ctx, inner)?)),
        Formula::And(a, b) => Formula::And(
            Box::new(expand_formula(ctx, a)?),
            Box::new(expand_formula(ctx, b)?),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(expand_formula(ctx, a)?),
            Box::new(expand_formula(ctx, b)?),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(expand_formula(ctx, a)?),
            Box::new(expand_formula(ctx, b)?),
        ),
        Formula::At(j, inner) => {
            Formula::At(subst_jref(ctx, j), Box::new(expand_formula(ctx, inner)?))
        }
        Formula::Live(n) => Formula::Live(subst_name(ctx, n)),
        Formula::InSubset { elem, subset } => Formula::InSubset {
            elem: subst_name(ctx, elem),
            subset: subst_name(ctx, subset),
        },
        Formula::For { var, set, conj, body } => {
            let (elems, subset) = ctx.resolve_set(set)?;
            let mut parts = Vec::with_capacity(elems.len());
            for e in &elems {
                let prev = ctx.subst.insert(var.clone(), SubstVal::Elem(e.clone()));
                let mut inst = expand_formula(ctx, body)?;
                if let Some(sub) = &subset {
                    inst = Formula::InSubset {
                        elem: NameRef::lit(e.key()),
                        subset: NameRef::lit(sub.clone()),
                    }
                    .and(inst);
                }
                restore_subst(ctx, var, prev);
                parts.push(inst);
            }
            fold_formula(parts, *conj)
        }
    })
}

fn restore_subst(ctx: &mut Ctx<'_>, var: &str, prev: Option<SubstVal>) {
    match prev {
        Some(v) => {
            ctx.subst.insert(var.to_string(), v);
        }
        None => {
            ctx.subst.remove(var);
        }
    }
}

fn fold_formula(parts: Vec<Formula>, conj: bool) -> Formula {
    if parts.is_empty() {
        // "for p̃ ∈ {} ∨ E = false; for p̃ ∈ {} ∧ E = ¬false" (§6)
        return if conj { Formula::True } else { Formula::False };
    }
    let mut it = parts.into_iter().rev();
    let mut acc = it.next().unwrap();
    for p in it {
        acc = if conj { p.and(acc) } else { p.or(acc) };
    }
    acc
}

fn subst_arg(ctx: &Ctx<'_>, a: &Arg) -> Arg {
    match a {
        Arg::Name(n) => match n {
            NameRef::Var(v) => match ctx.lookup_subst(v) {
                Some(SubstVal::Arg(inner)) => inner.clone(),
                Some(SubstVal::Elem(e)) => Arg::Name(NameRef::lit(e.key())),
                None => a.clone(),
            },
            lit => Arg::Name(lit.clone()),
        },
        Arg::Junction(j) => Arg::Junction(subst_jref(ctx, j)),
        Arg::ScaledTimeout { base, num, den } => Arg::ScaledTimeout {
            base: subst_name(ctx, base),
            num: *num,
            den: *den,
        },
        other => other.clone(),
    }
}

fn expand_expr(ctx: &mut Ctx<'_>, e: &Expr) -> CoreResult<Expr> {
    ctx.spend(1)?;
    Ok(match e {
        Expr::Host { name, writes } => Expr::Host {
            name: name.clone(),
            writes: writes
                .iter()
                .map(|w| subst_name(ctx, &NameRef::var(w.clone())).raw().to_string())
                .collect(),
        },
        Expr::Scope(inner) => Expr::Scope(Box::new(expand_expr(ctx, inner)?)),
        Expr::Transaction(inner) => Expr::Transaction(Box::new(expand_expr(ctx, inner)?)),
        Expr::Return | Expr::Skip | Expr::Retry | Expr::Break | Expr::Next | Expr::Reconsider => {
            e.clone()
        }
        Expr::Write { data, to } => Expr::Write {
            data: subst_name(ctx, data),
            to: subst_jref(ctx, to),
        },
        Expr::Wait { data, formula } => Expr::Wait {
            data: data.iter().map(|d| subst_name(ctx, d)).collect(),
            formula: expand_formula(ctx, formula)?,
        },
        Expr::Save { data } => Expr::Save {
            data: subst_name(ctx, data),
        },
        Expr::Restore { data } => Expr::Restore {
            data: subst_name(ctx, data),
        },
        Expr::Seq(es) => Expr::Seq(
            es.iter()
                .map(|x| expand_expr(ctx, x))
                .collect::<CoreResult<_>>()?,
        ),
        Expr::Par(es) => Expr::Par(
            es.iter()
                .map(|x| expand_expr(ctx, x))
                .collect::<CoreResult<_>>()?,
        ),
        Expr::Rep { n, body } => Expr::Rep {
            n: *n,
            body: Box::new(expand_expr(ctx, body)?),
        },
        Expr::Otherwise { body, timeout, handler } => Expr::Otherwise {
            body: Box::new(expand_expr(ctx, body)?),
            timeout: timeout.as_ref().map(|t| subst_name(ctx, t)),
            handler: Box::new(expand_expr(ctx, handler)?),
        },
        Expr::Stop(n) => Expr::Stop(subst_name(ctx, n)),
        Expr::Start { instance, junction_args } => Expr::Start {
            instance: subst_name(ctx, instance),
            junction_args: junction_args
                .iter()
                .map(|(j, args)| (j.clone(), args.iter().map(|a| subst_arg(ctx, a)).collect()))
                .collect(),
        },
        Expr::Assert { at, prop } => Expr::Assert {
            at: at.as_ref().map(|j| subst_jref(ctx, j)),
            prop: subst_prop(ctx, prop),
        },
        Expr::Retract { at, prop } => Expr::Retract {
            at: at.as_ref().map(|j| subst_jref(ctx, j)),
            prop: subst_prop(ctx, prop),
        },
        Expr::Verify(f) => Expr::Verify(expand_formula(ctx, f)?),
        Expr::Keep { keys } => Expr::Keep {
            keys: keys.iter().map(|k| subst_name(ctx, k)).collect(),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: expand_formula(ctx, cond)?,
            then: Box::new(expand_expr(ctx, then)?),
            els: match els {
                Some(x) => Some(Box::new(expand_expr(ctx, x)?)),
                None => None,
            },
        },
        Expr::LoopScope(inner) => Expr::LoopScope(Box::new(expand_expr(ctx, inner)?)),
        Expr::Call { func, args } => {
            if ctx.depth >= INLINE_DEPTH {
                return Err(CoreError::RecursiveTemplate(format!(
                    "{func} (inlining depth {INLINE_DEPTH} exceeded in {})",
                    ctx.location
                )));
            }
            let fdef = ctx
                .program
                .function(func)
                .ok_or_else(|| CoreError::BadCall {
                    func: func.clone(),
                    detail: "function not defined".into(),
                })?
                .clone();
            if fdef.params.len() != args.len() {
                return Err(CoreError::BadCall {
                    func: func.clone(),
                    detail: format!(
                        "arity mismatch: expected {}, got {}",
                        fdef.params.len(),
                        args.len()
                    ),
                });
            }
            // Build the callee substitution in the caller's context.
            let resolved: Vec<Arg> = args.iter().map(|a| subst_arg(ctx, a)).collect();
            let saved_subst = ctx.subst.clone();
            ctx.subst.clear();
            for (p, a) in fdef.params.iter().zip(resolved) {
                if matches!(a, Arg::Value(_)) {
                    ctx.subst = saved_subst;
                    return Err(CoreError::BadCall {
                        func: func.clone(),
                        detail: format!(
                            "literal value bound to template parameter `{}` — template \
                             arguments must be names, junctions, props or set literals",
                            p.name
                        ),
                    });
                }
                ctx.subst.insert(p.name.clone(), SubstVal::Arg(a));
            }
            ctx.depth += 1;
            // Hoist the template's declarations (substituted) into the
            // enclosing junction (Fig. 16's `Watch` declares propositions).
            let mut hoist_err = None;
            let mut hoisted = Vec::new();
            for d in &fdef.decls {
                if let Err(e) = expand_decl(ctx, d, &mut hoisted) {
                    hoist_err = Some(e);
                    break;
                }
            }
            let body = if let Some(e) = hoist_err {
                Err(e)
            } else {
                expand_expr(ctx, &fdef.body)
            };
            ctx.depth -= 1;
            ctx.subst = saved_subst;
            for d in hoisted {
                if !ctx.hoisted.contains(&d) {
                    ctx.hoisted.push(d);
                }
            }
            // `return` inside a function leaves the junction, not the
            // function (§6) — the interpreter treats Return as
            // junction-exit, so plain inlining is faithful here.
            Expr::Scope(Box::new(body?))
        }
        Expr::Case { arms, otherwise } => {
            let mut new_arms = Vec::new();
            for arm in arms {
                match &arm.guard {
                    CaseGuard::Plain(f) => new_arms.push(CaseArm {
                        guard: CaseGuard::Plain(expand_formula(ctx, f)?),
                        body: expand_expr(ctx, &arm.body)?,
                        terminator: arm.terminator,
                    }),
                    CaseGuard::For { var, set, formula } => {
                        let (elems, subset) = ctx.resolve_set(set)?;
                        for e in &elems {
                            let prev =
                                ctx.subst.insert(var.clone(), SubstVal::Elem(e.clone()));
                            let mut g = expand_formula(ctx, formula)?;
                            if let Some(sub) = &subset {
                                g = Formula::InSubset {
                                    elem: NameRef::lit(e.key()),
                                    subset: NameRef::lit(sub.clone()),
                                }
                                .and(g);
                            }
                            let b = expand_expr(ctx, &arm.body)?;
                            restore_subst(ctx, var, prev);
                            new_arms.push(CaseArm {
                                guard: CaseGuard::Plain(g),
                                body: b,
                                terminator: arm.terminator,
                            });
                        }
                    }
                }
            }
            Expr::Case {
                arms: new_arms,
                otherwise: Box::new(expand_expr(ctx, otherwise)?),
            }
        }
        Expr::For { var, set, op, body } => {
            let (elems, subset) = ctx.resolve_set(set)?;
            let mut parts = Vec::with_capacity(elems.len());
            for e in &elems {
                let prev = ctx.subst.insert(var.clone(), SubstVal::Elem(e.clone()));
                let mut inst = expand_expr(ctx, body)?;
                if let Some(sub) = &subset {
                    inst = Expr::If {
                        cond: Formula::InSubset {
                            elem: NameRef::lit(e.key()),
                            subset: NameRef::lit(sub.clone()),
                        },
                        then: Box::new(inst),
                        els: None,
                    };
                }
                restore_subst(ctx, var, prev);
                parts.push(inst);
            }
            fold_for(parts, op, ctx)?
        }
    })
}

/// Fold unrolled loop bodies with the loop's operator, matching the
/// paper's right-associated expansion (`E[E1] op ⟨E[E2] op E[E3]⟩`).
fn fold_for(parts: Vec<Expr>, op: &ForOp, ctx: &Ctx<'_>) -> CoreResult<Expr> {
    if parts.is_empty() {
        // "for p̃ ∈ {} op E[p̃] = skip" for statement operators (§6).
        return Ok(Expr::Skip);
    }
    Ok(match op {
        ForOp::Seq => {
            // Right-associated with fate scopes (`E[E1]; ⟨E[E2]; …⟩`),
            // wrapped in a LoopScope so `break` exits the loop early.
            let mut it = parts.into_iter().rev();
            let mut acc = it.next().unwrap();
            for p in it {
                acc = Expr::Seq(vec![p, Expr::Scope(Box::new(acc))]);
            }
            Expr::LoopScope(Box::new(acc))
        }
        ForOp::Par => Expr::Par(parts),
        ForOp::Rep => Expr::Par(parts),
        ForOp::Otherwise(t) => {
            let t = t.as_ref().map(|n| subst_name(ctx, n));
            let mut it = parts.into_iter().rev();
            let mut acc = it.next().unwrap();
            for p in it {
                acc = Expr::Otherwise {
                    body: Box::new(p),
                    timeout: t.clone(),
                    handler: Box::new(Expr::Scope(Box::new(acc))),
                };
            }
            acc
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::program::{FuncDef, InstanceType};

    fn one_junction_program(decls: Vec<Decl>, body: Expr) -> Program {
        ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![JunctionDef::new("j", vec![], decls, body)],
            ))
            .instance("a", "T")
            .main(vec![], start("a", vec![]))
            .build()
    }

    fn expand_one(p: Program) -> CompiledProgram {
        expand(p, &LoadConfig::new()).expect("expansion failed")
    }

    #[test]
    fn for_seq_unrolls_with_loop_scope() {
        let body = for_each(
            "x",
            SetRef::instances(["b1", "b2", "b3"]),
            ForOp::Seq,
            assert_local_ix("P", NameRef::var("x")),
        );
        let cp = expand_one(one_junction_program(
            vec![Decl::for_props("x", SetRef::instances(["b1", "b2", "b3"]), "P", false)],
            body,
        ));
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        // 3 unrolled prop declarations
        let props: Vec<_> = j
            .decls
            .iter()
            .filter_map(|d| match d {
                Decl::Prop { prop, .. } => prop.as_key(),
                _ => None,
            })
            .collect();
        assert_eq!(props, vec!["P[b1]", "P[b2]", "P[b3]"]);
        // body: LoopScope(Seq [assert P[b1], Scope(Seq [assert P[b2], Scope(assert P[b3])])])
        match &j.body {
            Expr::LoopScope(inner) => match &**inner {
                Expr::Seq(v) => {
                    assert!(matches!(&v[0], Expr::Assert { prop, .. } if prop.as_key().unwrap() == "P[b1]"));
                    assert!(matches!(&v[1], Expr::Scope(_)));
                }
                other => panic!("expected Seq, got {other:?}"),
            },
            other => panic!("expected LoopScope, got {other:?}"),
        }
    }

    #[test]
    fn for_par_unrolls_flat() {
        let body = for_each(
            "x",
            SetRef::instances(["b1", "b2"]),
            ForOp::Par,
            Expr::Skip,
        );
        let cp = expand_one(one_junction_program(vec![], body));
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        assert!(matches!(&j.body, Expr::Par(v) if v.len() == 2));
    }

    #[test]
    fn for_empty_set_is_skip() {
        let body = for_each("x", SetRef::Lit(vec![]), ForOp::Seq, Expr::Retry);
        let cp = expand_one(one_junction_program(vec![], body));
        assert_eq!(cp.instance("a").unwrap().junction("j").unwrap().body, Expr::Skip);
    }

    #[test]
    fn for_singleton_is_single_instantiation() {
        let body = for_each(
            "x",
            SetRef::instances(["only"]),
            ForOp::Otherwise(None),
            assert_local_ix("P", NameRef::var("x")),
        );
        let p = one_junction_program(
            vec![Decl::for_props("x", SetRef::instances(["only"]), "P", false)],
            body,
        );
        let cp = expand_one(p);
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        assert!(matches!(&j.body, Expr::Assert { prop, .. } if prop.as_key().unwrap() == "P[only]"));
    }

    #[test]
    fn for_otherwise_right_associates() {
        let body = for_each(
            "x",
            SetRef::instances(["e1", "e2", "e3"]),
            ForOp::Otherwise(None),
            Expr::Skip,
        );
        let cp = expand_one(one_junction_program(vec![], body));
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        // E1 otherwise ⟨E2 otherwise E3⟩
        match &j.body {
            Expr::Otherwise { handler, .. } => match &**handler {
                Expr::Scope(inner) => assert!(matches!(&**inner, Expr::Otherwise { .. })),
                other => panic!("expected Scope, got {other:?}"),
            },
            other => panic!("expected Otherwise, got {other:?}"),
        }
    }

    #[test]
    fn formula_for_empty_sets() {
        let p = one_junction_program(
            vec![Decl::guard(Formula::For {
                var: "x".into(),
                set: SetRef::Lit(vec![]),
                conj: false,
                body: Box::new(Formula::prop("Q")),
            })],
            Expr::Skip,
        );
        let cp = expand_one(p);
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        assert_eq!(j.guard(), Some(&Formula::False));
    }

    #[test]
    fn function_inlining_substitutes_args() {
        let f = FuncDef::new(
            "Initialize",
            vec![p_junction("tgt")],
            vec![],
            seq([
                write_var("state", JRef::var("tgt")),
                Expr::Assert {
                    at: Some(JRef::var("tgt")),
                    prop: PropRef::plain("Activating"),
                },
            ]),
        );
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![JunctionDef::new(
                    "j",
                    vec![],
                    vec![Decl::data("state"), Decl::prop_false("Activating")],
                    call("Initialize", vec![Arg::Junction(JRef::instance("b1"))]),
                )],
            ))
            .instance("a", "T")
            .instance("b1", "T")
            .func(f)
            .main(vec![], start("a", vec![]))
            .build();
        let cp = expand_one(p);
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        match &j.body {
            Expr::Scope(inner) => match &**inner {
                Expr::Seq(v) => {
                    assert!(
                        matches!(&v[0], Expr::Write { to: JRef::Bare(n), .. } if n.as_lit() == Some("b1"))
                    );
                }
                other => panic!("expected Seq, got {other:?}"),
            },
            other => panic!("expected Scope, got {other:?}"),
        }
    }

    #[test]
    fn recursive_template_rejected() {
        let f = FuncDef::new("loopy", vec![], vec![], call("loopy", vec![]));
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![JunctionDef::new("j", vec![], vec![], call("loopy", vec![]))],
            ))
            .instance("a", "T")
            .func(f)
            .main(vec![], start("a", vec![]))
            .build();
        let err = expand(p, &LoadConfig::new()).unwrap_err();
        assert!(matches!(err, CoreError::RecursiveTemplate(_)));
    }

    #[test]
    fn undefined_function_rejected() {
        let p = one_junction_program(vec![], call("nope", vec![]));
        let err = expand(p, &LoadConfig::new()).unwrap_err();
        assert!(matches!(err, CoreError::BadCall { .. }));
    }

    #[test]
    fn set_param_resolved_from_start_args() {
        // Front-end junction takes `backends` as a set param and loops
        // over it; `main` passes a literal set (Fig. 12 shape).
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "F",
                vec![JunctionDef::new(
                    "b",
                    vec![p_set("backends")],
                    vec![Decl::for_props(
                        "t",
                        SetRef::Named(NameRef::var("backends")),
                        "Backend",
                        false,
                    )],
                    for_each(
                        "x",
                        SetRef::Named(NameRef::var("backends")),
                        ForOp::Par,
                        assert_local_ix("Backend", NameRef::var("x")),
                    ),
                )],
            ))
            .ty(InstanceType::new(
                "B",
                vec![JunctionDef::new("serve", vec![], vec![], Expr::Skip)],
            ))
            .instance("f", "F")
            .instances_of("B", &["b1", "b2"])
            .main(
                vec![],
                start_junctions(
                    "f",
                    vec![(
                        "b",
                        vec![Arg::SetLit(vec![
                            SetElem::Junction("b1".into(), "serve".into()),
                            SetElem::Junction("b2".into(), "serve".into()),
                        ])],
                    )],
                ),
            )
            .build();
        let cp = expand_one(p);
        let j = cp.instance("f").unwrap().junction("b").unwrap();
        let props: Vec<_> = j
            .decls
            .iter()
            .filter_map(|d| match d {
                Decl::Prop { prop, .. } => prop.as_key(),
                _ => None,
            })
            .collect();
        assert_eq!(props, vec!["Backend[b1::serve]", "Backend[b2::serve]"]);
        assert!(matches!(&j.body, Expr::Par(v) if v.len() == 2));
    }

    #[test]
    fn subset_unrolls_with_membership_guard() {
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![JunctionDef::new(
                    "j",
                    vec![],
                    vec![
                        Decl::Set {
                            name: "Backs".into(),
                            elems: Some(vec![
                                SetElem::Instance("b1".into()),
                                SetElem::Instance("b2".into()),
                            ]),
                        },
                        Decl::subset("tgt", SetRef::Named(NameRef::lit("Backs"))),
                    ],
                    for_each("b", SetRef::Named(NameRef::var("tgt")), ForOp::Par, Expr::Skip),
                )],
            ))
            .instance("a", "T")
            .main(vec![], start("a", vec![]))
            .build();
        let cp = expand_one(p);
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        match &j.body {
            Expr::Par(v) => {
                assert_eq!(v.len(), 2);
                for (i, part) in v.iter().enumerate() {
                    match part {
                        Expr::If { cond, .. } => match cond {
                            Formula::InSubset { elem, subset } => {
                                assert_eq!(elem.raw(), format!("b{}", i + 1));
                                assert_eq!(subset.raw(), "tgt");
                            }
                            other => panic!("expected InSubset, got {other:?}"),
                        },
                        other => panic!("expected If, got {other:?}"),
                    }
                }
            }
            other => panic!("expected Par, got {other:?}"),
        }
    }

    #[test]
    fn missing_set_errors() {
        let p = one_junction_program(
            vec![Decl::Set { name: "S".into(), elems: None }],
            Expr::Skip,
        );
        let err = expand(p, &LoadConfig::new()).unwrap_err();
        assert!(matches!(err, CoreError::MissingSet(_)));
    }

    #[test]
    fn load_config_provides_sets() {
        let p = one_junction_program(
            vec![Decl::Set { name: "S".into(), elems: None }],
            for_each("x", SetRef::Named(NameRef::lit("S")), ForOp::Seq, Expr::Skip),
        );
        let cfg = LoadConfig::new().with_set(
            "S",
            vec![SetElem::Instance("i1".into()), SetElem::Instance("i2".into())],
        );
        let cp = expand(p, &cfg).unwrap();
        let j = cp.instance("a").unwrap().junction("j").unwrap();
        assert!(matches!(&j.body, Expr::LoopScope(_)));
    }
}
