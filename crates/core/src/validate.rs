//! Static well-formedness checks for C-Saw programs.
//!
//! These implement the validity constraints stated throughout §6:
//!
//! * `case` expressions may not be empty nor contain only an `otherwise`
//!   branch, and `next` may not terminate the arm immediately before
//!   `otherwise`;
//! * host code `⌊·⌉` is not allowed inside transaction blocks `⟨|·|⟩`;
//! * junctions may not communicate with themselves (`write`/`assert`/
//!   `retract` targeting `me::junction`);
//! * sets may not contain sets (enforced structurally by [`SetElem`]);
//! * names must be declared before use, and instance/type references must
//!   resolve;
//! * definitions must receive the right number of parameters.

use std::collections::HashSet;

use crate::decl::{Decl, ParamKind};
use crate::error::{CoreError, CoreResult};
use crate::expr::{Arg, CaseGuard, Expr, Terminator};
use crate::formula::Formula;
use crate::names::{JRef, NameRef, SetElem, SetRef};
use crate::program::{CompiledProgram, JunctionDef, Program};

/// Validate a source-level program (before expansion).
pub fn validate(p: &Program) -> CoreResult<()> {
    check_structure(p)?;
    for ty in &p.types {
        for j in &ty.junctions {
            let loc = format!("{}::{}", ty.name, j.name);
            check_junction(p, j, &loc)?;
        }
    }
    for f in &p.functions {
        // Function bodies are checked in a permissive scope: their names
        // resolve against parameters plus whatever the caller provides.
        check_case_validity(&f.body, &format!("function {}", f.name))?;
        check_no_host_in_transaction(&f.body, false, &format!("function {}", f.name))?;
    }
    check_case_validity(&p.main.body, "main")?;
    check_start_arity(p, &p.main.body, "main")?;
    Ok(())
}

/// Validate a compiled (expanded) program: additionally require that no
/// template constructs remain.
pub fn validate_compiled(cp: &CompiledProgram) -> CoreResult<()> {
    for inst in &cp.instances {
        for j in &inst.junctions {
            let loc = format!("{}::{}", inst.name, j.name);
            let mut err = None;
            j.body.walk(&mut |e| {
                if err.is_some() {
                    return;
                }
                match e {
                    Expr::Call { func, .. } => {
                        err = Some(CoreError::Structure(format!(
                            "unexpanded call to `{func}` in {loc}"
                        )));
                    }
                    Expr::For { .. } => {
                        err = Some(CoreError::Structure(format!(
                            "unexpanded `for` in {loc}"
                        )));
                    }
                    _ => {}
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            check_case_validity(&j.body, &loc)?;
            check_no_host_in_transaction(&j.body, false, &loc)?;
            check_no_self_comm(&j.body, &loc)?;
        }
    }
    Ok(())
}

fn check_structure(p: &Program) -> CoreResult<()> {
    let mut type_names = HashSet::new();
    for ty in &p.types {
        if !type_names.insert(&ty.name) {
            return Err(CoreError::Structure(format!("duplicate type `{}`", ty.name)));
        }
        let mut jnames = HashSet::new();
        for j in &ty.junctions {
            if !jnames.insert(&j.name) {
                return Err(CoreError::Structure(format!(
                    "duplicate junction `{}::{}`",
                    ty.name, j.name
                )));
            }
            let guards = j.decls.iter().filter(|d| matches!(d, Decl::Guard(_))).count();
            if guards > 1 {
                return Err(CoreError::Structure(format!(
                    "junction `{}::{}` declares {} guards (at most one allowed)",
                    ty.name, j.name, guards
                )));
            }
        }
        if ty.junctions.is_empty() {
            return Err(CoreError::Structure(format!(
                "type `{}` has no junctions",
                ty.name
            )));
        }
    }
    let mut inames = HashSet::new();
    for (i, t) in &p.instances {
        if !inames.insert(i) {
            return Err(CoreError::Structure(format!("duplicate instance `{i}`")));
        }
        if !type_names.contains(t) {
            return Err(CoreError::Structure(format!(
                "instance `{i}` has unknown type `{t}`"
            )));
        }
    }
    let mut fnames = HashSet::new();
    for f in &p.functions {
        if !fnames.insert(&f.name) {
            return Err(CoreError::Structure(format!("duplicate function `{}`", f.name)));
        }
    }
    Ok(())
}

/// Names in scope while checking a junction body.
struct Scope {
    props: HashSet<String>,
    data: HashSet<String>,
    sets: HashSet<String>,
    idxs: HashSet<String>,
    params: HashSet<String>,
    bound: Vec<String>,
}

impl Scope {
    fn knows_name(&self, n: &str) -> bool {
        self.props.contains(n)
            || self.data.contains(n)
            || self.sets.contains(n)
            || self.idxs.contains(n)
            || self.params.contains(n)
            || self.bound.iter().any(|b| b == n)
    }
}

fn scope_of(j: &JunctionDef) -> Scope {
    let mut s = Scope {
        props: HashSet::new(),
        data: HashSet::new(),
        sets: HashSet::new(),
        idxs: HashSet::new(),
        params: HashSet::new(),
        bound: Vec::new(),
    };
    for p in &j.params {
        s.params.insert(p.name.clone());
    }
    for d in &j.decls {
        match d {
            Decl::Prop { prop, .. } => {
                if let Some(n) = prop.name.as_lit() {
                    s.props.insert(n.to_string());
                }
            }
            Decl::Data { name } => {
                s.data.insert(name.clone());
            }
            Decl::Set { name, .. } => {
                s.sets.insert(name.clone());
            }
            Decl::Subset { name, .. } => {
                s.sets.insert(name.clone());
            }
            Decl::Idx { name, .. } => {
                s.idxs.insert(name.clone());
            }
            Decl::ForProps { prop, .. } => {
                if let Some(n) = prop.name.as_lit() {
                    s.props.insert(n.to_string());
                }
            }
            Decl::Guard(_) => {}
        }
    }
    s
}

fn check_junction(p: &Program, j: &JunctionDef, loc: &str) -> CoreResult<()> {
    let mut scope = scope_of(j);
    check_case_validity(&j.body, loc)?;
    check_no_host_in_transaction(&j.body, false, loc)?;
    check_no_self_comm(&j.body, loc)?;
    check_names(p, &j.body, &mut scope, loc)?;
    check_start_arity(p, &j.body, loc)?;
    if let Some(g) = j.guard() {
        check_formula_names(g, &scope, loc)?;
    }
    Ok(())
}

fn check_case_validity(e: &Expr, loc: &str) -> CoreResult<()> {
    let mut err: Option<CoreError> = None;
    e.walk(&mut |x| {
        if err.is_some() {
            return;
        }
        if let Expr::Case { arms, .. } = x {
            // "they cannot be empty or only contain an 'otherwise' branch"
            if arms.is_empty() {
                err = Some(CoreError::InvalidCase(format!(
                    "{loc}: case with no guarded arms"
                )));
                return;
            }
            // "nor can 'next' be used immediately before 'otherwise'"
            if let Some(last) = arms.last() {
                if last.terminator == Terminator::Next {
                    err = Some(CoreError::InvalidCase(format!(
                        "{loc}: `next` terminates the arm immediately before `otherwise`"
                    )));
                }
            }
        }
    });
    err.map_or(Ok(()), Err)
}

fn check_no_host_in_transaction(e: &Expr, in_txn: bool, loc: &str) -> CoreResult<()> {
    match e {
        Expr::Host { name, .. } if in_txn => Err(CoreError::HostInTransaction(format!(
            "{loc}: ⌊{name}⌉ inside ⟨|·|⟩"
        ))),
        Expr::Transaction(inner) => check_no_host_in_transaction(inner, true, loc),
        Expr::Scope(inner) | Expr::LoopScope(inner) | Expr::Rep { body: inner, .. } => {
            check_no_host_in_transaction(inner, in_txn, loc)
        }
        Expr::For { body, .. } => check_no_host_in_transaction(body, in_txn, loc),
        Expr::Seq(es) | Expr::Par(es) => {
            for x in es {
                check_no_host_in_transaction(x, in_txn, loc)?;
            }
            Ok(())
        }
        Expr::Otherwise { body, handler, .. } => {
            check_no_host_in_transaction(body, in_txn, loc)?;
            check_no_host_in_transaction(handler, in_txn, loc)
        }
        Expr::Case { arms, otherwise } => {
            for a in arms {
                check_no_host_in_transaction(&a.body, in_txn, loc)?;
            }
            check_no_host_in_transaction(otherwise, in_txn, loc)
        }
        Expr::If { then, els, .. } => {
            check_no_host_in_transaction(then, in_txn, loc)?;
            if let Some(x) = els {
                check_no_host_in_transaction(x, in_txn, loc)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn check_no_self_comm(e: &Expr, loc: &str) -> CoreResult<()> {
    let mut err = None;
    e.walk(&mut |x| {
        if err.is_some() {
            return;
        }
        let bad = match x {
            Expr::Write { to, .. } => matches!(to, JRef::MyJunction),
            Expr::Assert { at: Some(j), .. } | Expr::Retract { at: Some(j), .. } => {
                matches!(j, JRef::MyJunction)
            }
            _ => false,
        };
        if bad {
            err = Some(CoreError::SelfCommunication(format!("{loc}: {x:?}")));
        }
    });
    err.map_or(Ok(()), Err)
}

fn check_formula_names(f: &Formula, scope: &Scope, loc: &str) -> CoreResult<()> {
    check_formula_names_bound(f, scope, loc, &mut Vec::new())
}

fn check_formula_names_bound(
    f: &Formula,
    scope: &Scope,
    loc: &str,
    bound: &mut Vec<String>,
) -> CoreResult<()> {
    match f {
        Formula::Prop(p) => {
            if let Some(n) = p.name.as_lit() {
                if !scope.props.contains(n) && !scope.params.contains(n) {
                    return Err(CoreError::Scope {
                        context: loc.to_string(),
                        name: n.to_string(),
                        detail: "proposition not declared".into(),
                    });
                }
            }
            if let Some(ix) = &p.index {
                if let Some(v) = ix.as_var() {
                    if !scope.knows_name(v) && !bound.iter().any(|b| b == v) {
                        return Err(CoreError::Scope {
                            context: loc.to_string(),
                            name: v.to_string(),
                            detail: "index variable not in scope".into(),
                        });
                    }
                }
            }
            Ok(())
        }
        Formula::Not(a) => check_formula_names_bound(a, scope, loc, bound),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            check_formula_names_bound(a, scope, loc, bound)?;
            check_formula_names_bound(b, scope, loc, bound)
        }
        Formula::For { var, body, .. } => {
            bound.push(var.clone());
            let r = check_formula_names_bound(body, scope, loc, bound);
            bound.pop();
            r
        }
        // Remote atoms (`γ@F`, `S(ι)`) and membership tests resolve at
        // run time against other instances' state.
        Formula::At(_, _)
        | Formula::Live(_)
        | Formula::InSubset { .. }
        | Formula::False
        | Formula::True => Ok(()),
    }
}

fn check_data_ref(n: &NameRef, scope: &Scope, loc: &str, what: &str) -> CoreResult<()> {
    match n {
        NameRef::Lit(s) => {
            if !scope.data.contains(s) && !scope.params.contains(s) {
                return Err(CoreError::Scope {
                    context: loc.to_string(),
                    name: s.clone(),
                    detail: format!("{what}: data not declared"),
                });
            }
        }
        NameRef::Var(v) => {
            if !scope.knows_name(v) {
                return Err(CoreError::Scope {
                    context: loc.to_string(),
                    name: v.clone(),
                    detail: format!("{what}: variable not in scope"),
                });
            }
        }
    }
    Ok(())
}

fn check_set_ref(s: &SetRef, scope: &Scope, loc: &str) -> CoreResult<()> {
    if let SetRef::Named(n) = s {
        if !scope.sets.contains(n.raw())
            && !scope.params.contains(n.raw())
            && !scope.bound.iter().any(|b| b == n.raw())
        {
            return Err(CoreError::Scope {
                context: loc.to_string(),
                name: n.raw().to_string(),
                detail: "set not declared".into(),
            });
        }
    }
    Ok(())
}

fn check_names(p: &Program, e: &Expr, scope: &mut Scope, loc: &str) -> CoreResult<()> {
    match e {
        Expr::Write { data, .. } => check_data_ref(data, scope, loc, "write"),
        Expr::Save { data } => check_data_ref(data, scope, loc, "save"),
        Expr::Restore { data } => check_data_ref(data, scope, loc, "restore"),
        Expr::Wait { data, formula } => {
            for d in data {
                check_data_ref(d, scope, loc, "wait")?;
            }
            check_formula_names(formula, scope, loc)
        }
        Expr::Assert { prop, .. } | Expr::Retract { prop, .. } => {
            check_formula_names(&Formula::Prop(prop.clone()), scope, loc)
        }
        Expr::Verify(f) | Expr::If { cond: f, .. } => {
            check_formula_names(f, scope, loc)?;
            if let Expr::If { then, els, .. } = e {
                check_names(p, then, scope, loc)?;
                if let Some(x) = els {
                    check_names(p, x, scope, loc)?;
                }
            }
            Ok(())
        }
        Expr::Seq(es) | Expr::Par(es) => {
            for x in es {
                check_names(p, x, scope, loc)?;
            }
            Ok(())
        }
        Expr::Scope(inner)
        | Expr::Transaction(inner)
        | Expr::LoopScope(inner)
        | Expr::Rep { body: inner, .. } => check_names(p, inner, scope, loc),
        Expr::Otherwise { body, timeout, handler } => {
            if let Some(t) = timeout {
                if let Some(v) = t.as_var() {
                    if !scope.knows_name(v) {
                        return Err(CoreError::Scope {
                            context: loc.to_string(),
                            name: v.to_string(),
                            detail: "timeout parameter not in scope".into(),
                        });
                    }
                }
            }
            check_names(p, body, scope, loc)?;
            check_names(p, handler, scope, loc)
        }
        Expr::Case { arms, otherwise } => {
            for a in arms {
                match &a.guard {
                    CaseGuard::Plain(f) => check_formula_names(f, scope, loc)?,
                    CaseGuard::For { var, set, formula } => {
                        check_set_ref(set, scope, loc)?;
                        scope.bound.push(var.clone());
                        check_formula_names(formula, scope, loc)?;
                        check_names(p, &a.body, scope, loc)?;
                        scope.bound.pop();
                        continue;
                    }
                }
                check_names(p, &a.body, scope, loc)?;
            }
            check_names(p, otherwise, scope, loc)
        }
        Expr::For { var, set, body, .. } => {
            check_set_ref(set, scope, loc)?;
            scope.bound.push(var.clone());
            let r = check_names(p, body, scope, loc);
            scope.bound.pop();
            r
        }
        Expr::Call { func, args } => {
            let f = p.function(func).ok_or_else(|| CoreError::BadCall {
                func: func.clone(),
                detail: "function not defined".into(),
            })?;
            if f.params.len() != args.len() {
                return Err(CoreError::BadCall {
                    func: func.clone(),
                    detail: format!(
                        "arity mismatch: expected {}, got {}",
                        f.params.len(),
                        args.len()
                    ),
                });
            }
            Ok(())
        }
        Expr::Start { instance, .. } | Expr::Stop(instance) => {
            if let Some(n) = instance.as_lit() {
                if p.type_of(n).is_none() {
                    return Err(CoreError::Structure(format!(
                        "{loc}: start/stop of unknown instance `{n}`"
                    )));
                }
            }
            Ok(())
        }
        Expr::Keep { keys } => {
            for k in keys {
                if let NameRef::Lit(s) = k {
                    if !scope.props.contains(s) && !scope.data.contains(s) {
                        return Err(CoreError::Scope {
                            context: loc.to_string(),
                            name: s.clone(),
                            detail: "keep: key not declared".into(),
                        });
                    }
                }
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn check_start_arity(p: &Program, e: &Expr, loc: &str) -> CoreResult<()> {
    let mut err = None;
    e.walk(&mut |x| {
        if err.is_some() {
            return;
        }
        let Expr::Start { instance, junction_args } = x else {
            return;
        };
        let Some(iname) = instance.as_lit() else { return };
        let Some(ty) = p.type_of(iname) else { return };
        for (jname, args) in junction_args {
            let jdef = match jname {
                Some(j) => match ty.junction(j) {
                    Some(jd) => jd,
                    None => {
                        err = Some(CoreError::Structure(format!(
                            "{loc}: start {iname}: unknown junction `{j}`"
                        )));
                        return;
                    }
                },
                None => {
                    if ty.junctions.len() != 1 {
                        err = Some(CoreError::Structure(format!(
                            "{loc}: start {iname}: junction name required \
                             (type has {} junctions)",
                            ty.junctions.len()
                        )));
                        return;
                    }
                    &ty.junctions[0]
                }
            };
            if jdef.params.len() != args.len() {
                err = Some(CoreError::BadCall {
                    func: format!("start {iname} {}", jdef.name),
                    detail: format!(
                        "arity mismatch: expected {}, got {}",
                        jdef.params.len(),
                        args.len()
                    ),
                });
                return;
            }
            // Kind check the statically-checkable arguments.
            for (param, arg) in jdef.params.iter().zip(args.iter()) {
                let ok = match (param.kind, arg) {
                    // Sets may not contain sets — structurally
                    // guaranteed by SetElem; any literal is well-kinded.
                    (ParamKind::Set, Arg::SetLit(_)) => true,
                    (ParamKind::Timeout, Arg::Value(v)) => v.as_duration().is_some(),
                    (ParamKind::Junction, Arg::Junction(_)) => true,
                    (_, Arg::Name(_)) => true,
                    (_, Arg::ScaledTimeout { .. }) => param.kind == ParamKind::Timeout,
                    (ParamKind::Prop, Arg::Prop(_)) => true,
                    (ParamKind::Host, Arg::Value(_)) => true,
                    _ => false,
                };
                if !ok {
                    err = Some(CoreError::BadCall {
                        func: format!("start {iname} {}", jdef.name),
                        detail: format!(
                            "argument for `{}` has wrong kind: {:?} vs {:?}",
                            param.name, param.kind, arg
                        ),
                    });
                    return;
                }
            }
        }
    });
    err.map_or(Ok(()), Err)
}

/// Check that no set literal anywhere nests sets — structural with the
/// current [`SetElem`], kept as an explicit invariant check for
/// forward-compatibility.
pub fn check_set_elems(elems: &[SetElem]) -> CoreResult<()> {
    let _ = elems;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::program::InstanceType;

    fn prog(decls: Vec<Decl>, body: Expr) -> Program {
        ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![crate::program::JunctionDef::new("j", vec![], decls, body)],
            ))
            .instance("a", "T")
            .main(vec![], start("a", vec![]))
            .build()
    }

    #[test]
    fn fig3_validates() {
        validate(&fig3_program()).unwrap();
    }

    #[test]
    fn empty_case_rejected() {
        let p = prog(vec![], case(vec![], skip()));
        assert!(matches!(validate(&p), Err(CoreError::InvalidCase(_))));
    }

    #[test]
    fn next_before_otherwise_rejected() {
        let p = prog(
            vec![Decl::prop_false("A")],
            case(
                vec![arm(Formula::prop("A"), skip(), Terminator::Next)],
                skip(),
            ),
        );
        assert!(matches!(validate(&p), Err(CoreError::InvalidCase(_))));
    }

    #[test]
    fn host_in_transaction_rejected() {
        let p = prog(vec![], transaction(host("H")));
        assert!(matches!(validate(&p), Err(CoreError::HostInTransaction(_))));
    }

    #[test]
    fn host_in_plain_scope_allowed() {
        let p = prog(vec![], scope(host("H")));
        validate(&p).unwrap();
    }

    #[test]
    fn self_write_rejected() {
        let p = prog(
            vec![Decl::data("n")],
            Expr::Write {
                data: NameRef::lit("n"),
                to: JRef::MyJunction,
            },
        );
        assert!(matches!(validate(&p), Err(CoreError::SelfCommunication(_))));
    }

    #[test]
    fn self_local_assert_allowed() {
        // `assert [] Prop` is legal; `assert [me::junction] Prop` is not.
        let p = prog(vec![Decl::prop_false("P")], assert_local("P"));
        validate(&p).unwrap();
        let p2 = prog(
            vec![Decl::prop_false("P")],
            Expr::Assert {
                at: Some(JRef::MyJunction),
                prop: crate::names::PropRef::plain("P"),
            },
        );
        assert!(matches!(validate(&p2), Err(CoreError::SelfCommunication(_))));
    }

    #[test]
    fn undeclared_prop_rejected() {
        let p = prog(vec![], assert_local("Ghost"));
        assert!(matches!(validate(&p), Err(CoreError::Scope { .. })));
    }

    #[test]
    fn undeclared_data_rejected() {
        let p = prog(vec![], save("ghost"));
        assert!(matches!(validate(&p), Err(CoreError::Scope { .. })));
    }

    #[test]
    fn duplicate_instance_rejected() {
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![crate::program::JunctionDef::new("j", vec![], vec![], skip())],
            ))
            .instance("a", "T")
            .instance("a", "T")
            .main(vec![], skip())
            .build();
        assert!(matches!(validate(&p), Err(CoreError::Structure(_))));
    }

    #[test]
    fn unknown_type_rejected() {
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![crate::program::JunctionDef::new("j", vec![], vec![], skip())],
            ))
            .instance("a", "Nope")
            .main(vec![], skip())
            .build();
        assert!(matches!(validate(&p), Err(CoreError::Structure(_))));
    }

    #[test]
    fn two_guards_rejected() {
        let p = prog(
            vec![
                Decl::prop_false("A"),
                Decl::guard(Formula::prop("A")),
                Decl::guard(Formula::prop("A").not()),
            ],
            skip(),
        );
        assert!(matches!(validate(&p), Err(CoreError::Structure(_))));
    }

    #[test]
    fn start_arity_checked() {
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![crate::program::JunctionDef::new(
                    "j",
                    vec![p_timeout("t")],
                    vec![],
                    skip(),
                )],
            ))
            .instance("a", "T")
            .main(vec![], start("a", vec![]))
            .build();
        assert!(matches!(validate(&p), Err(CoreError::BadCall { .. })));
    }

    #[test]
    fn start_kind_checked() {
        let p = ProgramBuilder::new()
            .ty(InstanceType::new(
                "T",
                vec![crate::program::JunctionDef::new(
                    "j",
                    vec![p_timeout("t")],
                    vec![],
                    skip(),
                )],
            ))
            .instance("a", "T")
            .main(
                vec![],
                start("a", vec![Arg::Value(crate::value::Value::Int(3))]),
            )
            .build();
        assert!(matches!(validate(&p), Err(CoreError::BadCall { .. })));
    }

    #[test]
    fn compiled_program_with_residual_for_rejected() {
        use crate::program::{CompiledInstance, CompiledProgram, MainDef};
        let body = for_each("x", SetRef::Lit(vec![]), crate::expr::ForOp::Seq, skip());
        let cp = CompiledProgram {
            program: Program {
                types: vec![],
                instances: vec![],
                functions: vec![],
                main: MainDef { params: vec![], body: skip() },
            },
            instances: vec![CompiledInstance {
                name: "a".into(),
                type_name: "T".into(),
                junctions: vec![crate::program::JunctionDef::new("j", vec![], vec![], body)],
            }],
            retry_limit: 3,
        };
        assert!(matches!(validate_compiled(&cp), Err(CoreError::Structure(_))));
    }
}
