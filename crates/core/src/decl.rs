//! Junction declarations (`| init prop …`, `| guard …`, `| set …`, …) and
//! definition parameters.

use crate::formula::Formula;
use crate::names::{Ident, NameRef, PropRef, SetElem, SetRef};

/// Kinds of definition parameter. "Propositions, named data, sets, and
/// host-language data are all legal parameters" (§6); junction targets and
/// timeouts appear throughout the examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// A timeout (e.g. the `t` threaded through every example).
    Timeout,
    /// A junction/instance target (Fig. 3's `junction(g)`).
    Junction,
    /// A proposition name (Fig. 16's `Watch(tgt, prop)` — compile-time).
    Prop,
    /// A named datum.
    Data,
    /// A set (Fig. 12's `b({b1::serve, b2::serve}, t)`).
    Set,
    /// An index over a set (§7.3 mentions indices passed by parameter).
    Idx,
    /// Opaque host-language data.
    Host,
}

/// A named, typed definition parameter. Parameters are constant variables:
/// readable, never assignable (§6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: Ident,
    /// Parameter kind.
    pub kind: ParamKind,
}

impl Param {
    /// Construct a parameter.
    pub fn new(name: impl Into<String>, kind: ParamKind) -> Param {
        Param { name: name.into(), kind }
    }
}

/// A declaration at the head of a junction or function definition.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    /// `init prop P` / `init prop ¬P`: declare a proposition with its
    /// initial value (`¬P` initializes to false).
    Prop {
        /// The proposition (index must be a literal or `for`-bound var).
        prop: PropRef,
        /// Initial value.
        init: bool,
    },
    /// `init data n`: declare a datum, initialized to `undef`.
    Data {
        /// Datum name.
        name: Ident,
    },
    /// `guard F`: the junction may only be scheduled while `F` holds.
    Guard(Formula),
    /// `set S` (load-time value) or a literal set assignment
    /// (Fig. 6's `set Backs # Assigned to {Bck1, …, BckN}`).
    Set {
        /// Set name.
        name: Ident,
        /// Literal elements, or `None` when provided at load time.
        elems: Option<Vec<SetElem>>,
    },
    /// `subset s of S`: a run-time subset of `S`, populated by host code;
    /// initialized to `undef`.
    Subset {
        /// Subset name.
        name: Ident,
        /// The superset.
        of: SetRef,
    },
    /// `idx i of S`: a host-provided choice function (cursor) over `S`;
    /// initialized to `undef`.
    Idx {
        /// Index name.
        name: Ident,
        /// The indexed set.
        of: SetRef,
    },
    /// `for x̃ ∈ S init prop ¬P[x̃]`: declare one proposition per element
    /// (Fig. 6's `ActiveBackend`, Fig. 10's `Backend`). Unrolled at
    /// compile time.
    ForProps {
        /// Bound symbol.
        var: Ident,
        /// Iterated set.
        set: SetRef,
        /// The proposition family (index mentions `var`).
        prop: PropRef,
        /// Initial value for each member.
        init: bool,
    },
}

impl Decl {
    /// `init prop ¬name` (false-initialized plain proposition).
    pub fn prop_false(name: impl Into<String>) -> Decl {
        Decl::Prop {
            prop: PropRef::plain(name),
            init: false,
        }
    }
    /// `init prop name` (true-initialized plain proposition — e.g.
    /// `Starting` in Fig. 10/13).
    pub fn prop_true(name: impl Into<String>) -> Decl {
        Decl::Prop {
            prop: PropRef::plain(name),
            init: true,
        }
    }
    /// `init data name`.
    pub fn data(name: impl Into<String>) -> Decl {
        Decl::Data { name: name.into() }
    }
    /// `guard F`.
    pub fn guard(f: Formula) -> Decl {
        Decl::Guard(f)
    }
    /// `idx name of set`.
    pub fn idx(name: impl Into<String>, of: SetRef) -> Decl {
        Decl::Idx { name: name.into(), of }
    }
    /// `subset name of set`.
    pub fn subset(name: impl Into<String>, of: SetRef) -> Decl {
        Decl::Subset { name: name.into(), of }
    }
    /// `for var ∈ set init prop ¬family[var]`.
    pub fn for_props(
        var: impl Into<String>,
        set: SetRef,
        family: impl Into<String>,
        init: bool,
    ) -> Decl {
        let var = var.into();
        Decl::ForProps {
            prop: PropRef::indexed(family, NameRef::var(var.clone())),
            var,
            set,
            init,
        }
    }

    /// The name this declaration introduces, if any (`Guard` introduces
    /// none; `ForProps` introduces the family name).
    pub fn declared_name(&self) -> Option<&str> {
        match self {
            Decl::Prop { prop, .. } => prop.name.as_lit(),
            Decl::Data { name }
            | Decl::Set { name, .. }
            | Decl::Subset { name, .. }
            | Decl::Idx { name, .. } => Some(name),
            Decl::ForProps { prop, .. } => prop.name.as_lit(),
            Decl::Guard(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        match Decl::prop_false("Work") {
            Decl::Prop { prop, init } => {
                assert_eq!(prop.as_key().unwrap(), "Work");
                assert!(!init);
            }
            _ => unreachable!(),
        }
        match Decl::prop_true("Starting") {
            Decl::Prop { init, .. } => assert!(init),
            _ => unreachable!(),
        }
    }

    #[test]
    fn for_props_binds_var_in_index() {
        let d = Decl::for_props("tgt", SetRef::instances(["b1", "b2"]), "Backend", false);
        match d {
            Decl::ForProps { var, prop, .. } => {
                assert_eq!(var, "tgt");
                assert_eq!(prop.index.unwrap(), NameRef::var("tgt"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn declared_names() {
        assert_eq!(Decl::prop_false("Work").declared_name(), Some("Work"));
        assert_eq!(Decl::data("n").declared_name(), Some("n"));
        assert_eq!(Decl::guard(Formula::True).declared_name(), None);
        assert_eq!(
            Decl::for_props("x", SetRef::Lit(vec![]), "Fam", false).declared_name(),
            Some("Fam")
        );
    }
}
