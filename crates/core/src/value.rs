//! Runtime values stored in junction KV tables and parameter environments.

use std::fmt;
use std::time::Duration;

use crate::names::SetElem;

/// A value stored in a junction's key-value table or bound to a definition
/// parameter.
///
/// Data variables are "always initialized with the special `undef`" (§6,
/// *Initialization*); writing or restoring `undef` is an error enforced by
/// the runtime. Propositions are stored as `Bool`s. `Bytes` carries
/// application state serialized by `csaw-serial`. `Target` carries
/// junction/instance references for parameters and `idx` cursors;
/// `Set` carries set parameters (which may not nest).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// The distinguished not-a-value; see §6 *Initialization*.
    Undef,
    /// Proposition value.
    Bool(bool),
    /// Scalar integer datum.
    Int(i64),
    /// Scalar text datum.
    Str(String),
    /// Serialized application state (produced by `save`, consumed by
    /// `restore`; the only kind of data that `write` may push).
    Bytes(Vec<u8>),
    /// Timeout parameter.
    Duration(Duration),
    /// A junction or instance target (`b1` or `b1::serve`).
    Target(String),
    /// A set parameter. Sets have fixed compile-time size and cannot
    /// contain other sets.
    Set(Vec<SetElem>),
}

impl Value {
    /// True iff the value is `undef`.
    pub fn is_undef(&self) -> bool {
        matches!(self, Value::Undef)
    }

    /// Byte payload, if this is serialized application state.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Boolean payload, if this is a proposition value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Duration payload (timeout parameters).
    pub fn as_duration(&self) -> Option<Duration> {
        match self {
            Value::Duration(d) => Some(*d),
            _ => None,
        }
    }

    /// Target payload (junction/instance references).
    pub fn as_target(&self) -> Option<&str> {
        match self {
            Value::Target(t) => Some(t),
            _ => None,
        }
    }

    /// Set payload.
    pub fn as_set(&self) -> Option<&[SetElem]> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes (used for accounting and the
    /// object-size sharding experiments).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Undef => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Duration(_) => 8,
            Value::Target(t) => t.len(),
            Value::Set(s) => s.iter().map(|e| e.key().len()).sum(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undef => write!(f, "undef"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Duration(d) => write!(f, "{d:?}"),
            Value::Target(t) => write!(f, "{t}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, e) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}
impl From<Duration> for Value {
    fn from(d: Duration) -> Self {
        Value::Duration(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undef_detection() {
        assert!(Value::Undef.is_undef());
        assert!(!Value::Bool(false).is_undef());
    }

    #[test]
    fn accessors_are_kind_strict() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::Target("b1::serve".into()).as_target(), Some("b1::serve"));
        assert_eq!(
            Value::Duration(Duration::from_millis(5)).as_duration(),
            Some(Duration::from_millis(5))
        );
    }

    #[test]
    fn approx_size_tracks_payload() {
        assert_eq!(Value::Bytes(vec![0; 100]).approx_size(), 100);
        assert_eq!(Value::Str("abcd".into()).approx_size(), 4);
        assert_eq!(Value::Undef.approx_size(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Undef.to_string(), "undef");
        assert_eq!(Value::Bytes(vec![0; 3]).to_string(), "<3 bytes>");
        assert_eq!(
            Value::Set(vec![SetElem::Instance("a".into()), SetElem::Int(1)]).to_string(),
            "{a, 1}"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(vec![9u8]), Value::Bytes(vec![9]));
    }
}
