//! Errors produced by validation and expansion.

use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// A static (compile-time) error in a C-Saw program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A name was used without being declared, or declared twice.
    Scope { context: String, name: String, detail: String },
    /// A `case` expression violated the paper's validity constraints
    /// (§6, *More on branching*).
    InvalidCase(String),
    /// A function call had the wrong arity or argument kinds, or a
    /// function was not defined.
    BadCall { func: String, detail: String },
    /// (Mutual) recursion between function templates: templates expand at
    /// compile time and must therefore be non-recursive.
    RecursiveTemplate(String),
    /// A `set` declaration with no literal value was not provided at load
    /// time ("`set` must be specified at load time", §6).
    MissingSet(String),
    /// Sets cannot contain sets.
    NestedSet(String),
    /// Host code `⌊·⌉` is not allowed inside transaction blocks `⟨|·|⟩`
    /// since roll-back is undefined for it (§6, *Functions and brackets*).
    HostInTransaction(String),
    /// A junction attempted to communicate with itself (`write`/`assert`
    /// to `me::junction` — §6, *Communication to self*).
    SelfCommunication(String),
    /// Structural error: unknown instance/type/junction, duplicate names…
    Structure(String),
    /// `retry`/`break`/`next`/`reconsider` used outside a legal context.
    BadControl(String),
    /// Expansion exceeded its budget (runaway unrolling).
    ExpansionBudget(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Scope { context, name, detail } => {
                write!(f, "scope error in {context}: `{name}`: {detail}")
            }
            CoreError::InvalidCase(d) => write!(f, "invalid case expression: {d}"),
            CoreError::BadCall { func, detail } => write!(f, "bad call to `{func}`: {detail}"),
            CoreError::RecursiveTemplate(d) => write!(f, "recursive function template: {d}"),
            CoreError::MissingSet(s) => write!(f, "set `{s}` not provided at load time"),
            CoreError::NestedSet(s) => write!(f, "set `{s}` contains a set (sets may not nest)"),
            CoreError::HostInTransaction(d) => {
                write!(f, "host code inside transaction block: {d}")
            }
            CoreError::SelfCommunication(d) => write!(f, "junction communicates with itself: {d}"),
            CoreError::Structure(d) => write!(f, "structural error: {d}"),
            CoreError::BadControl(d) => write!(f, "control-flow error: {d}"),
            CoreError::ExpansionBudget(d) => write!(f, "expansion budget exceeded: {d}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::Scope {
            context: "junction f::b".into(),
            name: "Work".into(),
            detail: "proposition not declared".into(),
        };
        let s = e.to_string();
        assert!(s.contains("f::b") && s.contains("Work"));
        assert!(CoreError::MissingSet("Backs".into()).to_string().contains("Backs"));
    }
}
