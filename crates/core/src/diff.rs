//! Structural diff between two compiled programs.
//!
//! Live reconfiguration (the paper's title claim — *reconfigurable*
//! architecture) needs to know exactly which parts of a running system a
//! transition touches, because the executor must quiesce **only** those
//! parts: every instance outside the diff's footprint keeps serving
//! traffic without pausing. This module compares two [`CompiledProgram`]s
//! at instance/junction granularity — junction bodies are compared by
//! structural equality of their fully-expanded definitions, so a
//! shard-count change that alters a `For`-expanded fan-out shows up even
//! when the source text of the type is unchanged.

use std::collections::BTreeMap;

use crate::program::{CompiledInstance, CompiledProgram, JunctionDef};

/// How one junction of a retained instance changed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JunctionChange {
    /// Present in B only: the instance gains a junction (new table,
    /// fresh scheduler).
    Added,
    /// Present in A only: the junction's scheduler stops and its table
    /// is discarded (after optional migration).
    Removed,
    /// Present in both with structurally different expanded definitions
    /// (body, declarations or parameters differ): the table is migrated
    /// onto the new declaration set.
    Modified,
}

/// Diff of one instance that exists in both programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceDiff {
    /// Instance name.
    pub name: String,
    /// `Some((old, new))` when the instance's type name changed.
    pub type_change: Option<(String, String)>,
    /// Per-junction changes, `(junction name, change)`. Junctions whose
    /// expanded definitions are identical in A and B are not listed.
    pub junctions: Vec<(String, JunctionChange)>,
}

impl InstanceDiff {
    /// Whether anything about this instance actually changed.
    pub fn is_changed(&self) -> bool {
        self.type_change.is_some() || !self.junctions.is_empty()
    }
}

/// The full structural diff of two compiled programs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramDiff {
    /// Instances present only in B, in B's declaration order.
    pub added: Vec<String>,
    /// Instances present only in A, in A's declaration order.
    pub removed: Vec<String>,
    /// Instances present in both whose expanded shape differs.
    pub changed: Vec<InstanceDiff>,
    /// Instances present in both with identical expanded junctions —
    /// the non-footprint: reconfiguration never pauses these.
    pub unchanged: Vec<String>,
}

impl ProgramDiff {
    /// The transition's *footprint*: every instance the executor must
    /// quiesce or (re)start — removed, changed, and added instances.
    /// Everything else keeps running untouched.
    pub fn footprint(&self) -> Vec<&str> {
        self.removed
            .iter()
            .map(String::as_str)
            .chain(self.changed.iter().map(|c| c.name.as_str()))
            .chain(self.added.iter().map(String::as_str))
            .collect()
    }

    /// Instances of A that must be quiesced (drained and, if retained,
    /// migrated): the removed and changed sets. Added instances do not
    /// exist yet, so they need no quiescence.
    pub fn quiesce_set(&self) -> Vec<&str> {
        self.removed
            .iter()
            .map(String::as_str)
            .chain(self.changed.iter().map(|c| c.name.as_str()))
            .collect()
    }

    /// Whether A and B are structurally identical (nothing to do).
    pub fn is_identity(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total number of touched instances.
    pub fn footprint_len(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }

    /// Per-instance net effect of this diff alone — the single-diff
    /// case of [`compose_diffs`], for comparing a full diff against a
    /// composed phase sequence.
    pub fn net_changes(&self) -> BTreeMap<String, NetChange> {
        compose_diffs(&[self])
    }
}

/// Net per-instance effect of a (sequence of) diff(s) — what happened
/// to the instance overall, ignoring intermediate states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetChange {
    /// Absent before, present after.
    Added,
    /// Present before, absent after.
    Removed,
    /// Present throughout, but its expanded shape differs.
    Changed,
}

/// Compose a sequence of diffs applied in order into per-instance net
/// effects. A planner splits one A→B diff into phased diffs; this folds
/// the phases back so tests can assert they cover exactly the full diff
/// (`compose_diffs(&phase_diffs) == full.net_changes()`). An instance
/// added then removed mid-sequence folds to no net effect; removed then
/// re-added folds to [`NetChange::Changed`].
pub fn compose_diffs(diffs: &[&ProgramDiff]) -> BTreeMap<String, NetChange> {
    let mut net: BTreeMap<String, NetChange> = BTreeMap::new();
    for d in diffs {
        for n in &d.added {
            match net.get(n) {
                Some(NetChange::Removed) => {
                    net.insert(n.clone(), NetChange::Changed);
                }
                Some(_) => {}
                None => {
                    net.insert(n.clone(), NetChange::Added);
                }
            }
        }
        for n in &d.removed {
            match net.get(n) {
                Some(NetChange::Added) => {
                    net.remove(n);
                }
                _ => {
                    net.insert(n.clone(), NetChange::Removed);
                }
            }
        }
        for c in &d.changed {
            match net.get(&c.name) {
                Some(NetChange::Added) => {}
                _ => {
                    net.insert(c.name.clone(), NetChange::Changed);
                }
            }
        }
    }
    net
}

fn diff_instance(a: &CompiledInstance, b: &CompiledInstance) -> InstanceDiff {
    let mut junctions = Vec::new();
    for ja in &a.junctions {
        match b.junction(&ja.name) {
            None => junctions.push((ja.name.clone(), JunctionChange::Removed)),
            Some(jb) if junction_differs(ja, jb) => {
                junctions.push((ja.name.clone(), JunctionChange::Modified));
            }
            Some(_) => {}
        }
    }
    for jb in &b.junctions {
        if a.junction(&jb.name).is_none() {
            junctions.push((jb.name.clone(), JunctionChange::Added));
        }
    }
    InstanceDiff {
        name: a.name.clone(),
        type_change: (a.type_name != b.type_name)
            .then(|| (a.type_name.clone(), b.type_name.clone())),
        junctions,
    }
}

fn junction_differs(a: &JunctionDef, b: &JunctionDef) -> bool {
    a != b
}

/// Compute the structural diff taking compiled program `a` to `b`.
pub fn diff_programs(a: &CompiledProgram, b: &CompiledProgram) -> ProgramDiff {
    let mut diff = ProgramDiff::default();
    for ia in &a.instances {
        match b.instance(&ia.name) {
            None => diff.removed.push(ia.name.clone()),
            Some(ib) => {
                let d = diff_instance(ia, ib);
                if d.is_changed() {
                    diff.changed.push(d);
                } else {
                    diff.unchanged.push(ia.name.clone());
                }
            }
        }
    }
    for ib in &b.instances {
        if a.instance(&ib.name).is_none() {
            diff.added.push(ib.name.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::{InstanceType, MainDef, Program};

    fn compiled(instances: Vec<(&str, &str, Vec<JunctionDef>)>) -> CompiledProgram {
        CompiledProgram {
            program: Program {
                types: vec![InstanceType::new("T", vec![])],
                instances: instances
                    .iter()
                    .map(|(n, t, _)| (n.to_string(), t.to_string()))
                    .collect(),
                functions: vec![],
                main: MainDef { params: vec![], body: Expr::Skip },
            },
            instances: instances
                .into_iter()
                .map(|(n, t, js)| CompiledInstance {
                    name: n.into(),
                    type_name: t.into(),
                    junctions: js,
                })
                .collect(),
            retry_limit: 3,
        }
    }

    fn j(name: &str, body: Expr) -> JunctionDef {
        JunctionDef::new(name, vec![], vec![], body)
    }

    #[test]
    fn identical_programs_diff_to_identity() {
        let a = compiled(vec![("f", "T", vec![j("c", Expr::Skip)])]);
        let d = diff_programs(&a, &a.clone());
        assert!(d.is_identity());
        assert_eq!(d.unchanged, vec!["f"]);
        assert!(d.footprint().is_empty());
    }

    #[test]
    fn added_and_removed_instances() {
        let a = compiled(vec![
            ("f", "T", vec![j("c", Expr::Skip)]),
            ("old", "T", vec![j("c", Expr::Skip)]),
        ]);
        let b = compiled(vec![
            ("f", "T", vec![j("c", Expr::Skip)]),
            ("new", "T", vec![j("c", Expr::Skip)]),
        ]);
        let d = diff_programs(&a, &b);
        assert_eq!(d.added, vec!["new"]);
        assert_eq!(d.removed, vec!["old"]);
        assert_eq!(d.unchanged, vec!["f"]);
        assert_eq!(d.footprint(), vec!["old", "new"]);
        assert_eq!(d.quiesce_set(), vec!["old"]);
    }

    #[test]
    fn modified_junction_is_detected_structurally() {
        let a = compiled(vec![("f", "T", vec![j("c", Expr::Skip)])]);
        let b = compiled(vec![(
            "f",
            "T",
            vec![j("c", Expr::Seq(vec![Expr::Skip, Expr::Return]))],
        )]);
        let d = diff_programs(&a, &b);
        assert_eq!(d.changed.len(), 1);
        assert_eq!(
            d.changed[0].junctions,
            vec![("c".to_string(), JunctionChange::Modified)]
        );
        assert!(!d.is_identity());
        assert_eq!(d.quiesce_set(), vec!["f"]);
    }

    #[test]
    fn junction_add_remove_within_instance() {
        let a = compiled(vec![("f", "T", vec![j("c", Expr::Skip), j("gone", Expr::Skip)])]);
        let b = compiled(vec![("f", "T", vec![j("c", Expr::Skip), j("fresh", Expr::Skip)])]);
        let d = diff_programs(&a, &b);
        let id = &d.changed[0];
        assert!(id
            .junctions
            .contains(&("gone".to_string(), JunctionChange::Removed)));
        assert!(id
            .junctions
            .contains(&("fresh".to_string(), JunctionChange::Added)));
        assert!(!id.junctions.iter().any(|(n, _)| n == "c"));
    }

    #[test]
    fn compose_folds_phase_diffs_to_net_effect() {
        let a = compiled(vec![("f", "T", vec![j("c", Expr::Skip)]), ("old", "T", vec![])]);
        let mid = compiled(vec![
            ("f", "T", vec![j("c", Expr::Skip)]),
            ("old", "T", vec![]),
            ("new", "T", vec![]),
        ]);
        let b = compiled(vec![
            ("f", "T", vec![j("c", Expr::Seq(vec![Expr::Skip, Expr::Return]))]),
            ("new", "T", vec![]),
        ]);
        let d1 = diff_programs(&a, &mid);
        let d2 = diff_programs(&mid, &b);
        assert_eq!(compose_diffs(&[&d1, &d2]), diff_programs(&a, &b).net_changes());
    }

    #[test]
    fn compose_cancels_add_then_remove() {
        let a = compiled(vec![("f", "T", vec![])]);
        let mid = compiled(vec![("f", "T", vec![]), ("tmp", "T", vec![])]);
        let d1 = diff_programs(&a, &mid);
        let d2 = diff_programs(&mid, &a);
        assert!(compose_diffs(&[&d1, &d2]).is_empty());
        // Removed then re-added folds to Changed (state was lost).
        assert_eq!(
            compose_diffs(&[&d2, &d1]).get("tmp"),
            Some(&NetChange::Changed)
        );
    }

    #[test]
    fn type_rename_alone_marks_instance_changed() {
        let a = compiled(vec![("f", "T", vec![j("c", Expr::Skip)])]);
        let b = compiled(vec![("f", "U", vec![j("c", Expr::Skip)])]);
        let d = diff_programs(&a, &b);
        assert_eq!(
            d.changed[0].type_change,
            Some(("T".to_string(), "U".to_string()))
        );
        assert!(d.changed[0].junctions.is_empty());
    }
}
