//! Propositional formulas `F` and junction-relative formulas `G` (Table 1).
//!
//! Formulas guard junction scheduling, `wait` statements, `case` arms and
//! `verify` assertions. The grammar is
//! `F ::= P | false | ¬F | F ∧ F | F ∨ F | F → F` with the junction-relative
//! extension `G ::= F | γ@F` and two atoms that appear in the paper's
//! examples beyond the core grammar: the liveness predicate `S(ι)`
//! (watched fail-over, Fig. 16) and subset membership (used by the
//! expansion of `for` over run-time subsets, §7.1).

use std::fmt;

use crate::names::{Ident, JRef, NameRef, PropRef, SetRef};

/// Three-valued truth: `verify` relies on ternary logic (§6) — evaluating
/// `f@P` when `f` is not running yields `Unknown`, which `verify` reports
/// as an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ternary {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Not evaluable (e.g. remote junction not running).
    Unknown,
}

impl Ternary {
    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // DSL combinator, chains with `.and`/`.or`
    pub fn not(self) -> Ternary {
        match self {
            Ternary::True => Ternary::False,
            Ternary::False => Ternary::True,
            Ternary::Unknown => Ternary::Unknown,
        }
    }
    /// Kleene conjunction.
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::False, _) | (_, Ternary::False) => Ternary::False,
            (Ternary::True, Ternary::True) => Ternary::True,
            _ => Ternary::Unknown,
        }
    }
    /// Kleene disjunction.
    pub fn or(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::True, _) | (_, Ternary::True) => Ternary::True,
            (Ternary::False, Ternary::False) => Ternary::False,
            _ => Ternary::Unknown,
        }
    }
    /// Convert from two-valued truth.
    pub fn from_bool(b: bool) -> Ternary {
        if b {
            Ternary::True
        } else {
            Ternary::False
        }
    }
    /// True iff definitely true.
    pub fn is_true(self) -> bool {
        self == Ternary::True
    }
}

/// A propositional formula.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// The constant `false`.
    False,
    /// The constant `true` (written `¬false` in the paper).
    True,
    /// A (possibly indexed) proposition.
    Prop(PropRef),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Material implication.
    Implies(Box<Formula>, Box<Formula>),
    /// `γ@F`: `F` interpreted at junction `γ` (G-formulas; `verify`/guards).
    At(JRef, Box<Formula>),
    /// `S(ι)`: instance ι is running (liveness, Fig. 16).
    Live(NameRef),
    /// `elem ∈ subset`: membership in a run-time subset. Produced by the
    /// expansion of `for x̃ ∈ subset …` over the subset's compile-time
    /// superset; each unrolled copy is guarded by membership.
    InSubset {
        /// The candidate element (a literal after expansion).
        elem: NameRef,
        /// The subset variable, resolved against the junction table.
        subset: NameRef,
    },
    /// Template-based recursion over formulas:
    /// `for x̃ ∈ S op F[x̃]` with `op ∈ {∧, ∨}` (§6). Unrolled at compile
    /// time; an empty set yields `false` for ∨ and `¬false` for ∧.
    For {
        /// Bound symbol.
        var: Ident,
        /// Iterated set.
        set: SetRef,
        /// `true` = conjunction, `false` = disjunction.
        conj: bool,
        /// Body with `var` free.
        body: Box<Formula>,
    },
}

impl Formula {
    /// `¬f`
    #[allow(clippy::should_implement_trait)] // DSL combinator, mirrors `Ternary::not`
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }
    /// `self ∧ other`
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }
    /// `self ∨ other`
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }
    /// `self → other`
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }
    /// Plain proposition atom.
    pub fn prop(name: impl Into<String>) -> Formula {
        Formula::Prop(PropRef::plain(name))
    }
    /// Indexed proposition atom with a variable index.
    pub fn prop_at(name: impl Into<String>, index: NameRef) -> Formula {
        Formula::Prop(PropRef::indexed(name, index))
    }
    /// `γ@F`
    pub fn at(j: JRef, f: Formula) -> Formula {
        Formula::At(j, Box::new(f))
    }
    /// `S(ι)` with a literal instance name.
    pub fn live(inst: impl Into<String>) -> Formula {
        Formula::Live(NameRef::lit(inst))
    }

    /// Evaluate under an assignment. `local` maps a fully-resolved local
    /// proposition key to its value; `remote` resolves `γ@P` and `Live`.
    /// Unresolved variables yield `Unknown`.
    pub fn eval<L, R, S>(&self, local: &L, remote: &R, in_subset: &S) -> Ternary
    where
        L: Fn(&str) -> Option<bool>,
        R: Fn(&JRef, &str) -> Ternary,
        S: Fn(&str, &str) -> Ternary,
    {
        match self {
            Formula::False => Ternary::False,
            Formula::True => Ternary::True,
            Formula::Prop(p) => match p.as_key() {
                Some(k) => local(&k).map_or(Ternary::Unknown, Ternary::from_bool),
                None => Ternary::Unknown,
            },
            Formula::Not(f) => f.eval(local, remote, in_subset).not(),
            Formula::And(a, b) => a.eval(local, remote, in_subset).and(b.eval(local, remote, in_subset)),
            Formula::Or(a, b) => a.eval(local, remote, in_subset).or(b.eval(local, remote, in_subset)),
            Formula::Implies(a, b) => a
                .eval(local, remote, in_subset)
                .not()
                .or(b.eval(local, remote, in_subset)),
            Formula::At(j, f) => match &**f {
                Formula::Prop(p) => match p.as_key() {
                    Some(k) => remote(j, &k),
                    None => Ternary::Unknown,
                },
                // Non-atomic remote formulas: evaluate recursively through
                // the same remote resolver by pushing @ inwards.
                other => other.clone().push_at(j).eval(local, remote, in_subset),
            },
            Formula::Live(n) => remote(&JRef::Bare(n.clone()), "\u{0}live\u{0}"),
            Formula::InSubset { elem, subset } => in_subset(elem.raw(), subset.raw()),
            Formula::For { .. } => Ternary::Unknown, // must be expanded first
        }
    }

    /// Push a `γ@` prefix through connectives onto atoms.
    fn push_at(self, j: &JRef) -> Formula {
        match self {
            Formula::Not(f) => Formula::Not(Box::new(f.push_at(j))),
            Formula::And(a, b) => Formula::And(Box::new(a.push_at(j)), Box::new(b.push_at(j))),
            Formula::Or(a, b) => Formula::Or(Box::new(a.push_at(j)), Box::new(b.push_at(j))),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.push_at(j)), Box::new(b.push_at(j)))
            }
            f @ Formula::Prop(_) => Formula::At(j.clone(), Box::new(f)),
            other => other,
        }
    }

    /// All proposition references occurring in the formula (locally — not
    /// under `@`). Used by `wait` to open its update window and by the
    /// semantics' DNF decomposition.
    pub fn local_props(&self) -> Vec<PropRef> {
        let mut out = Vec::new();
        self.collect_props(true, &mut out);
        out
    }

    /// All proposition references, including those under `@`.
    pub fn all_props(&self) -> Vec<PropRef> {
        let mut out = Vec::new();
        self.collect_props(false, &mut out);
        out
    }

    fn collect_props(&self, local_only: bool, out: &mut Vec<PropRef>) {
        match self {
            Formula::Prop(p) => {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
            Formula::Not(f) => f.collect_props(local_only, out),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.collect_props(local_only, out);
                b.collect_props(local_only, out);
            }
            Formula::At(_, f) => {
                if !local_only {
                    f.collect_props(local_only, out);
                }
            }
            Formula::For { body, .. } => body.collect_props(local_only, out),
            Formula::False | Formula::True | Formula::Live(_) | Formula::InSubset { .. } => {}
        }
    }

    /// A literal in a DNF clause: a proposition required true or false.
    /// Produced by [`Formula::dnf`].
    pub fn dnf(&self) -> Dnf {
        dnf_of(self, true)
    }
}

/// A signed atom in a DNF clause.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DnfLit {
    /// Proposition key required to have the given value.
    Prop(String, bool),
    /// Liveness of an instance required to have the given value.
    Live(String, bool),
    /// Subset membership required to have the given value.
    InSubset(String, String, bool),
    /// Remote proposition `γ@P` required to have the given value.
    RemoteProp(String, String, bool),
    /// An opaque atom that could not be keyed (unresolved variable).
    Opaque(String, bool),
}

/// Disjunctive normal form: a set of clauses, each a set of literals
/// (§8.3 of the paper uses exactly this decomposition to give semantics to
/// `wait` and guards).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dnf {
    /// The clauses; the formula is the disjunction of their conjunctions.
    /// An empty clause list denotes `false`; a list containing an empty
    /// clause denotes `true`.
    pub clauses: Vec<Vec<DnfLit>>,
}

impl Dnf {
    /// `false`
    pub fn f() -> Dnf {
        Dnf { clauses: vec![] }
    }
    /// `true`
    pub fn t() -> Dnf {
        Dnf { clauses: vec![vec![]] }
    }
    fn or(mut self, other: Dnf) -> Dnf {
        self.clauses.extend(other.clauses);
        self.normalize()
    }
    fn and(self, other: Dnf) -> Dnf {
        let mut clauses = Vec::with_capacity(self.clauses.len() * other.clauses.len());
        for a in &self.clauses {
            for b in &other.clauses {
                let mut c = a.clone();
                for lit in b {
                    if !c.contains(lit) {
                        c.push(lit.clone());
                    }
                }
                clauses.push(c);
            }
        }
        Dnf { clauses }.normalize()
    }
    fn normalize(mut self) -> Dnf {
        for c in &mut self.clauses {
            c.sort();
            c.dedup();
        }
        // Drop clauses containing a literal and its negation.
        self.clauses.retain(|c| {
            !c.iter().any(|l| c.contains(&negate_lit(l)))
        });
        self.clauses.sort();
        self.clauses.dedup();
        self
    }
}

fn negate_lit(l: &DnfLit) -> DnfLit {
    match l {
        DnfLit::Prop(k, v) => DnfLit::Prop(k.clone(), !v),
        DnfLit::Live(k, v) => DnfLit::Live(k.clone(), !v),
        DnfLit::InSubset(e, s, v) => DnfLit::InSubset(e.clone(), s.clone(), !v),
        DnfLit::RemoteProp(j, k, v) => DnfLit::RemoteProp(j.clone(), k.clone(), !v),
        DnfLit::Opaque(k, v) => DnfLit::Opaque(k.clone(), !v),
    }
}

fn atom_lit(f: &Formula, sign: bool) -> DnfLit {
    match f {
        Formula::Prop(p) => match p.as_key() {
            Some(k) => DnfLit::Prop(k, sign),
            None => DnfLit::Opaque(p.to_string(), sign),
        },
        Formula::Live(n) => DnfLit::Live(n.raw().to_string(), sign),
        Formula::InSubset { elem, subset } => {
            DnfLit::InSubset(elem.raw().to_string(), subset.raw().to_string(), sign)
        }
        Formula::At(j, inner) => match &**inner {
            Formula::Prop(p) => match p.as_key() {
                Some(k) => DnfLit::RemoteProp(j.to_string(), k, sign),
                None => DnfLit::Opaque(format!("{j}@{p}"), sign),
            },
            other => DnfLit::Opaque(format!("{j}@{other:?}"), sign),
        },
        other => DnfLit::Opaque(format!("{other:?}"), sign),
    }
}

fn dnf_of(f: &Formula, sign: bool) -> Dnf {
    match (f, sign) {
        (Formula::False, true) | (Formula::True, false) => Dnf::f(),
        (Formula::True, true) | (Formula::False, false) => Dnf::t(),
        (Formula::Not(inner), s) => dnf_of(inner, !s),
        (Formula::And(a, b), true) => dnf_of(a, true).and(dnf_of(b, true)),
        (Formula::And(a, b), false) => dnf_of(a, false).or(dnf_of(b, false)),
        (Formula::Or(a, b), true) => dnf_of(a, true).or(dnf_of(b, true)),
        (Formula::Or(a, b), false) => dnf_of(a, false).and(dnf_of(b, false)),
        (Formula::Implies(a, b), true) => dnf_of(a, false).or(dnf_of(b, true)),
        (Formula::Implies(a, b), false) => dnf_of(a, true).and(dnf_of(b, false)),
        (atom, s) => Dnf {
            clauses: vec![vec![atom_lit(atom, s)]],
        },
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::False => write!(f, "false"),
            Formula::True => write!(f, "true"),
            Formula::Prop(p) => write!(f, "{p}"),
            Formula::Not(inner) => write!(f, "!{}", paren(inner)),
            Formula::And(a, b) => write!(f, "{} && {}", paren(a), paren(b)),
            Formula::Or(a, b) => write!(f, "{} || {}", paren(a), paren(b)),
            Formula::Implies(a, b) => write!(f, "{} -> {}", paren(a), paren(b)),
            Formula::At(j, inner) => write!(f, "{j}@{}", paren(inner)),
            Formula::Live(n) => write!(f, "S({n})"),
            Formula::InSubset { elem, subset } => write!(f, "{elem} in {subset}"),
            Formula::For { var, set, conj, body } => {
                let op = if *conj { "&&" } else { "||" };
                write!(f, "for {var} in {set} {op} {body}")
            }
        }
    }
}

fn paren(f: &Formula) -> String {
    match f {
        Formula::False | Formula::True | Formula::Prop(_) | Formula::Live(_) => f.to_string(),
        _ => format!("({f})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_remote(_: &JRef, _: &str) -> Ternary {
        Ternary::Unknown
    }
    fn no_subset(_: &str, _: &str) -> Ternary {
        Ternary::Unknown
    }

    #[test]
    fn ternary_tables() {
        use Ternary::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn eval_basic() {
        let f = Formula::prop("Work").and(Formula::prop("Retried").not());
        let env = |k: &str| match k {
            "Work" => Some(true),
            "Retried" => Some(false),
            _ => None,
        };
        assert_eq!(f.eval(&env, &no_remote, &no_subset), Ternary::True);
        let env2 = |k: &str| match k {
            "Work" => Some(true),
            _ => None,
        };
        assert_eq!(f.eval(&env2, &no_remote, &no_subset), Ternary::Unknown);
    }

    #[test]
    fn eval_implies() {
        let f = Formula::prop("A").implies(Formula::prop("B"));
        let env = |k: &str| Some(k == "B");
        assert_eq!(f.eval(&env, &no_remote, &no_subset), Ternary::True);
        let env2 = |k: &str| Some(k == "A");
        assert_eq!(f.eval(&env2, &no_remote, &no_subset), Ternary::False);
    }

    #[test]
    fn at_pushes_through_connectives() {
        // b@ (Active && !Running) resolves both atoms remotely.
        let f = Formula::at(
            JRef::instance("b"),
            Formula::prop("Active").and(Formula::prop("Running").not()),
        );
        let remote = |_: &JRef, k: &str| match k {
            "Active" => Ternary::True,
            "Running" => Ternary::False,
            _ => Ternary::Unknown,
        };
        assert_eq!(f.eval(&|_| None, &remote, &no_subset), Ternary::True);
    }

    #[test]
    fn local_props_excludes_remote() {
        let f = Formula::prop("Work")
            .and(Formula::at(JRef::instance("g"), Formula::prop("Remote")));
        let props = f.local_props();
        assert_eq!(props.len(), 1);
        assert_eq!(props[0], PropRef::plain("Work"));
        assert_eq!(f.all_props().len(), 2);
    }

    #[test]
    fn dnf_simple() {
        // A && (B || !C)  =>  {A,B} | {A,!C}
        let f = Formula::prop("A").and(Formula::prop("B").or(Formula::prop("C").not()));
        let d = f.dnf();
        assert_eq!(d.clauses.len(), 2);
        assert!(d.clauses.contains(&vec![
            DnfLit::Prop("A".into(), true),
            DnfLit::Prop("B".into(), true)
        ]));
        assert!(d.clauses.contains(&vec![
            DnfLit::Prop("A".into(), true),
            DnfLit::Prop("C".into(), false)
        ]));
    }

    #[test]
    fn dnf_eliminates_contradictions() {
        // A && !A => false
        let f = Formula::prop("A").and(Formula::prop("A").not());
        assert_eq!(f.dnf(), Dnf::f());
    }

    #[test]
    fn dnf_implication() {
        // A -> B  ==  !A || B
        let f = Formula::prop("A").implies(Formula::prop("B"));
        let d = f.dnf();
        assert_eq!(d.clauses.len(), 2);
        assert!(d.clauses.contains(&vec![DnfLit::Prop("A".into(), false)]));
        assert!(d.clauses.contains(&vec![DnfLit::Prop("B".into(), true)]));
    }

    #[test]
    fn dnf_negation_de_morgan() {
        // !(A || B) == !A && !B — a single clause with both negative literals
        let f = Formula::prop("A").or(Formula::prop("B")).not();
        let d = f.dnf();
        assert_eq!(d.clauses.len(), 1);
        assert_eq!(
            d.clauses[0],
            vec![
                DnfLit::Prop("A".into(), false),
                DnfLit::Prop("B".into(), false)
            ]
        );
    }

    #[test]
    fn display_round_trips_shape() {
        let f = Formula::prop("Work").not().and(Formula::prop("Req"));
        assert_eq!(f.to_string(), "(!Work) && Req");
    }
}
