//! Whole-program structure: junction definitions, instance types,
//! instances, function templates, `main`, and the load-time configuration.

use std::collections::BTreeMap;

use crate::decl::{Decl, Param};
use crate::expr::Expr;
use crate::names::{Ident, SetElem};

/// A junction definition: `def τ::name(params) ◀ decls… body`.
#[derive(Clone, Debug, PartialEq)]
pub struct JunctionDef {
    /// Junction name (the paper's single-junction types use `junction` or
    /// the empty name, written here as `"junction"`).
    pub name: Ident,
    /// Definition parameters, bound at `start`.
    pub params: Vec<Param>,
    /// Declarations (`| …`).
    pub decls: Vec<Decl>,
    /// The junction body.
    pub body: Expr,
}

impl JunctionDef {
    /// Construct a junction definition.
    pub fn new(name: impl Into<String>, params: Vec<Param>, decls: Vec<Decl>, body: Expr) -> Self {
        JunctionDef {
            name: name.into(),
            params,
            decls,
            body,
        }
    }

    /// The junction's `guard` formula, if declared.
    pub fn guard(&self) -> Option<&crate::formula::Formula> {
        self.decls.iter().find_map(|d| match d {
            Decl::Guard(f) => Some(f),
            _ => None,
        })
    }
}

/// An instance type: a named set of junction definitions. "Instance types
/// are like classes and instances are like objects, but C-Saw does not
/// support an inheritance hierarchy" (§3).
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceType {
    /// Type name (e.g. `τFront`).
    pub name: Ident,
    /// The type's junctions.
    pub junctions: Vec<JunctionDef>,
}

impl InstanceType {
    /// Construct an instance type.
    pub fn new(name: impl Into<String>, junctions: Vec<JunctionDef>) -> Self {
        InstanceType {
            name: name.into(),
            junctions,
        }
    }

    /// Look up a junction by name.
    pub fn junction(&self, name: &str) -> Option<&JunctionDef> {
        self.junctions.iter().find(|j| j.name == name)
    }
}

/// A function template: `def f(p⃗) ◀ decls… body`. Functions are "templates
/// that are expanded at compile time" (§6); their declarations merge into
/// the enclosing junction on expansion (cf. `Watch` in Fig. 16).
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: Ident,
    /// Parameters (must be compile-time resolvable at call sites inside
    /// other templates).
    pub params: Vec<Param>,
    /// Declarations hoisted into the caller.
    pub decls: Vec<Decl>,
    /// Body inlined at each call site.
    pub body: Expr,
}

impl FuncDef {
    /// Construct a function template.
    pub fn new(name: impl Into<String>, params: Vec<Param>, decls: Vec<Decl>, body: Expr) -> Self {
        FuncDef {
            name: name.into(),
            params,
            decls,
            body,
        }
    }
}

/// The distinguished `main` definition that boots the architecture.
#[derive(Clone, Debug, PartialEq)]
pub struct MainDef {
    /// `main` may take an arbitrary number of parameters, usually
    /// distributed among the instances it starts (§6).
    pub params: Vec<Param>,
    /// The body (typically parallel `start`s).
    pub body: Expr,
}

/// A complete C-Saw architecture description.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// `InstanceTypes = {…}`.
    pub types: Vec<InstanceType>,
    /// `Instances = {name : type, …}`.
    pub instances: Vec<(Ident, Ident)>,
    /// Function templates.
    pub functions: Vec<FuncDef>,
    /// The `main` definition.
    pub main: MainDef,
}

impl Program {
    /// Look up an instance's type.
    pub fn type_of(&self, instance: &str) -> Option<&InstanceType> {
        let ty = self
            .instances
            .iter()
            .find(|(n, _)| n == instance)
            .map(|(_, t)| t)?;
        self.types.iter().find(|t| &t.name == ty)
    }

    /// Look up a type by name.
    pub fn get_type(&self, name: &str) -> Option<&InstanceType> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Look up a function template by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// All instance names.
    pub fn instance_names(&self) -> Vec<&str> {
        self.instances.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// Load-time configuration: values for `set` declarations without a
/// literal assignment ("`set` must be specified at load time", §6), keyed
/// by `instance::junction::setname` with fallbacks to `setname`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadConfig {
    /// Set assignments.
    pub sets: BTreeMap<Ident, Vec<SetElem>>,
    /// Maximum `retry` invocations within a single scheduling of a
    /// junction (§6: "can only be invoked a fixed number of times").
    pub retry_limit: u32,
}

impl LoadConfig {
    /// Empty configuration with the default retry limit.
    pub fn new() -> LoadConfig {
        LoadConfig {
            sets: BTreeMap::new(),
            retry_limit: 3,
        }
    }

    /// Assign a set value.
    pub fn with_set(mut self, name: impl Into<String>, elems: Vec<SetElem>) -> LoadConfig {
        self.sets.insert(name.into(), elems);
        self
    }

    /// Resolve a set by name, trying the junction-scoped key first.
    pub fn set(&self, scope: &str, name: &str) -> Option<&Vec<SetElem>> {
        self.sets
            .get(&format!("{scope}::{name}"))
            .or_else(|| self.sets.get(name))
    }
}

/// A single instance's expanded junctions. Expansion is per-instance
/// because two instances of the same type may receive different
/// compile-time sets (e.g. the front-end's `backends` parameter).
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledInstance {
    /// Instance name.
    pub name: Ident,
    /// Its type's name.
    pub type_name: Ident,
    /// Fully-expanded junction definitions.
    pub junctions: Vec<JunctionDef>,
}

impl CompiledInstance {
    /// Look up an expanded junction by name.
    pub fn junction(&self, name: &str) -> Option<&JunctionDef> {
        self.junctions.iter().find(|j| j.name == name)
    }
}

/// A validated, fully-expanded program: no `Call`, no `For` (in
/// expressions, formulas, declarations or case guards), all `set`
/// declarations resolved to literal element lists.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledProgram {
    /// The original program with `main` expanded (kept for topology
    /// derivation and pretty-printing).
    pub program: Program,
    /// Per-instance expanded junctions.
    pub instances: Vec<CompiledInstance>,
    /// The retry limit carried from the load configuration.
    pub retry_limit: u32,
}

impl CompiledProgram {
    /// Look up a compiled instance by name.
    pub fn instance(&self, name: &str) -> Option<&CompiledInstance> {
        self.instances.iter().find(|i| i.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn tiny() -> Program {
        Program {
            types: vec![InstanceType::new(
                "T",
                vec![JunctionDef::new("junction", vec![], vec![], Expr::Skip)],
            )],
            instances: vec![("a".into(), "T".into()), ("b".into(), "T".into())],
            functions: vec![FuncDef::new("complain", vec![], vec![], Expr::Skip)],
            main: MainDef {
                params: vec![],
                body: Expr::Skip,
            },
        }
    }

    #[test]
    fn lookups() {
        let p = tiny();
        assert_eq!(p.type_of("a").unwrap().name, "T");
        assert!(p.type_of("zz").is_none());
        assert!(p.get_type("T").unwrap().junction("junction").is_some());
        assert!(p.function("complain").is_some());
        assert_eq!(p.instance_names(), vec!["a", "b"]);
    }

    #[test]
    fn load_config_scoping() {
        let cfg = LoadConfig::new()
            .with_set("Backs", vec![SetElem::Instance("b1".into())])
            .with_set("f::b::Backs", vec![SetElem::Instance("b2".into())]);
        assert_eq!(cfg.set("f::b", "Backs").unwrap()[0].key(), "b2");
        assert_eq!(cfg.set("g::c", "Backs").unwrap()[0].key(), "b1");
        assert!(cfg.set("g::c", "Other").is_none());
    }
}
