//! Ergonomic constructors for building C-Saw programs from Rust.
//!
//! These free functions mirror the paper's concrete syntax closely enough
//! that the examples of §5/§7 transliterate line-by-line; see `csaw-arch`
//! for the full catalogue.

use crate::decl::{Param, ParamKind};
use crate::expr::{Arg, CaseArm, CaseGuard, Expr, ForOp, Terminator};
use crate::formula::Formula;
use crate::names::{Ident, JRef, NameRef, PropRef, SetRef};
use crate::program::{FuncDef, InstanceType, JunctionDef, MainDef, Program};

/// `⌊name⌉` — host code with no writable junction state.
pub fn host(name: impl Into<String>) -> Expr {
    Expr::Host {
        name: name.into(),
        writes: vec![],
    }
}

/// `⌊name⌉{writes…}` — host code that may write the listed symbols.
pub fn host_w<I, S>(name: impl Into<String>, writes: I) -> Expr
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    Expr::Host {
        name: name.into(),
        writes: writes.into_iter().map(Into::into).collect(),
    }
}

/// `⟨E⟩` — fate scope.
pub fn scope(e: Expr) -> Expr {
    Expr::Scope(Box::new(e))
}

/// `⟨|E|⟩` — transaction block with rollback on failure.
pub fn transaction(e: Expr) -> Expr {
    Expr::Transaction(Box::new(e))
}

/// `write(data, to)`.
pub fn write(data: impl Into<String>, to: JRef) -> Expr {
    Expr::Write {
        data: NameRef::lit(data),
        to,
    }
}

/// `write` with a variable datum name (function-template parameter).
pub fn write_var(data: impl Into<String>, to: JRef) -> Expr {
    Expr::Write {
        data: NameRef::var(data),
        to,
    }
}

/// `wait [data…] formula`.
pub fn wait<I, S>(data: I, formula: Formula) -> Expr
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    Expr::Wait {
        data: data.into_iter().map(|d| NameRef::lit(d)).collect(),
        formula,
    }
}

/// `save(…, data)`.
pub fn save(data: impl Into<String>) -> Expr {
    Expr::Save {
        data: NameRef::lit(data),
    }
}

/// `restore(data, …)`.
pub fn restore(data: impl Into<String>) -> Expr {
    Expr::Restore {
        data: NameRef::lit(data),
    }
}

/// `E1; E2; …`.
pub fn seq<I: IntoIterator<Item = Expr>>(es: I) -> Expr {
    Expr::Seq(es.into_iter().collect())
}

/// `E1 + E2 + …`.
pub fn par<I: IntoIterator<Item = Expr>>(es: I) -> Expr {
    Expr::Par(es.into_iter().collect())
}

/// `∥n E`.
pub fn rep(n: u32, body: Expr) -> Expr {
    Expr::Rep {
        n,
        body: Box::new(body),
    }
}

/// `body otherwise[t] handler` with `t` a timeout parameter name.
pub fn otherwise(body: Expr, t: impl Into<String>, handler: Expr) -> Expr {
    body.otherwise(Some(NameRef::var(t)), handler)
}

/// `body otherwise handler` (no deadline; handler runs on failure only).
pub fn otherwise_nodeadline(body: Expr, handler: Expr) -> Expr {
    body.otherwise(None, handler)
}

/// `start ι(args…)` for a single-junction instance.
pub fn start(instance: impl Into<String>, args: Vec<Arg>) -> Expr {
    Expr::Start {
        instance: NameRef::lit(instance),
        junction_args: vec![(None, args)],
    }
}

/// `start ι γ1(…) γ2(…) …` with per-junction argument lists.
pub fn start_junctions(
    instance: impl Into<String>,
    junction_args: Vec<(&str, Vec<Arg>)>,
) -> Expr {
    Expr::Start {
        instance: NameRef::lit(instance),
        junction_args: junction_args
            .into_iter()
            .map(|(j, a)| (Some(j.to_string()), a))
            .collect(),
    }
}

/// `stop ι`.
pub fn stop(instance: impl Into<String>) -> Expr {
    Expr::Stop(NameRef::lit(instance))
}

/// `assert [] P` — local assertion.
pub fn assert_local(prop: impl Into<String>) -> Expr {
    Expr::Assert {
        at: None,
        prop: PropRef::plain(prop),
    }
}

/// `assert [γ] P`.
pub fn assert_at(at: JRef, prop: impl Into<String>) -> Expr {
    Expr::Assert {
        at: Some(at),
        prop: PropRef::plain(prop),
    }
}

/// `assert [γ] P[ix]` with an indexed proposition.
pub fn assert_at_ix(at: JRef, prop: impl Into<String>, ix: NameRef) -> Expr {
    Expr::Assert {
        at: Some(at),
        prop: PropRef::indexed(prop, ix),
    }
}

/// `assert [] P[ix]`.
pub fn assert_local_ix(prop: impl Into<String>, ix: NameRef) -> Expr {
    Expr::Assert {
        at: None,
        prop: PropRef::indexed(prop, ix),
    }
}

/// `retract [] P`.
pub fn retract_local(prop: impl Into<String>) -> Expr {
    Expr::Retract {
        at: None,
        prop: PropRef::plain(prop),
    }
}

/// `retract [γ] P`.
pub fn retract_at(at: JRef, prop: impl Into<String>) -> Expr {
    Expr::Retract {
        at: Some(at),
        prop: PropRef::plain(prop),
    }
}

/// `retract [γ] P[ix]`.
pub fn retract_at_ix(at: JRef, prop: impl Into<String>, ix: NameRef) -> Expr {
    Expr::Retract {
        at: Some(at),
        prop: PropRef::indexed(prop, ix),
    }
}

/// `retract [] P[ix]`.
pub fn retract_local_ix(prop: impl Into<String>, ix: NameRef) -> Expr {
    Expr::Retract {
        at: None,
        prop: PropRef::indexed(prop, ix),
    }
}

/// `f(args…)` — call a function template.
pub fn call(func: impl Into<String>, args: Vec<Arg>) -> Expr {
    Expr::Call {
        func: func.into(),
        args,
    }
}

/// `verify G`.
pub fn verify(f: Formula) -> Expr {
    Expr::Verify(f)
}

/// `skip`.
pub fn skip() -> Expr {
    Expr::Skip
}

/// `retry`.
pub fn retry() -> Expr {
    Expr::Retry
}

/// `keep` for the given keys.
pub fn keep<I, S>(keys: I) -> Expr
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    Expr::Keep {
        keys: keys.into_iter().map(|k| NameRef::lit(k)).collect(),
    }
}

/// A `case` arm.
pub fn arm(guard: Formula, body: Expr, terminator: Terminator) -> CaseArm {
    CaseArm {
        guard: CaseGuard::Plain(guard),
        body,
        terminator,
    }
}

/// A `for`-quantified case arm (Fig. 10).
pub fn arm_for(
    var: impl Into<String>,
    set: SetRef,
    guard: Formula,
    body: Expr,
    terminator: Terminator,
) -> CaseArm {
    CaseArm {
        guard: CaseGuard::For {
            var: var.into(),
            set,
            formula: guard,
        },
        body,
        terminator,
    }
}

/// `case { arms… otherwise ⇒ other }`.
pub fn case(arms: Vec<CaseArm>, other: Expr) -> Expr {
    Expr::Case {
        arms,
        otherwise: Box::new(other),
    }
}

/// `if cond then e`.
pub fn if_then(cond: Formula, then: Expr) -> Expr {
    Expr::If {
        cond,
        then: Box::new(then),
        els: None,
    }
}

/// `if cond then e1 else e2`.
pub fn if_then_else(cond: Formula, then: Expr, els: Expr) -> Expr {
    Expr::If {
        cond,
        then: Box::new(then),
        els: Some(Box::new(els)),
    }
}

/// `for var ∈ set op body`.
pub fn for_each(var: impl Into<String>, set: SetRef, op: ForOp, body: Expr) -> Expr {
    Expr::For {
        var: var.into(),
        set,
        op,
        body: Box::new(body),
    }
}

/// Timeout parameter declaration.
pub fn p_timeout(name: impl Into<String>) -> Param {
    Param::new(name, ParamKind::Timeout)
}
/// Junction-target parameter declaration.
pub fn p_junction(name: impl Into<String>) -> Param {
    Param::new(name, ParamKind::Junction)
}
/// Set parameter declaration.
pub fn p_set(name: impl Into<String>) -> Param {
    Param::new(name, ParamKind::Set)
}
/// Proposition-name parameter declaration.
pub fn p_prop(name: impl Into<String>) -> Param {
    Param::new(name, ParamKind::Prop)
}

/// Fluent builder for whole programs.
#[derive(Default)]
pub struct ProgramBuilder {
    types: Vec<InstanceType>,
    instances: Vec<(Ident, Ident)>,
    functions: Vec<FuncDef>,
    main: Option<MainDef>,
}

impl ProgramBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an instance type.
    pub fn ty(mut self, t: InstanceType) -> Self {
        self.types.push(t);
        self
    }

    /// Declare an instance of a type.
    pub fn instance(mut self, name: impl Into<String>, ty: impl Into<String>) -> Self {
        self.instances.push((name.into(), ty.into()));
        self
    }

    /// Declare several instances of the same type (`Bck1 … BckN`).
    pub fn instances_of(mut self, ty: &str, names: &[&str]) -> Self {
        for n in names {
            self.instances.push((n.to_string(), ty.to_string()));
        }
        self
    }

    /// Add a function template.
    pub fn func(mut self, f: FuncDef) -> Self {
        self.functions.push(f);
        self
    }

    /// Set `main`.
    pub fn main(mut self, params: Vec<Param>, body: Expr) -> Self {
        self.main = Some(MainDef { params, body });
        self
    }

    /// Finish. Panics if `main` was never provided (programmer error, not
    /// input error — every paper program has a `main`).
    pub fn build(self) -> Program {
        Program {
            types: self.types,
            instances: self.instances,
            functions: self.functions,
            main: self.main.expect("ProgramBuilder: main is required"),
        }
    }
}

/// Shorthand for the ubiquitous `def complain() ◀ ⌊…⌉` template.
pub fn complain_func() -> FuncDef {
    FuncDef::new("complain", vec![], vec![], host("complain"))
}

/// Build the `H1;H2` example from Fig. 3 of the paper: instances `f : τf`
/// and `g : τg` coordinating via the `Work` proposition. Useful as a
/// canonical test program; its event-structure semantics are checked in
/// `csaw-semantics` against Fig. 18.
pub fn fig3_program() -> Program {
    use crate::decl::Decl;

    let tau_f = InstanceType::new(
        "tau_f",
        vec![JunctionDef::new(
            "junction",
            vec![p_junction("g")],
            vec![Decl::prop_false("Work"), Decl::data("n")],
            seq([
                host("H1"),
                save("n"),
                Expr::Write {
                    data: NameRef::lit("n"),
                    to: JRef::var("g"),
                },
                Expr::Assert {
                    at: Some(JRef::var("g")),
                    prop: PropRef::plain("Work"),
                },
                wait(Vec::<String>::new(), Formula::prop("Work").not()),
            ]),
        )],
    );
    let tau_g = InstanceType::new(
        "tau_g",
        vec![JunctionDef::new(
            "junction",
            vec![p_junction("f")],
            vec![
                Decl::prop_false("Work"),
                Decl::data("n"),
                Decl::guard(Formula::prop("Work")),
            ],
            seq([
                restore("n"),
                host("H2"),
                Expr::Retract {
                    at: Some(JRef::var("f")),
                    prop: PropRef::plain("Work"),
                },
            ]),
        )],
    );
    ProgramBuilder::new()
        .ty(tau_f)
        .ty(tau_g)
        .instance("f", "tau_f")
        .instance("g", "tau_g")
        .main(
            vec![],
            par([
                start("f", vec![Arg::Junction(JRef::instance("g"))]),
                start("g", vec![Arg::Junction(JRef::instance("f"))]),
            ]),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape() {
        let p = fig3_program();
        assert_eq!(p.types.len(), 2);
        assert_eq!(p.instances.len(), 2);
        let tf = p.get_type("tau_f").unwrap();
        let j = tf.junction("junction").unwrap();
        assert_eq!(j.params.len(), 1);
        assert!(j.guard().is_none());
        let tg = p.get_type("tau_g").unwrap();
        assert!(tg.junction("junction").unwrap().guard().is_some());
    }

    #[test]
    fn builders_produce_expected_nodes() {
        assert!(matches!(host("H1"), Expr::Host { writes, .. } if writes.is_empty()));
        assert!(matches!(
            host_w("Choose", ["tgt"]),
            Expr::Host { writes, .. } if writes == vec!["tgt".to_string()]
        ));
        assert!(matches!(transaction(skip()), Expr::Transaction(_)));
        assert!(matches!(
            otherwise(skip(), "t", retry()),
            Expr::Otherwise { timeout: Some(_), .. }
        ));
        assert!(matches!(
            otherwise_nodeadline(skip(), retry()),
            Expr::Otherwise { timeout: None, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "main is required")]
    fn builder_requires_main() {
        ProgramBuilder::new().build();
    }
}
