//! Micro-benchmarks for the C-Saw building blocks: KV-table operations,
//! formula evaluation/DNF, serialization, the command protocol, the
//! detection engine, and a full DSL round-trip through the sharding
//! architecture.
//!
//! Plain timing harness (the offline build has no criterion): each
//! benchmark is warmed up, then timed over a fixed iteration budget and
//! reported as ns/iter.

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_core::formula::Formula;
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_kv::{Table, Update};
use csaw_serial::{decode, encode, CodecConfig, HeapValue, Prim, Registry, TypeDesc};

/// Run `f` until ~100ms of wall clock is spent (after a short warm-up)
/// and print the mean time per iteration.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..16 {
        f();
    }
    let budget = Duration::from_millis(100);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        for _ in 0..16 {
            f();
        }
        iters += 16;
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<40} {per:>12.1} ns/iter  ({iters} iters)");
}

fn bench_kv_table() {
    let mut t = Table::new();
    t.declare_prop("Work", false);
    t.declare_data("n");
    bench("kv_table/deliver_flush", || {
        t.deliver(Update::assert("Work", "x"));
        t.deliver(Update::data("n", Value::Int(1), "x"));
        t.begin_activation();
        t.end_activation();
    });

    let mut t = Table::new();
    t.declare_prop("Work", false);
    bench("kv_table/local_write", || {
        t.set_prop_local("Work", true).unwrap();
    });

    let mut t = Table::new();
    t.declare_prop("Work", false);
    t.begin_activation();
    bench("kv_table/window_delivery", || {
        let w = t.open_window(vec!["Work".to_string()]);
        t.deliver(Update::assert("Work", "x"));
        t.close_window(w);
    });
}

fn bench_formula() {
    let f = Formula::prop("A")
        .and(Formula::prop("B").or(Formula::prop("C").not()))
        .implies(Formula::prop("D"));
    let local = |k: &str| Some(k == "A" || k == "D");
    let remote = |_: &csaw_core::names::JRef, _: &str| csaw_core::formula::Ternary::Unknown;
    let sub = |_: &str, _: &str| csaw_core::formula::Ternary::Unknown;
    bench("formula/eval", || {
        std::hint::black_box(f.eval(&local, &remote, &sub));
    });
    bench("formula/dnf", || {
        std::hint::black_box(f.dnf());
    });
}

fn bench_serial() {
    let mut reg = Registry::new();
    reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
    let ty = TypeDesc::ptr(TypeDesc::Named("node".into()));
    let cfg = CodecConfig { max_depth: 4096, max_bytes: 64 << 20 };
    for n in [16usize, 256, 2048] {
        let list = HeapValue::list_from((0..n as i64).map(HeapValue::Int));
        let bytes = encode(&list, &ty, &reg, &cfg).unwrap();
        bench(&format!("serial/encode_list_{n}"), || {
            std::hint::black_box(encode(&list, &ty, &reg, &cfg).unwrap());
        });
        bench(&format!("serial/decode_list_{n}"), || {
            std::hint::black_box(decode(&bytes, &ty, &reg, &cfg).unwrap());
        });
    }
}

fn bench_redis() {
    let cmd = mini_redis::Command::Set("user:12345".into(), vec![7; 128]);
    bench("mini_redis/command_roundtrip", || {
        std::hint::black_box(mini_redis::Command::decode(&cmd.encode()).unwrap());
    });

    let mut s = mini_redis::Store::new();
    let mut i = 0u64;
    bench("mini_redis/store_set_get", || {
        let k = format!("k{}", i % 1000);
        i += 1;
        s.set(&k, vec![1; 64]);
        std::hint::black_box(s.get(&k).map(|v| v.len()));
    });

    bench("mini_redis/djb2", || {
        std::hint::black_box(mini_redis::hash::djb2("user:12345:profile"));
    });
}

fn bench_suricata() {
    let cap = mini_suricata::SyntheticCapture::generate(&mini_suricata::CaptureSpec {
        flows: 200,
        packets: 4096,
        ..Default::default()
    });

    let mut engine = mini_suricata::Engine::new();
    let mut i = 0usize;
    bench("mini_suricata/engine_process", || {
        let p = &cap.packets[i % cap.packets.len()];
        i += 1;
        std::hint::black_box(engine.process(p).len());
    });

    let p = &cap.packets[0];
    bench("mini_suricata/packet_roundtrip", || {
        std::hint::black_box(mini_suricata::Packet::decode(&p.encode()).unwrap());
    });
}

fn bench_dsl_roundtrip() {
    // Full request path through the compiled sharding architecture —
    // the per-request overhead the §10.3 figures measure.
    use csaw_runtime::runtime::Policy;
    use csaw_runtime::{Runtime, RuntimeConfig};
    use mini_redis::apps::{ServerApp, ShardFrontApp, ShardMode};

    let spec = csaw_arch::sharding::ShardingSpec::default();
    let cp = csaw_core::compile(csaw_arch::sharding::sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let front = ShardFrontApp::new(ShardMode::ByKey, 4);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    for i in 1..=4 {
        rt.bind_app(&format!("Bck{i}"), Box::new(ServerApp::new()));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    let mut i = 0u64;
    bench("dsl_roundtrip/sharded_set", || {
        i += 1;
        let cmd = mini_redis::Command::Set(format!("k{i}"), vec![1; 64]);
        requests.lock().push_back(cmd);
        rt.invoke("Fnt", "junction").unwrap();
        std::hint::black_box(replies.lock().pop_front());
    });
    rt.shutdown();
}

fn bench_compile() {
    bench("compile/failover_2_backends", || {
        let p = csaw_arch::failover::failover(&csaw_arch::failover::FailoverSpec::default());
        std::hint::black_box(csaw_core::compile(p, &LoadConfig::new()).unwrap());
    });
    bench("compile/sharding_8_backends", || {
        let p = csaw_arch::sharding::sharding(&csaw_arch::sharding::ShardingSpec {
            n_backends: 8,
            ..Default::default()
        });
        std::hint::black_box(csaw_core::compile(p, &LoadConfig::new()).unwrap());
    });
}

fn main() {
    bench_kv_table();
    bench_formula();
    bench_serial();
    bench_redis();
    bench_suricata();
    bench_dsl_roundtrip();
    bench_compile();
}
