//! Criterion micro-benchmarks for the C-Saw building blocks: KV-table
//! operations, formula evaluation/DNF, serialization, the command
//! protocol, the detection engine, and a full DSL round-trip through the
//! sharding architecture.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use csaw_core::formula::Formula;
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_kv::{Table, Update};
use csaw_serial::{decode, encode, CodecConfig, HeapValue, Prim, Registry, TypeDesc};

fn bench_kv_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv_table");
    g.bench_function("deliver_flush", |b| {
        let mut t = Table::new();
        t.declare_prop("Work", false);
        t.declare_data("n");
        b.iter(|| {
            t.deliver(Update::assert("Work", "x"));
            t.deliver(Update::data("n", Value::Int(1), "x"));
            t.begin_activation();
            t.end_activation();
        })
    });
    g.bench_function("local_write", |b| {
        let mut t = Table::new();
        t.declare_prop("Work", false);
        b.iter(|| t.set_prop_local("Work", true).unwrap())
    });
    g.bench_function("window_delivery", |b| {
        let mut t = Table::new();
        t.declare_prop("Work", false);
        t.begin_activation();
        b.iter(|| {
            let w = t.open_window(vec!["Work".to_string()]);
            t.deliver(Update::assert("Work", "x"));
            t.close_window(w);
        })
    });
    g.finish();
}

fn bench_formula(c: &mut Criterion) {
    let mut g = c.benchmark_group("formula");
    let f = Formula::prop("A")
        .and(Formula::prop("B").or(Formula::prop("C").not()))
        .implies(Formula::prop("D"));
    g.bench_function("eval", |b| {
        let local = |k: &str| Some(k == "A" || k == "D");
        let remote = |_: &csaw_core::names::JRef, _: &str| csaw_core::formula::Ternary::Unknown;
        let sub = |_: &str, _: &str| csaw_core::formula::Ternary::Unknown;
        b.iter(|| f.eval(&local, &remote, &sub))
    });
    g.bench_function("dnf", |b| b.iter(|| f.dnf()));
    g.finish();
}

fn bench_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial");
    let mut reg = Registry::new();
    reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
    let ty = TypeDesc::ptr(TypeDesc::Named("node".into()));
    let cfg = CodecConfig { max_depth: 4096, max_bytes: 64 << 20 };
    for n in [16usize, 256, 2048] {
        let list = HeapValue::list_from((0..n as i64).map(HeapValue::Int));
        let bytes = encode(&list, &ty, &reg, &cfg).unwrap();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("encode_list_{n}"), |b| {
            b.iter(|| encode(&list, &ty, &reg, &cfg).unwrap())
        });
        g.bench_function(format!("decode_list_{n}"), |b| {
            b.iter(|| decode(&bytes, &ty, &reg, &cfg).unwrap())
        });
    }
    g.finish();
}

fn bench_redis(c: &mut Criterion) {
    let mut g = c.benchmark_group("mini_redis");
    g.bench_function("command_roundtrip", |b| {
        let cmd = mini_redis::Command::Set("user:12345".into(), vec![7; 128]);
        b.iter(|| mini_redis::Command::decode(&cmd.encode()).unwrap())
    });
    g.bench_function("store_set_get", |b| {
        let mut s = mini_redis::Store::new();
        let mut i = 0u64;
        b.iter(|| {
            let k = format!("k{}", i % 1000);
            i += 1;
            s.set(&k, vec![1; 64]);
            s.get(&k).map(|v| v.len())
        })
    });
    g.bench_function("djb2", |b| b.iter(|| mini_redis::hash::djb2("user:12345:profile")));
    g.finish();
}

fn bench_suricata(c: &mut Criterion) {
    let mut g = c.benchmark_group("mini_suricata");
    let cap = mini_suricata::SyntheticCapture::generate(&mini_suricata::CaptureSpec {
        flows: 200,
        packets: 4096,
        ..Default::default()
    });
    g.throughput(Throughput::Elements(1));
    g.bench_function("engine_process", |b| {
        let mut engine = mini_suricata::Engine::new();
        let mut i = 0usize;
        b.iter(|| {
            let p = &cap.packets[i % cap.packets.len()];
            i += 1;
            engine.process(p).len()
        })
    });
    g.bench_function("packet_roundtrip", |b| {
        let p = &cap.packets[0];
        b.iter(|| mini_suricata::Packet::decode(&p.encode()).unwrap())
    });
    g.finish();
}

fn bench_dsl_roundtrip(c: &mut Criterion) {
    // Full request path through the compiled sharding architecture —
    // the per-request overhead the §10.3 figures measure.
    use csaw_runtime::runtime::Policy;
    use csaw_runtime::{Runtime, RuntimeConfig};
    use mini_redis::apps::{ServerApp, ShardFrontApp, ShardMode};

    let spec = csaw_arch::sharding::ShardingSpec::default();
    let cp = csaw_core::compile(csaw_arch::sharding::sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let front = ShardFrontApp::new(ShardMode::ByKey, 4);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    for i in 1..=4 {
        rt.bind_app(&format!("Bck{i}"), Box::new(ServerApp::new()));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    let mut g = c.benchmark_group("dsl_roundtrip");
    g.bench_function("sharded_set", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || {
                i += 1;
                mini_redis::Command::Set(format!("k{i}"), vec![1; 64])
            },
            |cmd| {
                requests.lock().push_back(cmd);
                rt.invoke("Fnt", "junction").unwrap();
                replies.lock().pop_front()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
    rt.shutdown();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.bench_function("failover_2_backends", |b| {
        b.iter(|| {
            let p = csaw_arch::failover::failover(&csaw_arch::failover::FailoverSpec::default());
            csaw_core::compile(p, &LoadConfig::new()).unwrap()
        })
    });
    g.bench_function("sharding_8_backends", |b| {
        b.iter(|| {
            let p = csaw_arch::sharding::sharding(&csaw_arch::sharding::ShardingSpec {
                n_backends: 8,
                ..Default::default()
            });
            csaw_core::compile(p, &LoadConfig::new()).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(30);
    targets = bench_kv_table, bench_formula, bench_serial, bench_redis,
        bench_suricata, bench_dsl_roundtrip, bench_compile
}
criterion_main!(benches);
