//! Fast conformance smoke tests: a subset of the architecture catalogue
//! runs with tracing on and the recorded traces must replay cleanly
//! through the semantics checker. The full seven-architecture sweep is
//! the `trace_conformance` binary (CI runs it at a fixed seed).

use csaw_bench::chaos::{soak_checkpoint, ChaosSchedule};
use csaw_bench::conformance_runs::{conf_caching, conf_sharding};
use std::time::Duration;

#[test]
fn sharding_trace_conforms() {
    let run = conf_sharding();
    assert!(
        run.summary.ok,
        "sharding trace rejected:\n{}\ntrace:\n{}",
        run.summary.detail,
        run.jsonl
    );
    assert!(run.summary.events > 0);
    assert_eq!(run.summary.dropped, 0);
}

#[test]
fn caching_trace_conforms() {
    let run = conf_caching();
    assert!(
        run.summary.ok,
        "caching trace rejected:\n{}\ntrace:\n{}",
        run.summary.detail,
        run.jsonl
    );
    assert!(run.summary.events > 0);
}

#[test]
fn checkpoint_soak_with_conformance_invariant_holds() {
    let schedule = ChaosSchedule::acceptance(7)
        .with_requests(10)
        .without_partition()
        .with_pace(Duration::from_millis(1))
        .with_conformance(true);
    let outcome = soak_checkpoint(&schedule);
    let c = outcome.conformance.as_ref().expect("conformance enabled");
    assert!(
        c.ok,
        "checkpoint trace rejected:\n{}\ntrace:\n{}",
        c.detail,
        outcome.trace_jsonl.as_deref().unwrap_or("")
    );
    assert!(outcome.invariants_hold(), "soak invariants: {outcome:?}");
}
