//! Fast conformance smoke tests: a subset of the architecture catalogue
//! runs with tracing on and the recorded traces must replay cleanly
//! through the semantics checker. The full seven-architecture sweep is
//! the `trace_conformance` binary (CI runs it at a fixed seed).

use csaw_bench::chaos::{soak_checkpoint, soak_failover, ChaosSchedule};
use csaw_bench::conformance_runs::{conf_caching, conf_sharding};
use csaw_runtime::env_seed;
use std::time::Duration;

#[test]
fn sharding_trace_conforms() {
    let run = conf_sharding();
    assert!(
        run.summary.ok,
        "sharding trace rejected:\n{}\ntrace:\n{}",
        run.summary.detail,
        run.jsonl
    );
    assert!(run.summary.events > 0);
    assert_eq!(run.summary.dropped, 0);
}

#[test]
fn caching_trace_conforms() {
    let run = conf_caching();
    assert!(
        run.summary.ok,
        "caching trace rejected:\n{}\ntrace:\n{}",
        run.summary.detail,
        run.jsonl
    );
    assert!(run.summary.events > 0);
}

/// §8 local-priority conformance under chaos, across a block of seeds:
/// the fail-over architecture soaks under the seeded fault schedule
/// (drops, dups, reordering — traffic rides the batched transport),
/// and every recorded trace must replay cleanly through the semantics
/// checker. The base seed honors `CSAW_SEED` for reproduction.
#[test]
fn failover_chaos_traces_conform_across_seeds() {
    let base = env_seed(7000);
    for seed in base..base + 6 {
        let schedule = ChaosSchedule::acceptance(seed)
            .with_requests(16)
            .without_partition()
            .with_pace(Duration::from_millis(2))
            .with_conformance(true);
        let outcome = soak_failover(&schedule);
        let c = outcome.conformance.as_ref().expect("conformance enabled");
        assert!(
            c.ok,
            "seed {seed}: failover trace rejected:\n{}\ntrace:\n{}",
            c.detail,
            outcome.trace_jsonl.as_deref().unwrap_or("")
        );
        assert!(c.events > 0, "seed {seed}: empty trace");
        assert!(outcome.invariants_hold(), "seed {seed}: soak invariants: {outcome:?}");
    }
}

#[test]
fn checkpoint_soak_with_conformance_invariant_holds() {
    let schedule = ChaosSchedule::acceptance(7)
        .with_requests(10)
        .without_partition()
        .with_pace(Duration::from_millis(1))
        .with_conformance(true);
    let outcome = soak_checkpoint(&schedule);
    let c = outcome.conformance.as_ref().expect("conformance enabled");
    assert!(
        c.ok,
        "checkpoint trace rejected:\n{}\ntrace:\n{}",
        c.detail,
        outcome.trace_jsonl.as_deref().unwrap_or("")
    );
    assert!(outcome.invariants_hold(), "soak invariants: {outcome:?}");
}
