//! Chaos soak acceptance tests: the fail-over architectures under the
//! seeded acceptance fault schedule (5% drop, 5% dup, jitter, one 2s
//! directional partition) must hold the end-to-end invariants — zero
//! lost accepted requests, consistent arbitration, KV convergence — and
//! the verdict must replay deterministically for a fixed seed. The same
//! schedule with the reliability layer disabled must demonstrably fail,
//! otherwise the harness proves nothing.

use std::sync::Mutex;

use csaw_bench::chaos::{self, ChaosSchedule};

/// Soaks are timing-sensitive (heartbeat suspicion windows, reply
/// deadlines); running them concurrently starves each other's runtime
/// threads. Serialize the whole file.
static SOAK_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    SOAK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn watched_acceptance_soak_holds_invariants_and_is_deterministic() {
    let _guard = serialized();
    let mut verdicts = Vec::new();
    for run in 0..3 {
        let outcome = chaos::soak_watched(&ChaosSchedule::acceptance(42));
        assert!(
            outcome.invariants_hold(),
            "run {run}: lost={} refused={} single_active={} converged={} model_match={}",
            outcome.lost,
            outcome.refused,
            outcome.single_active,
            outcome.converged,
            outcome.model_match
        );
        assert!(outcome.failed_over, "run {run}: watchdog never engaged fail-over");
        assert!(
            outcome.stats.partitioned > 0,
            "run {run}: the scheduled partition was never exercised"
        );
        assert_eq!(outcome.lost, 0, "run {run}");
        verdicts.push(outcome.verdict());
    }
    assert!(
        verdicts.windows(2).all(|w| w[0] == w[1]),
        "verdict not deterministic across runs of the same seed: {verdicts:?}"
    );
}

#[test]
fn watched_soak_without_reliability_violates_invariants() {
    let _guard = serialized();
    // Same seeded schedule, retry and dedup off, loss turned up a notch:
    // the architecture alone cannot mask a lossy link.
    let schedule = ChaosSchedule::acceptance(42)
        .with_requests(40)
        .with_drop(0.10)
        .without_reliability();
    let outcome = chaos::soak_watched(&schedule);
    assert!(
        !outcome.invariants_hold(),
        "reliability layer off should lose or refuse requests: lost={} refused={} \
         converged={} model_match={}",
        outcome.lost,
        outcome.refused,
        outcome.converged,
        outcome.model_match
    );
}

#[test]
fn failover_soak_converges_through_partition() {
    let _guard = serialized();
    let schedule = ChaosSchedule::acceptance(42).with_requests(50);
    let outcome = chaos::soak_failover(&schedule);
    assert!(
        outcome.invariants_hold(),
        "lost={} refused={} single_active={} converged={} model_match={}",
        outcome.lost,
        outcome.refused,
        outcome.single_active,
        outcome.converged,
        outcome.model_match
    );
    assert!(outcome.failed_over, "partition never hit the b1 arm");
}

#[test]
fn checkpoint_soak_recovers_checkpointed_state() {
    let _guard = serialized();
    let schedule = ChaosSchedule::acceptance(42).with_requests(30).without_partition();
    let outcome = chaos::soak_checkpoint(&schedule);
    assert!(
        outcome.invariants_hold(),
        "recovery failed or produced a never-checkpointed state: converged={} model_match={}",
        outcome.converged,
        outcome.model_match
    );
}
