//! Deterministic-simulation acceptance sweeps over the parametric
//! scenario family (fail-over, live reshard under traffic, crash +
//! checkpoint restore, repeated churn, overload storms under ingress
//! budgets): blocks of consecutive seeds
//! must come out green — oracle clean, repairs verified, cross-epoch
//! conformance pass, horizon reached within the step budget — and each
//! scenario must deterministically catch its own deliberate fence-off
//! bug, shrink the offending schedule, and reproduce it from the JSON
//! artifact.
//!
//! The base seed honors `CSAW_SEED`, so a failing block reported by CI
//! can be reproduced locally with the same environment variable; every
//! red schedule prints its seed (and the `csaw_sim` CLI can then shrink
//! and persist it as a JSON artifact).

use csaw_bench::sim_runs::{
    dfs_schedule, replay_schedule, run_schedule, shrink_failure, Scenario, ScheduleSpec,
};
use csaw_runtime::{env_seed, Artifact, DfsConfig};

const SWEEP: u64 = 48;

/// Under virtual time the heartbeat loop is drift-free: every round
/// fires at an exact multiple of the 20 ms interval, regardless of how
/// the random walk interleaves it with junction passes and repairs.
#[test]
fn sim_heartbeats_keep_nominal_cadence() {
    let out = run_schedule(&ScheduleSpec::for_seed(5));
    assert!(out.failure.is_none(), "oracle: {:?}", out.failure);
    let mut rounds = 0u64;
    for line in out.trace_jsonl.lines().filter(|l| l.contains("\"k\":\"link_hb\"")) {
        let us: u64 = line
            .split("\"us\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|v| v.parse().ok())
            .expect("link_hb event without a timestamp");
        assert_eq!(us % 20_000, 0, "heartbeat drifted off the 20 ms grid: {line}");
        rounds += 1;
    }
    // 1500 ms horizon / 20 ms interval, several directed pairs — the
    // trace must show sustained rounds, not just the first.
    assert!(rounds > 100, "too few heartbeat sends traced: {rounds}");
}

#[test]
fn sweep_reconfigure_during_repair_stays_green() {
    let base = env_seed(1000);
    let mut acked_total = 0usize;
    for seed in base..base + SWEEP {
        let out = run_schedule(&ScheduleSpec::for_seed(seed));
        assert!(
            out.failure.is_none(),
            "seed {seed} went red: {:?} (CSAW_SEED={seed} reproduces; \
             `csaw_sim explore --seed {seed} --schedules 1` shrinks it)",
            out.failure
        );
        assert!(out.repair_ok, "seed {seed}: promotion repair did not verify: {:?}", out.repairs);
        assert!(out.conformance.ok, "seed {seed}: conformance: {}", out.conformance.detail);
        assert!(!out.truncated, "seed {seed}: step budget exhausted before the horizon");
        assert!(
            out.fenced_sends > 0,
            "seed {seed}: the fence never rejected the zombie's traffic"
        );
        acked_total += out.acked;
    }
    // The workload is six requests per schedule; chaos and repair
    // timing may time a few out, but the sweep as a whole must carry
    // real traffic or the oracle is vacuous.
    assert!(
        acked_total >= (SWEEP as usize) * 4,
        "sweep carried too little acked traffic: {acked_total} over {SWEEP} schedules"
    );
}

/// The two ROADMAP schedules (live reshard with key re-homing
/// mid-traffic, crash + checkpoint restore) plus repeated churn, swept
/// across seeds with the small model's (shards, replicas) rotating so
/// every cell of the grid gets hit. Every schedule must be green.
#[test]
fn sweep_new_scenarios_stay_green() {
    let base = env_seed(2000);
    let scenarios =
        [Scenario::Reshard, Scenario::Restore, Scenario::Churn, Scenario::Planned];
    let grid = [(1, 1), (2, 2), (3, 1), (1, 3), (4, 2), (2, 3)];
    let mut acked_total = 0usize;
    for i in 0..SWEEP {
        let seed = base + i;
        let scenario = scenarios[(i % 4) as usize];
        let (n, k) = grid[((i / 4) % grid.len() as u64) as usize];
        let out = run_schedule(&ScheduleSpec::new(scenario, n, k, seed));
        assert!(
            out.failure.is_none(),
            "{} (n={n}, k={k}) seed {seed} went red: {:?} (CSAW_SEED={seed} reproduces)",
            scenario.label(),
            out.failure
        );
        assert!(
            out.repair_ok,
            "{} (n={n}, k={k}) seed {seed}: repair/wave did not verify: {:?}",
            scenario.label(),
            out.repairs
        );
        assert!(
            out.conformance.ok,
            "{} seed {seed}: conformance: {}",
            scenario.label(),
            out.conformance.detail
        );
        assert!(
            !out.truncated,
            "{} (n={n}, k={k}) seed {seed}: step budget exhausted before the horizon",
            scenario.label()
        );
        acked_total += out.acked;
    }
    assert!(
        acked_total >= (SWEEP as usize) * 4,
        "sweep carried too little traffic: {acked_total} over {SWEEP} schedules"
    );
}

/// The overload storm swept across seeds and grid cells: every
/// schedule must stay green — meaning the supervisor never
/// misclassified backpressure as failure (no repair records at all on
/// the healthy fleet), the bounded queues engaged and shed without
/// collapse, the post-storm probes landed, and the trace passed
/// conformance with shed events present. `replicas` doubles as the
/// storm multiplier, so the (1, 2) and (2, 2) cells run at ~8× a
/// route's capacity.
#[test]
fn sweep_overload_storms_stay_green() {
    let base = env_seed(3000);
    let grid = [(1, 1), (2, 1), (1, 2), (2, 2)];
    let mut acked_total = 0usize;
    for i in 0..SWEEP {
        let seed = base + i;
        let (n, k) = grid[(i % grid.len() as u64) as usize];
        let out = run_schedule(&ScheduleSpec::new(Scenario::Overload, n, k, seed));
        assert!(
            out.failure.is_none(),
            "overload (n={n}, k={k}) seed {seed} went red: {:?} (CSAW_SEED={seed} reproduces)",
            out.failure
        );
        assert!(
            out.repair_ok,
            "overload (n={n}, k={k}) seed {seed}: supervisor recorded anomalies on a \
             healthy fleet: {:?}",
            out.repairs
        );
        assert!(
            out.conformance.ok,
            "overload seed {seed}: conformance: {}",
            out.conformance.detail
        );
        assert!(
            !out.truncated,
            "overload (n={n}, k={k}) seed {seed}: step budget exhausted before the horizon"
        );
        acked_total += out.acked;
    }
    // Strict admission sheds almost the whole storm; what must land is
    // the storm-edge units plus every group's post-storm probes.
    assert!(
        acked_total >= (SWEEP as usize) * 3,
        "sweep carried too little acked traffic: {acked_total} over {SWEEP} schedules"
    );
}

/// Determinism contract for every scenario family: the same seed on a
/// fresh runtime yields a byte-identical step list and a byte-identical
/// trace, and replaying the recorded steps reproduces both.
#[test]
fn same_seed_traces_are_byte_identical_per_scenario() {
    for (scenario, n, k) in [
        (Scenario::Reshard, 2, 1),
        (Scenario::Restore, 2, 2),
        (Scenario::Churn, 1, 2),
        (Scenario::Planned, 2, 1),
        (Scenario::Overload, 1, 1),
    ] {
        let spec = ScheduleSpec::new(scenario, n, k, 17);
        let a = run_schedule(&spec);
        let b = run_schedule(&spec);
        assert!(a.failure.is_none(), "{}: {:?}", scenario.label(), a.failure);
        assert_eq!(a.steps, b.steps, "{}: schedules diverged", scenario.label());
        assert_eq!(a.trace_jsonl, b.trace_jsonl, "{}: traces diverged", scenario.label());
        assert!(!a.trace_jsonl.is_empty(), "{}: trace recording off", scenario.label());
        let replayed = replay_schedule(&spec, &a.steps);
        assert_eq!(
            a.trace_jsonl,
            replayed.trace_jsonl,
            "{}: replay diverged from the recorded run",
            scenario.label()
        );
    }
}

/// Every scenario family catches its own deliberate bug when the fence
/// is dropped, shrinking keeps the exact failure, and the shrunk
/// artifact round-trips through JSON into a red replay.
#[test]
fn every_scenario_catches_its_fence_off_bug() {
    for (scenario, n, k, seed, expect) in [
        (Scenario::Failover, 1, 1, 3, "split-brain"),
        (Scenario::Reshard, 1, 1, 1, "double-homed"),
        (Scenario::Restore, 1, 1, 1, "crash recovery never completed"),
        (Scenario::Churn, 1, 1, 1, "double-homed"),
        (Scenario::Planned, 1, 1, 1, "plan invalid"),
        (Scenario::Overload, 1, 1, 1, "false crash classification"),
    ] {
        let spec = ScheduleSpec::new(scenario, n, k, seed).with_fence_off();
        let out = run_schedule(&spec);
        let art = out.artifact().unwrap_or_else(|| {
            panic!("{} (seed {seed}): fence-off run stayed green", scenario.label())
        });
        assert!(
            art.reason.contains(expect),
            "{}: wrong failure `{}` (expected `{expect}`)",
            scenario.label(),
            art.reason
        );
        let shrunk = shrink_failure(&spec, &art);
        assert!(
            shrunk.len() < art.steps.len(),
            "{}: shrink removed nothing ({} steps)",
            scenario.label(),
            art.steps.len()
        );
        let json = Artifact {
            seed: art.seed,
            reason: art.reason.clone(),
            instances: art.instances.clone(),
            steps: shrunk,
        }
        .to_json();
        let back = Artifact::from_json(&json).expect("artifact parses");
        let replayed = replay_schedule(&spec, &back.steps);
        assert_eq!(
            replayed.failure.as_deref(),
            Some(art.reason.as_str()),
            "{}: shrunk JSON artifact did not reproduce the failure",
            scenario.label()
        );
    }
}

/// Exhaustive exploration is itself deterministic: the same spec
/// explored twice visits the same tree, and the reduced run stays
/// green wherever the naive baseline is green.
#[test]
fn dfs_exploration_is_deterministic() {
    let spec = ScheduleSpec::new(Scenario::Restore, 1, 1, 4).with_budget(12);
    let a = dfs_schedule(&spec, &DfsConfig::default());
    let b = dfs_schedule(&spec, &DfsConfig::default());
    assert!(a.complete && b.complete, "small-budget DFS did not finish");
    assert!(a.failures.is_empty(), "red at small budget: {:?}", a.failures);
    assert_eq!(a.schedules, b.schedules, "DFS schedule count diverged across runs");
    assert_eq!(a.nodes, b.nodes, "DFS node count diverged across runs");
    assert_eq!(a.states, b.states, "DFS state count diverged across runs");
}

/// With the `fence-off-bug` feature compiled in, even a spec that asks
/// for the fence gets the buggy build — proving the cfg gate forces the
/// bug into every scenario and the oracles still catch it. (CI builds
/// the bench tests once with the feature and runs exactly this test.)
#[cfg(feature = "fence-off-bug")]
#[test]
fn feature_gate_forces_every_bug_on() {
    for (scenario, expect) in [
        (Scenario::Failover, "split-brain"),
        (Scenario::Reshard, "double-homed"),
        (Scenario::Restore, "crash recovery never completed"),
        (Scenario::Churn, "double-homed"),
        (Scenario::Planned, "plan invalid"),
        (Scenario::Overload, "false crash classification"),
    ] {
        let seed = if scenario == Scenario::Failover { 3 } else { 1 };
        let out = run_schedule(&ScheduleSpec::new(scenario, 1, 1, seed));
        let reason = out.failure.unwrap_or_else(|| {
            panic!("{}: feature-gated bug not caught", scenario.label())
        });
        assert!(
            reason.contains(expect),
            "{}: wrong failure `{reason}` (expected `{expect}`)",
            scenario.label()
        );
    }
}
