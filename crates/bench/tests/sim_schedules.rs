//! Deterministic-simulation acceptance sweep: a block of consecutive
//! seeds drives the supervised fail-over scenario — chaos reordering, a
//! live reconfiguration landing inside the supervisor's detect →
//! confirm → repair window, promotion of the spare, heal, zombie poke —
//! and every schedule must come out green: oracle clean, repair
//! verified, cross-epoch conformance pass, horizon reached within the
//! step budget.
//!
//! The base seed honors `CSAW_SEED`, so a failing block reported by CI
//! can be reproduced locally with the same environment variable; every
//! red schedule prints its seed (and the `csaw_sim` CLI can then shrink
//! and persist it as a JSON artifact).

use csaw_bench::sim_runs::{run_schedule, ScheduleSpec};
use csaw_runtime::env_seed;

const SWEEP: u64 = 48;

/// Under virtual time the heartbeat loop is drift-free: every round
/// fires at an exact multiple of the 20 ms interval, regardless of how
/// the random walk interleaves it with junction passes and repairs.
#[test]
fn sim_heartbeats_keep_nominal_cadence() {
    let out = run_schedule(&ScheduleSpec::for_seed(5));
    assert!(out.failure.is_none(), "oracle: {:?}", out.failure);
    let mut rounds = 0u64;
    for line in out.trace_jsonl.lines().filter(|l| l.contains("\"k\":\"link_hb\"")) {
        let us: u64 = line
            .split("\"us\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|v| v.parse().ok())
            .expect("link_hb event without a timestamp");
        assert_eq!(us % 20_000, 0, "heartbeat drifted off the 20 ms grid: {line}");
        rounds += 1;
    }
    // 1500 ms horizon / 20 ms interval, several directed pairs — the
    // trace must show sustained rounds, not just the first.
    assert!(rounds > 100, "too few heartbeat sends traced: {rounds}");
}

#[test]
fn sweep_reconfigure_during_repair_stays_green() {
    let base = env_seed(1000);
    let mut acked_total = 0usize;
    for seed in base..base + SWEEP {
        let out = run_schedule(&ScheduleSpec::for_seed(seed));
        assert!(
            out.failure.is_none(),
            "seed {seed} went red: {:?} (CSAW_SEED={seed} reproduces; \
             `csaw_sim explore --seed {seed} --schedules 1` shrinks it)",
            out.failure
        );
        assert!(out.repair_ok, "seed {seed}: promotion repair did not verify: {:?}", out.repairs);
        assert!(out.conformance.ok, "seed {seed}: conformance: {}", out.conformance.detail);
        assert!(!out.truncated, "seed {seed}: step budget exhausted before the horizon");
        assert!(
            out.fenced_sends > 0,
            "seed {seed}: the fence never rejected the zombie's traffic"
        );
        acked_total += out.acked;
    }
    // The workload is six requests per schedule; chaos and repair
    // timing may time a few out, but the sweep as a whole must carry
    // real traffic or the oracle is vacuous.
    assert!(
        acked_total >= (SWEEP as usize) * 4,
        "sweep carried too little acked traffic: {acked_total} over {SWEEP} schedules"
    );
}
