//! Trace-overhead measurement, in two parts:
//!
//! 1. **Redis throughput bench** (the acceptance criterion): the §10.1
//!    query-rate harness — a mini-redis store serving a 70/30 workload
//!    while C-Saw runs periodic checkpoint coordination. Tracing is
//!    measured disabled (twice — the second run doubles as the noise
//!    floor) and enabled.
//! 2. **Coordination saturation** (informational worst case): every
//!    request crosses the sharding architecture, so each one generates
//!    ~20 trace events and the per-event cost is fully exposed.
//!
//! Writes `results/trace_overhead.json`.
//!
//! Environment knobs:
//! * `CSAW_TRACE_SECS` — seconds per query-rate run (default 2.0);
//! * `CSAW_TRACE_REQS` — requests per saturation run (default 20000);
//! * `CSAW_TRACE_DUMP` — path to dump the saturated traced run's JSONL;
//! * `CSAW_PERF_CHECK` — path to a baseline `trace_overhead.json`:
//!   exit non-zero if a key metric *regressed* more than 25% against
//!   the baseline (improvements always pass).

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_bench::report::Report;
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{Runtime, RuntimeConfig};
use mini_redis::apps::{CheckpointStoreApp, ServerApp, ShardFrontApp, ShardMode};
use mini_redis::workload::{Workload, WorkloadSpec};

fn workload() -> Workload {
    Workload::new(WorkloadSpec {
        keyspace: 4000,
        read_ratio: 0.7,
        value_size: 128,
        ..Default::default()
    })
}

/// The redis throughput bench (fig. 23a harness without the crash):
/// queries execute against the store while the checkpoint architecture
/// coordinates at a fixed cadence. Returns (queries/s, trace events).
fn query_rate_once(tracing: bool, seconds: f64) -> (f64, usize) {
    let spec = CheckpointSpec::default();
    let cp = csaw_core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    rt.set_tracing(tracing);
    let prim = ServerApp::new();
    let store = Arc::clone(&prim.store);
    rt.bind_app("Prim", Box::new(prim));
    rt.bind_app("Store", Box::new(CheckpointStoreApp::new()));
    rt.set_policy("Prim", "checkpoint", Policy::Periodic(Duration::from_secs_f64(seconds / 8.0)));
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    {
        let mut s = store.lock();
        for i in 0..4000 {
            s.set(&format!("key:{i}"), vec![0xAB; 128]);
        }
    }
    let mut wl = workload();
    let mut queries = 0u64;
    let start = Instant::now();
    let total = Duration::from_secs_f64(seconds);
    while start.elapsed() < total {
        let cmd = wl.next();
        let _ = cmd.execute(&mut store.lock());
        queries += 1;
    }
    let rate = queries as f64 / start.elapsed().as_secs_f64();
    let events = rt.trace_events().len();
    rt.shutdown();
    (rate, events)
}

/// Worst case: drive `requests` workload commands through the sharding
/// architecture, so every request is pure C-Saw coordination. Returns
/// (requests/s, trace events).
fn saturation_once(tracing: bool, requests: usize) -> (f64, usize) {
    let n = 4;
    let spec = ShardingSpec { n_backends: n, ..Default::default() };
    let cp = csaw_core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    rt.set_tracing(tracing);
    let front = ShardFrontApp::new(ShardMode::ByKey, n);
    let queue = Arc::clone(&front.requests);
    rt.bind_app("Fnt", Box::new(front));
    for i in 1..=n {
        rt.bind_app(&format!("Bck{i}"), Box::new(ServerApp::new()));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(10))]).unwrap();

    let mut wl = workload();
    let start = Instant::now();
    for _ in 0..requests {
        queue.lock().push_back(wl.next());
        let _ = rt.invoke("Fnt", "junction");
    }
    let rate = requests as f64 / start.elapsed().as_secs_f64();
    let events = if tracing {
        let jsonl = rt.trace_jsonl();
        if let Ok(path) = std::env::var("CSAW_TRACE_DUMP") {
            let _ = std::fs::write(path, &jsonl);
        }
        jsonl.lines().count()
    } else {
        rt.trace_events().len()
    };
    rt.shutdown();
    (rate, events)
}

/// off/off/on measurement of one harness; returns
/// (off mean, on, noise %, overhead %, traced events).
fn measure<F: Fn(bool) -> (f64, usize)>(run: F) -> (f64, f64, f64, f64, usize) {
    let (off_a, _) = run(false);
    let (off_b, _) = run(false);
    let (on, events) = run(true);
    let off = (off_a + off_b) / 2.0;
    let noise = (off_a - off_b).abs() / off * 100.0;
    let overhead = (off - on) / off * 100.0;
    (off, on, noise, overhead, events)
}

fn main() {
    let seconds = std::env::var("CSAW_TRACE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0f64);
    let requests = std::env::var("CSAW_TRACE_REQS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000usize);

    // Warm-up (thread pools, allocator).
    let _ = saturation_once(false, requests / 10);

    let (q_off, q_on, q_noise, q_over, q_events) = measure(|t| query_rate_once(t, seconds));
    println!("redis throughput bench (checkpointed query rate):");
    println!("  off {q_off:.0} q/s, on {q_on:.0} q/s (noise {q_noise:.1}%)");
    println!("  enabled overhead: {q_over:.1}%  ({q_events} events recorded)");

    let (s_off, s_on, s_noise, s_over, s_events) = measure(|t| saturation_once(t, requests));
    let ns_per_event = if s_events > 0 {
        (1.0 / s_on - 1.0 / s_off) * requests as f64 / s_events as f64 * 1e9
    } else {
        0.0
    };
    println!("coordination saturation (every request through the sharded architecture):");
    println!("  off {s_off:.0} req/s, on {s_on:.0} req/s (noise {s_noise:.1}%)");
    println!(
        "  enabled overhead: {s_over:.1}%  ({s_events} events, ~{:.0} events/request, ~{ns_per_event:.0} ns/event)",
        s_events as f64 / requests as f64
    );

    let mut r = Report::new("trace_overhead", "Trace layer overhead");
    r.note("query_rate_off", q_off);
    r.note("query_rate_on", q_on);
    r.note("query_rate_noise_pct", q_noise);
    r.note("query_rate_overhead_pct", q_over);
    r.note("query_rate_trace_events", q_events as f64);
    r.note("saturation_requests", requests as f64);
    r.note("saturation_off", s_off);
    r.note("saturation_on", s_on);
    r.note("saturation_noise_pct", s_noise);
    r.note("saturation_overhead_pct", s_over);
    r.note("saturation_trace_events", s_events as f64);
    r.note("saturation_ns_per_event", ns_per_event);
    r.remark(
        "acceptance: redis throughput bench overhead <10% enabled, ~0% disabled; \
         the saturation number is the worst case (every request is pure coordination)",
    );
    r.finish();

    // -- baseline regression check (perf-smoke) ------------------------
    if let Ok(base_path) = std::env::var("CSAW_PERF_CHECK") {
        let base = csaw_bench::report::read_notes(&base_path);
        let find = |k: &str| base.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        // (metric, current, higher_is_better)
        let checks = [
            ("query_rate_off", q_off, true),
            ("query_rate_on", q_on, true),
            ("saturation_on", s_on, true),
            ("saturation_ns_per_event", ns_per_event, false),
        ];
        let mut failed = false;
        println!("baseline regression check ({base_path}, 25% tolerance):");
        for (name, cur, higher_better) in checks {
            let Some(b) = find(name) else {
                println!("  [FAIL] {name}: missing from baseline");
                failed = true;
                continue;
            };
            // Regressions beyond 25% fail; improvements always pass.
            let ok = if higher_better { cur >= b * 0.75 } else { cur <= b * 1.25 };
            println!("  [{}] {name}: {cur:.1} vs baseline {b:.1}", if ok { "PASS" } else { "FAIL" });
            failed |= !ok;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
