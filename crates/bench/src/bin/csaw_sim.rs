//! Deterministic simulation driver: explore seeded schedules of the
//! parametric scenario family, replay recorded failure artifacts,
//! exhaustively enumerate small-model schedule trees, and demonstrate
//! the oracles on the deliberate fence-off bugs.
//!
//! ```text
//! csaw_sim explore [--scenario S] [--shards N] [--replicas K]
//!                  [--schedules N] [--seed S] [--buggy]
//! csaw_sim replay <artifact.json> [--scenario S] [--shards N]
//!                  [--replicas K] [--buggy]
//! csaw_sim dfs [--scenario S] [--shards N] [--replicas K] [--seed S]
//!                  [--budget STEPS] [--compare] [--naive-cap N] [--buggy]
//! csaw_sim grid [--scenario S|all] [--budget STEPS] [--max-shards N]
//!                  [--max-replicas K] [--walk N] [--seed S] [--buggy]
//! csaw_sim demo-bug [--scenario S] [--shards N] [--replicas K] [--seed S]
//! ```
//!
//! `explore` runs N schedules from consecutive seeds (base from
//! `--seed`, `CSAW_SEED`, or 1) and exits non-zero if any schedule goes
//! red; each red schedule is shrunk and written to
//! `results/sim/offending_schedule_<label>_<seed>.json` for `replay`.
//! `replay` re-executes an artifact byte-for-byte and reports whether
//! the recorded failure reproduces. `dfs` exhaustively enumerates one
//! scenario's schedule tree at a small step budget (with `--compare`,
//! it also runs the naive no-reduction baseline and reports the
//! reduction factor). `grid` sweeps the small model (shards × replicas)
//! per scenario — exhaustive DFS at the small budget, then a seeded
//! random walk at each scenario's full budget. `demo-bug` runs one
//! schedule with the scenario's fence deliberately disabled: the oracle
//! must go red, shrink the schedule, and reproduce it from the JSON
//! artifact.

use csaw_bench::report::Report;
use csaw_bench::sim_runs::{
    dfs_schedule, replay_schedule, run_schedule, shrink_failure, Scenario, ScheduleSpec,
};
use csaw_runtime::{env_seed, Artifact, DfsConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn spec_for(args: &[String], seed: u64) -> ScheduleSpec {
    let scenario = arg_value(args, "--scenario")
        .and_then(|s| Scenario::parse(&s))
        .unwrap_or(Scenario::Failover);
    let shards = arg_num(args, "--shards", 1);
    let replicas = arg_num(args, "--replicas", 1);
    let spec = ScheduleSpec::new(scenario, shards, replicas, seed);
    if args.iter().any(|a| a == "--buggy") {
        spec.with_fence_off()
    } else {
        spec
    }
}

fn write_artifact(label: &str, art: &Artifact) {
    let path = format!("results/sim/offending_schedule_{label}_{}.json", art.seed);
    if std::fs::create_dir_all("results/sim")
        .and_then(|()| std::fs::write(&path, art.to_json()))
        .is_ok()
    {
        eprintln!("  artifact written to {path}");
    }
}

fn explore(args: &[String]) -> i32 {
    let schedules: u64 = arg_num(args, "--schedules", 100);
    let base = arg_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_seed(1));

    let probe = spec_for(args, base);
    let mut report = Report::new(
        "sim_explore",
        "deterministic simulation: seeded schedule exploration",
    );
    report.remark(format!(
        "{schedules} {} schedules (shards={}, replicas={}) from seed {base}, fence {}",
        probe.scenario.label(),
        probe.shards,
        probe.replicas,
        if probe.fence { "on" } else { "DISABLED (deliberate bug)" }
    ));

    let mut red = 0u64;
    let mut total_steps = 0u64;
    let mut acked = 0u64;
    let mut repaired = 0u64;
    let mut truncated = 0u64;
    for seed in base..base + schedules {
        let spec = spec_for(args, seed);
        let out = run_schedule(&spec);
        total_steps += out.steps.len() as u64;
        acked += out.acked as u64;
        repaired += u64::from(out.repair_ok);
        truncated += u64::from(out.truncated);
        if let Some(art) = out.artifact() {
            red += 1;
            eprintln!("RED seed={seed}: {}", art.reason);
            let shrunk = shrink_failure(&spec, &art);
            eprintln!(
                "  shrunk {} -> {} steps; replaying to confirm",
                art.steps.len(),
                shrunk.len()
            );
            let confirm = replay_schedule(&spec, &shrunk);
            let final_art = Artifact {
                seed,
                reason: confirm.failure.clone().unwrap_or_else(|| art.reason.clone()),
                instances: art.instances.clone(),
                steps: if confirm.failure.is_some() { shrunk } else { art.steps.clone() },
            };
            write_artifact(spec.scenario.label(), &final_art);
        }
    }

    println!(
        "explored {schedules} schedules (seed {base}..{}): {red} red, \
         {repaired} repaired, {acked} acked requests, {total_steps} steps, \
         {truncated} truncated",
        base + schedules - 1
    );
    report
        .note("schedules", schedules as f64)
        .note("base_seed", base as f64)
        .note("red", red as f64)
        .note("repaired", repaired as f64)
        .note("acked", acked as f64)
        .note("steps", total_steps as f64)
        .note("truncated", truncated as f64);
    report.finish();
    i32::from(red > 0)
}

fn replay(args: &[String]) -> i32 {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: csaw_sim replay <artifact.json> [options]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let Some(art) = Artifact::from_json(&text) else {
        eprintln!("{path}: not a schedule artifact");
        return 2;
    };
    let spec = spec_for(args, art.seed);
    let out = replay_schedule(&spec, &art.steps);
    println!(
        "replayed seed {} ({} recorded steps, {:.1}ms virtual)",
        art.seed,
        art.steps.len(),
        out.virtual_ms
    );
    match out.failure {
        Some(reason) => {
            println!("failure reproduced: {reason} (recorded: {})", art.reason);
            0
        }
        None => {
            println!("failure did NOT reproduce (recorded: {})", art.reason);
            1
        }
    }
}

fn print_dfs_line(label: &str, stats: &csaw_runtime::DfsStats) {
    println!(
        "{label}: {} schedules, {} nodes, {} states, {} sleep-skipped, \
         {} hash-pruned, complete={}, red={}",
        stats.schedules,
        stats.nodes,
        stats.states,
        stats.sleep_skipped,
        stats.hash_pruned,
        stats.complete,
        stats.failures.len()
    );
}

fn dfs(args: &[String]) -> i32 {
    let seed = arg_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_seed(1));
    let budget: usize = arg_num(args, "--budget", 12);
    let spec = spec_for(args, seed).with_budget(budget);

    let mut report =
        Report::new("sim_dfs", "deterministic simulation: exhaustive schedule exploration");
    report.remark(format!(
        "{} (shards={}, replicas={}) exhaustive at budget {budget}",
        spec.scenario.label(),
        spec.shards,
        spec.replicas
    ));

    let full = dfs_schedule(&spec, &DfsConfig::default());
    print_dfs_line("reduced", &full);
    for art in &full.failures {
        eprintln!("RED: {}", art.reason);
        write_artifact(spec.scenario.label(), art);
    }
    report
        .note("budget", budget as f64)
        .note("schedules", full.schedules as f64)
        .note("nodes", full.nodes as f64)
        .note("states", full.states as f64)
        .note("sleep_skipped", full.sleep_skipped as f64)
        .note("hash_pruned", full.hash_pruned as f64)
        .note("complete", f64::from(full.complete))
        .note("red", full.failures.len() as f64);

    if args.iter().any(|a| a == "--compare") {
        // Stateless re-execution makes naive DFS pay a full runtime
        // boot per schedule; `--naive-cap` bounds its wall-clock on
        // scenarios whose boot is expensive (fail-over spawns
        // heartbeat threads). A capped, incomplete naive run is still
        // a fair lower bound on the reduction factor.
        let naive_cap: usize = arg_num(args, "--naive-cap", 100_000);
        let naive = dfs_schedule(
            &spec,
            &DfsConfig { sleep_sets: false, hash_prune: false, max_schedules: naive_cap },
        );
        print_dfs_line("naive", &naive);
        let factor = naive.schedules as f64 / full.schedules.max(1) as f64;
        println!("reduction factor: {factor:.1}x fewer schedules than naive DFS");
        report
            .note("naive_schedules", naive.schedules as f64)
            .note("naive_complete", f64::from(naive.complete))
            .note("reduction_factor", factor);
    }
    report.finish();
    i32::from(!full.failures.is_empty())
}

fn grid(args: &[String]) -> i32 {
    let budget: usize = arg_num(args, "--budget", 12);
    let max_n: usize = arg_num(args, "--max-shards", 4);
    let max_k: usize = arg_num(args, "--max-replicas", 3);
    let walk: u64 = arg_num(args, "--walk", 1000);
    let base = arg_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_seed(1));
    let buggy = args.iter().any(|a| a == "--buggy");
    let scenarios: Vec<Scenario> = match arg_value(args, "--scenario").as_deref() {
        None | Some("all") => Scenario::all().to_vec(),
        Some(s) => match Scenario::parse(s) {
            Some(sc) => vec![sc],
            None => {
                eprintln!("unknown scenario {s}");
                return 2;
            }
        },
    };

    let mut report =
        Report::new("sim_grid", "deterministic simulation: small-model (shards x replicas) sweep");
    report.remark(format!(
        "scenarios {:?}, shards 1..={max_n}, replicas 1..={max_k}, \
         exhaustive budget {budget}, {walk} random-walk schedules",
        scenarios.iter().map(|s| s.label()).collect::<Vec<_>>()
    ));

    // Phase 1: exhaustive DFS per grid cell at the small step budget.
    let mut cells: Vec<ScheduleSpec> = Vec::new();
    let mut red = 0u64;
    let mut schedules = 0u64;
    let mut states = 0u64;
    let mut incomplete = 0u64;
    for &sc in &scenarios {
        for n in 1..=max_n {
            for k in 1..=max_k {
                let mut spec = ScheduleSpec::new(sc, n, k, base);
                if buggy {
                    spec = spec.with_fence_off();
                }
                let stats = dfs_schedule(&spec.clone().with_budget(budget), &DfsConfig::default());
                println!(
                    "dfs {}[n={n},k={k}]: {} schedules, {} states, {} sleep-skipped, \
                     {} hash-pruned, complete={}, red={}",
                    sc.label(),
                    stats.schedules,
                    stats.states,
                    stats.sleep_skipped,
                    stats.hash_pruned,
                    stats.complete,
                    stats.failures.len()
                );
                red += stats.failures.len() as u64;
                schedules += stats.schedules;
                states += stats.states;
                incomplete += u64::from(!stats.complete);
                for art in &stats.failures {
                    eprintln!("RED {}[n={n},k={k}]: {}", sc.label(), art.reason);
                    write_artifact(&format!("{}_n{n}k{k}", sc.label()), art);
                }
                cells.push(spec);
            }
        }
    }

    // Phase 2: seeded random walk at each cell's full budget/horizon,
    // seeds round-robined over the grid.
    let mut walk_red = 0u64;
    let mut walk_acked = 0u64;
    for i in 0..walk {
        let spec = &cells[(i % cells.len() as u64) as usize];
        let spec = ScheduleSpec { seed: base + i, ..spec.clone() };
        let out = run_schedule(&spec);
        walk_acked += out.acked as u64;
        if let Some(art) = out.artifact() {
            walk_red += 1;
            eprintln!(
                "RED walk {}[n={},k={}] seed={}: {}",
                spec.scenario.label(),
                spec.shards,
                spec.replicas,
                spec.seed,
                art.reason
            );
            write_artifact(
                &format!("{}_n{}k{}", spec.scenario.label(), spec.shards, spec.replicas),
                &art,
            );
        }
    }

    println!(
        "grid: {} cells, {schedules} exhaustive schedules ({states} states, \
         {incomplete} cells over budget ceiling), {red} red; \
         walk: {walk} schedules, {walk_red} red, {walk_acked} acked",
        cells.len()
    );
    report
        .note("cells", cells.len() as f64)
        .note("budget", budget as f64)
        .note("dfs_schedules", schedules as f64)
        .note("dfs_states", states as f64)
        .note("dfs_incomplete", incomplete as f64)
        .note("dfs_red", red as f64)
        .note("walk_schedules", walk as f64)
        .note("walk_red", walk_red as f64)
        .note("walk_acked", walk_acked as f64);
    report.finish();
    i32::from(red + walk_red > 0)
}

fn demo_bug(args: &[String]) -> i32 {
    let seed = arg_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_seed(3));
    let spec = spec_for(args, seed).with_fence_off();
    let out = run_schedule(&spec);
    let Some(art) = out.artifact() else {
        eprintln!(
            "seed {seed}: fence-off {} schedule stayed green — no detection?",
            spec.scenario.label()
        );
        return 1;
    };
    println!("seed {seed} red as expected: {}", art.reason);
    let shrunk = shrink_failure(&spec, &art);
    println!("shrunk {} -> {} steps", art.steps.len(), shrunk.len());
    let json = Artifact {
        seed,
        reason: art.reason.clone(),
        instances: art.instances.clone(),
        steps: shrunk,
    }
    .to_json();
    let back = Artifact::from_json(&json).expect("artifact roundtrip");
    let replayed = replay_schedule(&spec, &back.steps);
    match replayed.failure {
        Some(reason) => {
            println!("replay-from-JSON reproduces: {reason}");
            0
        }
        None => {
            eprintln!("replay-from-JSON went green — shrink unsound");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("explore") => explore(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("dfs") => dfs(&args[1..]),
        Some("grid") => grid(&args[1..]),
        Some("demo-bug") => demo_bug(&args[1..]),
        _ => {
            eprintln!(
                "usage: csaw_sim explore [--scenario S] [--shards N] [--replicas K] \
                 [--schedules N] [--seed S] [--buggy]\n       \
                 csaw_sim replay <artifact.json> [--scenario S] [--shards N] [--replicas K] \
                 [--buggy]\n       \
                 csaw_sim dfs [--scenario S] [--shards N] [--replicas K] [--seed S] \
                 [--budget STEPS] [--compare] [--naive-cap N] [--buggy]\n       \
                 csaw_sim grid [--scenario S|all] [--budget STEPS] [--max-shards N] \
                 [--max-replicas K] [--walk N] [--seed S] [--buggy]\n       \
                 csaw_sim demo-bug [--scenario S] [--shards N] [--replicas K] [--seed S]\n\
                 scenarios: failover | reshard | restore | churn | planned | overload"
            );
            2
        }
    };
    std::process::exit(code);
}
