//! Deterministic simulation driver: explore seeded schedules of the
//! supervised fail-over scenario, replay recorded failure artifacts,
//! and demonstrate the oracle on the deliberate fencing bug.
//!
//! ```text
//! csaw_sim explore [--schedules N] [--seed S] [--buggy]
//! csaw_sim replay <artifact.json> [--buggy]
//! csaw_sim demo-bug [--seed S]
//! ```
//!
//! `explore` runs N schedules from consecutive seeds (base from
//! `--seed`, `CSAW_SEED`, or 1) and exits non-zero if any schedule goes
//! red; each red schedule is shrunk and written to
//! `results/sim/offending_schedule_<seed>.json` for `replay`.
//! `replay` re-executes an artifact byte-for-byte and reports whether
//! the recorded failure reproduces. `demo-bug` runs one schedule with
//! the repair's fence deliberately disabled: the oracle must go red,
//! shrink the schedule, and reproduce it from the JSON artifact.

use csaw_bench::report::Report;
use csaw_bench::sim_runs::{replay_schedule, run_schedule, shrink_failure, ScheduleSpec};
use csaw_runtime::{env_seed, Artifact};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn spec_for(seed: u64, buggy: bool) -> ScheduleSpec {
    if buggy {
        ScheduleSpec::buggy(seed)
    } else {
        ScheduleSpec::for_seed(seed)
    }
}

fn explore(args: &[String]) -> i32 {
    let schedules: u64 = arg_value(args, "--schedules")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let base = arg_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_seed(1));
    let buggy = args.iter().any(|a| a == "--buggy");

    let mut report = Report::new(
        "sim_explore",
        "deterministic simulation: seeded schedule exploration",
    );
    report.remark(format!(
        "{schedules} schedules from seed {base}, fence {}",
        if buggy { "DISABLED (deliberate bug)" } else { "on" }
    ));

    let mut red = 0u64;
    let mut total_steps = 0u64;
    let mut acked = 0u64;
    let mut repaired = 0u64;
    let mut truncated = 0u64;
    for seed in base..base + schedules {
        let spec = spec_for(seed, buggy);
        let out = run_schedule(&spec);
        total_steps += out.steps.len() as u64;
        acked += out.acked as u64;
        repaired += u64::from(out.repair_ok);
        truncated += u64::from(out.truncated);
        if let Some(art) = out.artifact() {
            red += 1;
            eprintln!("RED seed={seed}: {}", art.reason);
            let shrunk = shrink_failure(&spec, &art);
            eprintln!(
                "  shrunk {} -> {} steps; replaying to confirm",
                art.steps.len(),
                shrunk.len()
            );
            let confirm = replay_schedule(&spec, &shrunk);
            let final_art = Artifact {
                seed,
                reason: confirm.failure.clone().unwrap_or_else(|| art.reason.clone()),
                steps: if confirm.failure.is_some() { shrunk } else { art.steps.clone() },
            };
            let path = format!("results/sim/offending_schedule_{seed}.json");
            if std::fs::create_dir_all("results/sim")
                .and_then(|()| std::fs::write(&path, final_art.to_json()))
                .is_ok()
            {
                eprintln!("  artifact written to {path}");
            }
        }
    }

    println!(
        "explored {schedules} schedules (seed {base}..{}): {red} red, \
         {repaired} repaired, {acked} acked requests, {total_steps} steps, \
         {truncated} truncated",
        base + schedules - 1
    );
    report
        .note("schedules", schedules as f64)
        .note("base_seed", base as f64)
        .note("red", red as f64)
        .note("repaired", repaired as f64)
        .note("acked", acked as f64)
        .note("steps", total_steps as f64)
        .note("truncated", truncated as f64);
    report.finish();
    i32::from(red > 0)
}

fn replay(args: &[String]) -> i32 {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: csaw_sim replay <artifact.json> [--buggy]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let Some(art) = Artifact::from_json(&text) else {
        eprintln!("{path}: not a schedule artifact");
        return 2;
    };
    let buggy = args.iter().any(|a| a == "--buggy");
    let spec = spec_for(art.seed, buggy);
    let out = replay_schedule(&spec, &art.steps);
    println!(
        "replayed seed {} ({} recorded steps, {:.1}ms virtual)",
        art.seed,
        art.steps.len(),
        out.virtual_ms
    );
    match out.failure {
        Some(reason) => {
            println!("failure reproduced: {reason} (recorded: {})", art.reason);
            0
        }
        None => {
            println!("failure did NOT reproduce (recorded: {})", art.reason);
            1
        }
    }
}

fn demo_bug(args: &[String]) -> i32 {
    let seed = arg_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_seed(3));
    let spec = ScheduleSpec::buggy(seed);
    let out = run_schedule(&spec);
    let Some(art) = out.artifact() else {
        eprintln!("seed {seed}: fence-off schedule stayed green — no detection?");
        return 1;
    };
    println!("seed {seed} red as expected: {}", art.reason);
    let shrunk = shrink_failure(&spec, &art);
    println!("shrunk {} -> {} steps", art.steps.len(), shrunk.len());
    let json = Artifact { seed, reason: art.reason.clone(), steps: shrunk }.to_json();
    let back = Artifact::from_json(&json).expect("artifact roundtrip");
    let replayed = replay_schedule(&spec, &back.steps);
    match replayed.failure {
        Some(reason) => {
            println!("replay-from-JSON reproduces: {reason}");
            0
        }
        None => {
            eprintln!("replay-from-JSON went green — shrink unsound");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("explore") => explore(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("demo-bug") => demo_bug(&args[1..]),
        _ => {
            eprintln!(
                "usage: csaw_sim explore [--schedules N] [--seed S] [--buggy]\n       \
                 csaw_sim replay <artifact.json> [--buggy]\n       \
                 csaw_sim demo-bug [--seed S]"
            );
            2
        }
    };
    std::process::exit(code);
}
