//! Regenerates Fig. 24c: normalized checkpointing overhead.
fn main() {
    let secs = csaw_bench::exp_seconds(8.0);
    csaw_bench::exp_suricata::fig24c(secs).finish();
}
