//! Runs every table/figure regenerator in sequence (the paper's full
//! evaluation). Durations scale with CSAW_EXP_SECONDS.
fn main() {
    let secs = csaw_bench::exp_seconds(8.0);
    let reps = csaw_bench::exp_reps(3);
    csaw_bench::exp_redis::fig23a(secs).finish();
    csaw_bench::exp_redis::fig23b(secs).finish();
    csaw_bench::exp_redis::fig23c(secs).finish();
    csaw_bench::exp_suricata::fig24a(secs).finish();
    csaw_bench::exp_suricata::fig24b(secs).finish();
    csaw_bench::exp_suricata::fig24c(secs).finish();
    csaw_bench::exp_curl::fig25ab(reps).finish();
    csaw_bench::exp_redis::fig25c(1500).finish();
    csaw_bench::exp_curl::fig26a(reps, false).finish();
    csaw_bench::exp_redis::fig26b(1500).finish();
    csaw_bench::exp_redis::fig26c(secs).finish();
    csaw_bench::exp_loc::table2().finish();
}
