//! Hot-path batching benchmark: the before/after numbers for the
//! per-message-cost work, in four parts:
//!
//! 1. **Sharded aggregate throughput** (acceptance): the paper's Redis
//!    is single-threaded, so capacity scales by running one instance
//!    per shard (§10.1). We measure one instance's q/s (one thread on
//!    one `Mutex<Store>` — every `ServerApp`'s shape), then partition
//!    the same workload by djb2 key hash across N shard instances and
//!    measure each shard serving its partition at full rate. Aggregate
//!    capacity = sum of per-shard rates; acceptance wants ≥ 2× the
//!    single instance.
//! 2. **Lock sharding under contention** (the "shard the hot table
//!    lock" fix): T threads hammer one `Mutex<Store>` vs a
//!    [`mini_redis::ShardedStore`] striped by key hash, with per-op
//!    tail latencies (fig. 25c/26b-style p50/p99/p999) showing what
//!    the single hot lock does to the tail.
//! 3. **Trace saturation** (acceptance): worker threads record events
//!    into one enabled tracer as fast as they can — the pure hot path
//!    (thread-local staging buffer, bulk flush every 128 events).
//!    Acceptance wants < 100 ns/event at saturation. The metric is
//!    wall time of the whole run over total events, so it is the
//!    serialized per-event CPU cost on a single-core box and the
//!    aggregate cost under real parallelism.
//! 4. **send vs send_batch**: per-message cost of `Network::send`
//!    against `Network::send_batch` on the direct fast path.
//!
//! Writes `results/batching.json`.
//!
//! Environment knobs:
//! * `CSAW_BATCH_SECS` — seconds per throughput run (default 1.5);
//! * `CSAW_BATCH_THREADS` — contention worker threads (default 4);
//! * `CSAW_BATCH_SHARDS` — shard instances for the aggregate
//!   measurement (default 4);
//! * `CSAW_BATCH_EVENTS` — total events in the trace bench (default
//!   4,000,000);
//! * `CSAW_PERF_CHECK` — path to a baseline `batching.json`: re-check
//!   the acceptance gates and fail (exit 1) on any metric that
//!   *regressed* more than 25% against the baseline (improvements
//!   always pass).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_bench::report::Report;
use csaw_kv::Update;
use csaw_runtime::cell::JunctionId;
use csaw_runtime::trace::{Metrics, TraceKind, Tracer};
use csaw_runtime::transport::{DeliverBatchFn, DeliverFn, Network};
use csaw_runtime::Clock;
use mini_redis::hash::shard_of;
use mini_redis::workload::{Workload, WorkloadSpec};
use mini_redis::{Command, ShardedStore, Store};
use parking_lot::Mutex;

fn workload() -> Workload {
    Workload::new(WorkloadSpec {
        keyspace: 4000,
        read_ratio: 0.7,
        value_size: 128,
        ..Default::default()
    })
}

/// Pre-load the 4000-key keyspace so GETs hit.
fn preload(set: impl Fn(&str, Vec<u8>)) {
    for i in 0..4000 {
        set(&format!("key:{i}"), vec![0xAB; 128]);
    }
}

// ---------------------------------------------------------------------
// 1. single instance vs sharded aggregate (deployment model)
// ---------------------------------------------------------------------

/// One single-threaded instance: q/s of one thread driving the mixed
/// workload through a `Mutex<Store>` (lock cost included — this is the
/// shape `ServerApp` serves requests in).
fn single_instance_qps(secs: f64) -> f64 {
    let store = Mutex::new(Store::new());
    preload(|k, v| store.lock().set(k, v));
    let mut wl = workload();
    let mut n = 0u64;
    let start = Instant::now();
    let total = Duration::from_secs_f64(secs);
    while start.elapsed() < total {
        for _ in 0..64 {
            let _ = wl.next().execute(&mut store.lock());
            n += 1;
        }
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// Sharded deployment: partition a pre-generated command stream by
/// djb2 key hash across `n` instances, then measure each instance
/// serving its partition at full rate (each shard is an independent
/// single-threaded server; on separate machines they run
/// concurrently, so capacity is the sum of rates).
fn sharded_aggregate_qps(n: usize, secs: f64) -> f64 {
    let mut wl = workload();
    let mut partitions: Vec<Vec<Command>> = (0..n).map(|_| Vec::new()).collect();
    for _ in 0..200_000 {
        let cmd = wl.next();
        let shard = cmd.key().map_or(0, |k| shard_of(k, n));
        partitions[shard].push(cmd);
    }
    let per_shard_secs = secs / n as f64;
    let mut aggregate = 0.0;
    for part in partitions {
        let store = Mutex::new(Store::new());
        preload(|k, v| store.lock().set(k, v));
        let mut served = 0u64;
        let start = Instant::now();
        let total = Duration::from_secs_f64(per_shard_secs);
        'outer: while start.elapsed() < total {
            for cmd in &part {
                let _ = cmd.execute(&mut store.lock());
                served += 1;
                if served.is_multiple_of(4096) && start.elapsed() >= total {
                    break 'outer;
                }
            }
        }
        aggregate += served as f64 / start.elapsed().as_secs_f64();
    }
    aggregate
}

// ---------------------------------------------------------------------
// 2. lock contention: one hot mutex vs striped locks
// ---------------------------------------------------------------------

/// Run `threads` workers against `exec` for `secs`; returns aggregate
/// queries/s.
fn contended_qps<E>(threads: usize, secs: f64, exec: E) -> f64
where
    E: Fn(&Command) + Send + Sync,
{
    let exec = &exec;
    let stop = &AtomicBool::new(false);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut wl = workload();
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            exec(&wl.next());
                            n += 1;
                        }
                    }
                    n
                })
            })
            .collect();
        let start = Instant::now();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        total as f64 / start.elapsed().as_secs_f64()
    })
}

/// Latency-sampling pass: every worker times every op; returns merged
/// microsecond percentiles (p50, p99, p999).
fn latency_tails<E>(threads: usize, secs: f64, exec: E) -> (f64, f64, f64)
where
    E: Fn(&Command) + Send + Sync,
{
    let exec = &exec;
    let stop = &AtomicBool::new(false);
    let mut all: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut wl = workload();
                    let mut samples = Vec::with_capacity(1 << 16);
                    while !stop.load(Ordering::Relaxed) {
                        let cmd = wl.next();
                        let t = Instant::now();
                        exec(&cmd);
                        samples.push(t.elapsed().as_nanos() as u64);
                    }
                    samples
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    all.sort_unstable();
    let pct = |p: f64| -> f64 {
        if all.is_empty() {
            return 0.0;
        }
        let idx = ((all.len() as f64 * p) as usize).min(all.len() - 1);
        all[idx] as f64 / 1000.0
    };
    (pct(0.50), pct(0.99), pct(0.999))
}

// ---------------------------------------------------------------------
// 3. trace hot path at saturation
// ---------------------------------------------------------------------

/// `threads` workers split `total_events` recordings into one enabled
/// tracer with pre-interned identity strings (the transport hot-site
/// shape). Returns wall ns/event over the whole run, measured in
/// steady state: a full warm-up pass grows the ring shards and faults
/// their memory in, a drain empties them (capacity is retained), and
/// the timed pass re-fills them — so the number is the recording cost,
/// not allocator ramp-up or ring eviction.
fn trace_saturation(threads: usize, total_events: usize) -> f64 {
    let tracer = Tracer::with_capacity(1 << 20);
    tracer.set_enabled(true);
    let tracer = &tracer;
    let per_thread = total_events / threads;
    let record_all = |timed: bool| -> f64 {
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    let inst: Arc<str> = Arc::from("Prim");
                    let junc: Arc<str> = Arc::from("checkpoint");
                    for i in 0..per_thread {
                        tracer.record_ids(&inst, &junc, i as u64, TraceKind::Sched);
                    }
                });
            }
        });
        if timed {
            start.elapsed().as_nanos() as f64 / (per_thread * threads) as f64
        } else {
            0.0
        }
    };
    // Warm-up: fill the ring past capacity so the timed passes run in
    // eviction steady state — each flush hands one chunk to the ring and
    // evicts one, so chunk allocations recycle through the allocator and
    // no fresh pages are faulted in while the clock is running. That is
    // the regime a saturated tracer actually operates in.
    record_all(false);
    // Best of three, no drain in between (a drain would empty the ring
    // and put the next rep back into growth mode). On a shared box the
    // minimum is the estimate least polluted by scheduling noise.
    (0..3)
        .map(|_| record_all(true))
        .fold(f64::INFINITY, f64::min)
}

// ---------------------------------------------------------------------
// 4. send vs send_batch
// ---------------------------------------------------------------------

/// A network whose delivery is a no-op — isolates the transport send
/// path (route lookup, stamping, fault dice, dedup, trace hooks).
fn noop_network() -> Network {
    let one: DeliverFn = Arc::new(|_to, _u| {});
    let batch: DeliverBatchFn = Arc::new(|_to, _us| {});
    Network::with_telemetry_batched(
        one,
        Some(batch),
        Arc::new(Tracer::new()),
        &Metrics::new(),
        Clock::wall(),
    )
}

/// Per-message cost of `send` vs `send_batch` (batch of 256) over
/// `total` messages each. Update construction is inside both timed
/// loops, so the difference is pure transport bookkeeping.
fn send_micro(total: usize) -> (f64, f64) {
    let net = noop_network();
    let to = JunctionId::new("B", "j");

    let start = Instant::now();
    for _ in 0..total {
        net.send("A", &to, Update::assert("Work", "A::j")).unwrap();
    }
    let one_ns = start.elapsed().as_nanos() as f64 / total as f64;

    let batch = 256;
    let rounds = total / batch;
    let start = Instant::now();
    for _ in 0..rounds {
        let updates: Vec<Update> =
            (0..batch).map(|_| Update::assert("Work", "A::j")).collect();
        net.send_batch("A", &to, updates).unwrap();
    }
    let batch_ns = start.elapsed().as_nanos() as f64 / (rounds * batch) as f64;
    (one_ns, batch_ns)
}

fn main() {
    let secs = std::env::var("CSAW_BATCH_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5f64);
    let threads = std::env::var("CSAW_BATCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize)
        .max(1);
    let shards = std::env::var("CSAW_BATCH_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize)
        .max(2);
    let total_events = std::env::var("CSAW_BATCH_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000_000usize);
    let stripes = 16;

    // -- 1. single instance vs sharded aggregate -----------------------
    let _ = single_instance_qps(secs / 4.0); // warm-up
    let single_qps = single_instance_qps(secs);
    let aggregate_qps = sharded_aggregate_qps(shards, secs);
    let ratio = aggregate_qps / single_qps;
    println!("redis instance capacity (single-threaded servers):");
    println!("  one instance:              {single_qps:>12.0} q/s");
    println!("  {shards}-shard aggregate:         {aggregate_qps:>12.0} q/s  ({ratio:.2}x)");

    // -- 2. hot-lock contention ----------------------------------------
    let single = Arc::new(Mutex::new(Store::new()));
    preload(|k, v| single.lock().set(k, v));
    let _ = contended_qps(threads, secs / 4.0, |c| {
        let _ = c.execute(&mut single.lock());
    });
    let contended_single = contended_qps(threads, secs, |c| {
        let _ = c.execute(&mut single.lock());
    });
    let sharded = Arc::new(ShardedStore::new(stripes));
    preload(|k, v| sharded.set(k, v));
    let _ = contended_qps(threads, secs / 4.0, |c| {
        let _ = sharded.execute(c);
    });
    let contended_sharded = contended_qps(threads, secs, |c| {
        let _ = sharded.execute(c);
    });
    let lock_ratio = contended_sharded / contended_single;
    println!("hot-lock contention ({threads} threads, one keyspace):");
    println!("  one Mutex<Store>:          {contended_single:>12.0} q/s");
    println!("  ShardedStore ({stripes} stripes): {contended_sharded:>12.0} q/s  ({lock_ratio:.2}x)");

    let (s_p50, s_p99, s_p999) = latency_tails(threads, secs / 2.0, |c| {
        let _ = c.execute(&mut single.lock());
    });
    let (h_p50, h_p99, h_p999) = latency_tails(threads, secs / 2.0, |c| {
        let _ = sharded.execute(c);
    });
    println!("  tails (us)  single  p50 {s_p50:.1}  p99 {s_p99:.1}  p999 {s_p999:.1}");
    println!("  tails (us)  sharded p50 {h_p50:.1}  p99 {h_p99:.1}  p999 {h_p999:.1}");

    // -- 3. trace hot path at saturation -------------------------------
    let ns_multi = trace_saturation(threads, total_events);
    let ns_single = trace_saturation(1, total_events);
    println!("trace hot path:");
    println!(
        "  {total_events} events over {threads} threads: {ns_multi:.1} ns/event (1 thread: {ns_single:.1})"
    );

    // -- 4. send vs send_batch -----------------------------------------
    let _ = send_micro(50_000); // warm-up
    let (send_ns, batch_ns) = send_micro(400_000);
    println!("transport per-message cost (no-op delivery):");
    println!(
        "  send {send_ns:.0} ns/msg, send_batch(256) {batch_ns:.0} ns/msg ({:.2}x)",
        send_ns / batch_ns
    );

    let mut r = Report::new("batching", "Hot-path batching & lock sharding");
    r.note("threads", threads as f64);
    r.note("secs_per_run", secs);
    r.note("redis_single_qps", single_qps);
    r.note("redis_shards", shards as f64);
    r.note("redis_sharded_aggregate_qps", aggregate_qps);
    r.note("sharded_over_single", ratio);
    r.note("contended_single_lock_qps", contended_single);
    r.note("contended_sharded_qps", contended_sharded);
    r.note("sharded_stripes", stripes as f64);
    r.note("contended_sharded_over_single", lock_ratio);
    r.note("single_p50_us", s_p50);
    r.note("single_p99_us", s_p99);
    r.note("single_p999_us", s_p999);
    r.note("sharded_p50_us", h_p50);
    r.note("sharded_p99_us", h_p99);
    r.note("sharded_p999_us", h_p999);
    r.note("trace_events", total_events as f64);
    r.note("trace_ns_per_event_saturated", ns_multi);
    r.note("trace_ns_per_event_single_thread", ns_single);
    r.note("send_ns_per_msg", send_ns);
    r.note("send_batch_ns_per_msg", batch_ns);
    r.note("send_batch_speedup", send_ns / batch_ns);
    r.remark(
        "acceptance: sharded aggregate >= 2x the single-instance baseline; \
         trace hot path < 100 ns/event at saturation",
    );
    r.finish();

    // -- acceptance gates ----------------------------------------------
    let mut failed = false;
    let mut gate = |name: &str, ok: bool, detail: String| {
        println!("  [{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            failed = true;
        }
    };
    println!("acceptance gates:");
    gate("sharded aggregate >= 2x single", ratio >= 2.0, format!("{ratio:.2}x"));
    gate("trace < 100 ns/event", ns_multi < 100.0, format!("{ns_multi:.1} ns/event"));

    // -- baseline regression check (perf-smoke) ------------------------
    if let Ok(base_path) = std::env::var("CSAW_PERF_CHECK") {
        let base = csaw_bench::report::read_notes(&base_path);
        let find = |k: &str| base.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        // (metric, current, higher_is_better)
        let checks = [
            ("redis_single_qps", single_qps, true),
            ("redis_sharded_aggregate_qps", aggregate_qps, true),
            ("sharded_over_single", ratio, true),
            ("trace_ns_per_event_saturated", ns_multi, false),
            ("send_batch_ns_per_msg", batch_ns, false),
        ];
        println!("baseline regression check ({base_path}, 25% tolerance):");
        for (name, cur, higher_better) in checks {
            let Some(b) = find(name) else {
                gate(name, false, "missing from baseline".into());
                continue;
            };
            // Regressions beyond 25% fail; improvements always pass.
            let ok = if higher_better { cur >= b * 0.75 } else { cur <= b * 1.25 };
            gate(name, ok, format!("{cur:.1} vs baseline {b:.1}"));
        }
    }
    if failed {
        std::process::exit(1);
    }
}
