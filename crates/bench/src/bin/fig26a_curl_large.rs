//! Regenerates Fig. 26a: cURL large-file download time.
fn main() {
    let reps = csaw_bench::exp_reps(3);
    let full = std::env::args().any(|a| a == "--full");
    csaw_bench::exp_curl::fig26a(reps, full).finish();
}
