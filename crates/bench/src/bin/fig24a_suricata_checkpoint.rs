//! Regenerates Fig. 24a: response of Suricata packet rate to checkpoints.
fn main() {
    let secs = csaw_bench::exp_seconds(10.0);
    csaw_bench::exp_suricata::fig24a(secs).finish();
}
