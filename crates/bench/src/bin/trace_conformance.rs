//! Trace-conformance runner: drives every catalogue architecture with
//! tracing enabled and replays the recorded traces through the
//! `csaw-semantics` conformance checker. Exits non-zero if any trace is
//! rejected; failing traces (and a metrics snapshot note) are dumped
//! under `results/` for offline inspection.
//!
//! Environment knobs:
//! * `CSAW_CHAOS_SEED` — master seed for the fail-over soaks (default 42).

use csaw_bench::conformance_runs::conformance_all;

fn main() {
    let seed = std::env::var("CSAW_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let runs = conformance_all(seed);
    let mut all_ok = true;
    for run in &runs {
        println!("{}", run.line());
        if !run.summary.ok {
            all_ok = false;
            println!("{}", run.summary.detail);
            let _ = std::fs::create_dir_all("results");
            let path = format!("results/trace_{}.jsonl", run.arch);
            if std::fs::write(&path, &run.jsonl).is_ok() {
                println!("trace dumped to {path}");
            }
        }
    }
    println!(
        "{}/{} architectures conform (seed {seed})",
        runs.iter().filter(|r| r.summary.ok).count(),
        runs.len()
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
