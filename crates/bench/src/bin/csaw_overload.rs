//! Open-loop overload storm bench: offered load (0.5×/1×/2×/4× of a
//! route's capacity) vs in-deadline goodput, with the transport's
//! overload controls (bounded outbox, deadline shedding) on vs off.
//! Reports to `results/overload.json`.
//!
//! Exits non-zero if, at 2× offered, the with-shedding configuration
//! holds less than 80% of saturation throughput, if the no-control
//! baseline fails to collapse below 50% (the comparison would be
//! vacuous), or if the controls never engaged at all.
//!
//! `--smoke` (or `CSAW_OVERLOAD_SMOKE=1`) compresses the per-point
//! holds for CI.

use csaw_bench::overload::{knobs, run_storm, smoke_requested};
use csaw_bench::report::Report;

fn main() {
    let smoke = smoke_requested() || std::env::args().any(|a| a == "--smoke");
    let k = knobs(smoke);
    let out = run_storm(&k);

    let mut report = Report::new(
        "overload",
        "open-loop storm: offered load vs in-deadline goodput, shedding on vs off",
    );
    report.remark(if smoke { "smoke run (compressed holds)" } else { "full run" });
    report.remark(format!(
        "one saturable route, {} ms budget, outbox bound {}, open-loop pacing at \
         0.5x/1x/2x/4x of ~{:.0} units/s capacity; goodput counts only in-budget arrivals",
        k.budget.as_millis(),
        k.outbox_bound,
        k.unit_rate,
    ));

    for p in &out.with_shedding {
        println!("{}", p.line("shed on "));
    }
    for p in &out.without_shedding {
        println!("{}", p.line("shed off"));
    }
    println!(
        "saturation {:.1}/s; 2x offered: shedding holds {:.1}/s ({:.0}%), \
         no-control collapses to {:.1}/s ({:.0}%)",
        out.saturation,
        out.at(true, 2.0).goodput,
        100.0 * out.at(true, 2.0).goodput / out.saturation.max(1e-9),
        out.at(false, 2.0).goodput,
        100.0 * out.at(false, 2.0).goodput / out.saturation.max(1e-9),
    );

    report.series(
        "shedding on",
        "offered (x saturation)",
        "goodput (units/s in budget)",
        out.with_shedding.iter().map(|p| (p.mult, p.goodput)).collect(),
    );
    report.series(
        "shedding off",
        "offered (x saturation)",
        "goodput (units/s in budget)",
        out.without_shedding.iter().map(|p| (p.mult, p.goodput)).collect(),
    );
    report.series(
        "shedding on p99",
        "offered (x saturation)",
        "delivery p99 (ms)",
        out.with_shedding.iter().map(|p| (p.mult, p.p99_ms)).collect(),
    );
    report.series(
        "shedding off p99",
        "offered (x saturation)",
        "delivery p99 (ms)",
        out.without_shedding.iter().map(|p| (p.mult, p.p99_ms)).collect(),
    );
    out.note_into(&mut report);

    for f in &out.failures {
        eprintln!("FAIL: {f}");
    }
    report.finish();
    if !out.ok() {
        std::process::exit(1);
    }
}
