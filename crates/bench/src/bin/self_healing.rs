//! Self-healing MTTR bench: inject one fault per failure class (crash,
//! partition, slow-path crash-restore) under sustained traffic, let the
//! supervisor repair it, and report the measured MTTR split
//! (detect/repair/total) to `results/self_healing.json`.
//!
//! Exits non-zero if any scenario loses an acknowledged write,
//! permanently refuses a request, fails to serve traffic after the
//! repair, lets a fenced zombie's stale ack land, or fails cross-epoch
//! conformance; the offending trace is dumped to
//! `results/self_healing_offending_trace_<name>.jsonl` for triage.
//!
//! `--smoke` (or `CSAW_SELF_HEALING_SMOKE=1`) compresses the traffic
//! windows for CI.

use csaw_bench::report::Report;
use csaw_bench::self_healing::{knobs, run_all, smoke_requested};

fn main() {
    let smoke = smoke_requested() || std::env::args().any(|a| a == "--smoke");
    let outcomes = run_all(knobs(smoke));

    let mut report = Report::new(
        "self_healing",
        "self-healing supervisor: MTTR per failure class under traffic",
    );
    report.remark(if smoke {
        "smoke run (compressed traffic windows)"
    } else {
        "full run"
    });
    report.remark(
        "mttr_ms measures fault injection -> repair verified; detect_ms is \
         injection -> anomaly confirmed+planned (includes the detector's \
         silence window), repair_ms is plan -> verified convergence",
    );

    let mut failed = false;
    for o in &outcomes {
        println!("{}", o.line());
        o.note_into(&mut report);
        if !o.ok() {
            failed = true;
            let path = format!("results/self_healing_offending_trace_{}.jsonl", o.name);
            if std::fs::create_dir_all("results")
                .and_then(|()| std::fs::write(&path, &o.trace_jsonl))
                .is_ok()
            {
                eprintln!("FAIL {}: trace dumped to {path}", o.name);
            } else {
                eprintln!("FAIL {}: could not dump trace", o.name);
            }
            if !o.repair_ok {
                eprintln!("  repair never verified (class={}, action={})", o.class, o.action);
            }
            if o.lost_acked_sets > 0 {
                eprintln!("  {} acknowledged SETs lost", o.lost_acked_sets);
            }
            if o.refused > 0 {
                eprintln!("  {} requests permanently refused", o.refused);
            }
            if o.stale_applied {
                eprintln!("  a fenced zombie's stale ack landed (split-brain)");
            }
            if !o.conformance.ok {
                eprintln!("  cross-epoch violations:\n{}", o.conformance.detail);
            }
        }
    }

    report.finish();
    if failed {
        std::process::exit(1);
    }
}
