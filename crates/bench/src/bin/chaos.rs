//! Chaos soak runner: drives the fail-over architectures under seeded
//! randomized fault schedules and checks the delivery/convergence
//! invariants. Exits non-zero if any invariant is violated, so CI can
//! run it nightly at a fixed seed.
//!
//! Environment knobs:
//! * `CSAW_SEED` (or legacy `CSAW_CHAOS_SEED`) — master seed
//!   (default 42), the same knob the sim harness and property corpora
//!   honor;
//! * `CSAW_CHAOS_REQUESTS` — requests per soak (default 120);
//! * `CSAW_CHAOS_UNRELIABLE=1` — disable retry/dedup (the failure
//!   demonstration; inverts the exit-code expectation);
//! * `CSAW_CHAOS_CONFORMANCE=1` — record causal traces and replay them
//!   through the semantics conformance checker as a fourth invariant;
//!   on violation the trace is dumped to `results/trace_<arch>.jsonl`.

use csaw_bench::chaos::{self, ChaosSchedule};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = csaw_runtime::env_seed(42);
    let requests = env_u64("CSAW_CHAOS_REQUESTS", 120) as usize;
    let unreliable = std::env::var("CSAW_CHAOS_UNRELIABLE").is_ok_and(|v| v == "1");
    let conformance = std::env::var("CSAW_CHAOS_CONFORMANCE").is_ok_and(|v| v == "1");

    let mut schedule = ChaosSchedule::acceptance(seed)
        .with_requests(requests)
        .with_conformance(conformance && !unreliable);
    if unreliable {
        schedule = schedule.without_reliability();
    }

    let outcomes = [
        chaos::soak_watched(&schedule),
        chaos::soak_failover(&schedule),
        chaos::soak_checkpoint(&schedule),
    ];
    let mut all_ok = true;
    for o in &outcomes {
        o.report().finish();
        if let Some(c) = &o.conformance {
            println!(
                "{}: conformance {} ({} events, {} violations)",
                o.arch,
                if c.ok { "ok" } else { "VIOLATED" },
                c.events,
                c.violations
            );
            if !c.ok {
                println!("{}", c.detail);
                if let Some(jsonl) = &o.trace_jsonl {
                    let path = format!("results/trace_{}.jsonl", o.arch);
                    let _ = std::fs::create_dir_all("results");
                    if std::fs::write(&path, jsonl).is_ok() {
                        println!("trace dumped to {path}");
                    }
                }
            }
        }
        all_ok &= o.invariants_hold();
    }

    if unreliable {
        // The demonstration run: the *absence* of the reliability layer
        // must be observable, otherwise the harness proves nothing.
        let demonstrated = outcomes.iter().any(|o| !o.invariants_hold());
        println!(
            "unreliable run: invariant violation {}",
            if demonstrated { "demonstrated" } else { "NOT demonstrated" }
        );
        if !demonstrated {
            eprintln!("reproduce with CSAW_SEED={seed} CSAW_CHAOS_UNRELIABLE=1");
        }
        std::process::exit(if demonstrated { 0 } else { 1 });
    }
    if !all_ok {
        eprintln!("reproduce with CSAW_SEED={seed}");
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
