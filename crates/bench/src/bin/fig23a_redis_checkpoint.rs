//! Regenerates Fig. 23a: response of Redis query rate to checkpoints.
fn main() {
    let secs = csaw_bench::exp_seconds(10.0);
    csaw_bench::exp_redis::fig23a(secs).finish();
}
