//! Regenerates Fig. 24b: cumulative packets sharded by 5-tuple.
fn main() {
    let secs = csaw_bench::exp_seconds(8.0);
    csaw_bench::exp_suricata::fig24b(secs).finish();
}
