//! Runs the DESIGN.md ablations: transports, serializer depth cap,
//! fail-over designs, parallel-vs-sequential fan-out.
fn main() {
    csaw_bench::ablations::transports(2000).finish();
    csaw_bench::ablations::serializer_depth().finish();
    csaw_bench::ablations::failover_designs(30).finish();
    csaw_bench::ablations::fanout(6, 30, 10).finish();
}
