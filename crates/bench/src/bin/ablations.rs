//! Runs the DESIGN.md ablations: transports, serializer depth cap,
//! fail-over designs, parallel-vs-sequential fan-out, and fault
//! tolerance (drop-rate sweep with the reliability layer on vs off).
//! With arguments, runs only the named ablations (e.g.
//! `ablations fault_tolerance`).
fn main() {
    let only: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |name: &str| only.is_empty() || only.iter().any(|a| a == name);
    if wanted("transports") {
        csaw_bench::ablations::transports(2000).finish();
    }
    if wanted("serializer_depth") {
        csaw_bench::ablations::serializer_depth().finish();
    }
    if wanted("failover_designs") {
        csaw_bench::ablations::failover_designs(30).finish();
    }
    if wanted("fanout") {
        csaw_bench::ablations::fanout(6, 30, 10).finish();
    }
    if wanted("fault_tolerance") {
        csaw_bench::ablations::fault_tolerance(16).finish();
    }
}
