//! Regenerates Table 2: the effort (LoC) study.
fn main() {
    csaw_bench::exp_loc::table2().finish();
}
