//! Regenerates Fig. 26b: Redis SET latency CDFs.
fn main() {
    let ops = csaw_bench::exp_reps(2000);
    csaw_bench::exp_redis::fig26b(ops).finish();
}
