//! Regenerates Fig. 25c: Redis GET latency CDFs.
fn main() {
    let ops = csaw_bench::exp_reps(2000);
    csaw_bench::exp_redis::fig25c(ops).finish();
}
