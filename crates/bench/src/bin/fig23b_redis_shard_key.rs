//! Regenerates Fig. 23b: cumulative requests sharded by key.
fn main() {
    let secs = csaw_bench::exp_seconds(8.0);
    csaw_bench::exp_redis::fig23b(secs).finish();
}
