//! Regenerates Fig. 23c: effect of caching on query rate.
fn main() {
    let secs = csaw_bench::exp_seconds(8.0);
    csaw_bench::exp_redis::fig23c(secs).finish();
}
