//! Diurnal autoscale bench: drive the metrics gauges through a
//! six-stage day (low → peak → read-heavy → shard crash → write-heavy
//! → night) under sustained SET/GET traffic and let the metrics-driven
//! autoscaler plan and execute the matching reconfigurations — split
//! 2→4, cache-tier insertion, cache-tier removal, merge 4→2 — with a
//! supervisor-restarted shard crash in between. Reports to
//! `results/autoscale.json`.
//!
//! Exits non-zero if fewer than four transitions land, any plan
//! escapes the `check_plan` validator, any phase exceeds the quiesce
//! bound, an acknowledged write is lost, a request is permanently
//! refused, the crash repair never verifies, or the recorded trace
//! fails cross-epoch conformance; the offending trace is dumped to
//! `results/autoscale_offending_trace.jsonl` for triage.
//!
//! `--smoke` (or `CSAW_AUTOSCALE_SMOKE=1`) compresses the traffic
//! holds for CI.

use csaw_bench::autoscale_runs::{knobs, run_diurnal, smoke_requested};
use csaw_bench::report::Report;

fn main() {
    let smoke = smoke_requested() || std::env::args().any(|a| a == "--smoke");
    let out = run_diurnal(knobs(smoke));

    let mut report = Report::new(
        "autoscale",
        "metrics-driven autoscaler: planner-driven reshard over a diurnal day",
    );
    report.remark(if smoke {
        "smoke run (compressed traffic holds)"
    } else {
        "full run"
    });
    report.remark(
        "six-stage diurnal model; every transition is planned under \
         max_concurrent_quiesce=1, independently validated by check_plan, \
         and executed as phased reconfigurations under live traffic",
    );
    for v in &out.validations {
        report.remark(format!("plan: {v}"));
    }

    for s in &out.stages {
        println!("{}", s.line());
    }
    println!(
        "day: {} transitions, max phase quiesce {}/{}, {} plans validated, \
         cache {}h/{}m, {} acked SETs ({} lost), {} refused, conformance {}",
        out.transitions,
        out.max_phase_quiesce,
        out.quiesce_bound,
        out.plans_validated,
        out.cache_hits,
        out.cache_misses,
        out.acked_sets,
        out.lost_acked_sets,
        out.refused,
        if out.conformance.ok { "ok" } else { "VIOLATED" },
    );
    out.note_into(&mut report);

    if !out.ok() {
        let path = "results/autoscale_offending_trace.jsonl";
        if std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(path, &out.trace_jsonl))
            .is_ok()
        {
            eprintln!("FAIL: trace dumped to {path}");
        }
        for f in &out.failures {
            eprintln!("  {f}");
        }
    }

    report.finish();
    if !out.ok() {
        std::process::exit(1);
    }
}
