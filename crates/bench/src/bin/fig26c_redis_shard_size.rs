//! Regenerates Fig. 26c: cumulative requests sharded by object size.
fn main() {
    let secs = csaw_bench::exp_seconds(8.0);
    csaw_bench::exp_redis::fig26c(secs).finish();
}
