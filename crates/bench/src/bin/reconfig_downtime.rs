//! Live-reconfiguration downtime bench: four hot-swap transitions of
//! the mini-redis architectures under sustained traffic, reporting the
//! pause window, dropped/retried requests and migrated state to
//! `results/reconfig_downtime.json`.
//!
//! Exits non-zero if any transition loses an acknowledged write,
//! permanently refuses a request, fails cross-epoch conformance, or
//! pauses the unaffected-instance path beyond a generous CI bound; the
//! offending trace is dumped to
//! `results/reconfig_offending_trace_<name>.jsonl` for triage.
//!
//! `--smoke` (or `CSAW_RECONFIG_SMOKE=1`) compresses the traffic
//! windows for CI.

use std::time::Duration;

use csaw_bench::reconfig_runs::{knobs, run_all, smoke_requested};
use csaw_bench::report::Report;

/// The bystander path typically shows sub-millisecond gaps; the bound
/// only exists to catch a reintroduced global pause, so it is set far
/// above scheduler noise on loaded CI machines.
const BYSTANDER_BOUND: Duration = Duration::from_millis(250);

fn main() {
    let smoke = smoke_requested() || std::env::args().any(|a| a == "--smoke");
    let outcomes = run_all(knobs(smoke));

    let mut report = Report::new(
        "reconfig_downtime",
        "live reconfiguration under traffic: pause, retries, migrated state",
    );
    report.remark(if smoke {
        "smoke run (compressed traffic windows)"
    } else {
        "full run"
    });
    report.remark(
        "bystander_gap_us is the probe's worst read gap on a never-quiesced \
         instance during the transition; typical values are sub-millisecond \
         and the failure bound (250ms) only guards against a global pause",
    );

    let mut failed = false;
    for o in &outcomes {
        println!("{}", o.line());
        o.note_into(&mut report);
        if !o.ok() || !o.bystander_pause_small(BYSTANDER_BOUND) {
            failed = true;
            let path = format!("results/reconfig_offending_trace_{}.jsonl", o.name);
            if std::fs::create_dir_all("results")
                .and_then(|()| std::fs::write(&path, &o.trace_jsonl))
                .is_ok()
            {
                eprintln!("FAIL {}: trace dumped to {path}", o.name);
            } else {
                eprintln!("FAIL {}: could not dump trace", o.name);
            }
            if !o.conformance.ok {
                eprintln!("  cross-epoch violations:\n{}", o.conformance.detail);
            }
            if o.lost_acked_sets > 0 {
                eprintln!("  {} acknowledged SETs lost", o.lost_acked_sets);
            }
            if o.refused > 0 {
                eprintln!("  {} requests permanently refused", o.refused);
            }
            if !o.bystander_pause_small(BYSTANDER_BOUND) {
                eprintln!(
                    "  bystander {} saw a {}us gap (> {}ms bound)",
                    o.bystander,
                    o.bystander_gap_us,
                    BYSTANDER_BOUND.as_millis()
                );
            }
        }
    }

    report.finish();
    if failed {
        std::process::exit(1);
    }
}
