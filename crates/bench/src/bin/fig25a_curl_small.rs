//! Regenerates Figs. 25a/25b: cURL small-file download time & overhead.
fn main() {
    let reps = csaw_bench::exp_reps(5);
    csaw_bench::exp_curl::fig25ab(reps).finish();
}
