//! Diurnal autoscale bench: close the full loop — metrics gauges →
//! [`csaw_runtime::Runtime::autoscale`] → planned, phased
//! reconfigurations — under sustained traffic over a scripted diurnal
//! load model, and prove the invariants held across every transition.
//!
//! The day has six stages. Each stage sets the `offered_rate` and
//! `read_fraction` gauges the autoscaler samples, then keeps real
//! SET/GET traffic flowing while the monitor thread reacts:
//!
//! 1. `morning_low` — in-band load; the scaler must hold at 2 shards.
//! 2. `midday_peak` — per-shard rate crosses the split watermark;
//!    planner-driven **split 2→4** (make-before-break: new shards come
//!    up before the front re-routes and the keyspace re-homes).
//! 3. `read_heavy` — read fraction crosses the cache watermark;
//!    **cache-tier insertion** as a single-quiesce front-end swap
//!    ([`csaw_arch::sharding::sharding_cached`]).
//! 4. `shard_crash` — fail-over interplay: `Bck1` crashes mid-stage
//!    and the supervisor restarts it while the autoscaler (steady
//!    gauges) correctly stays quiet.
//! 5. `write_heavy` — read fraction falls below the low watermark;
//!    **cache-tier removal**.
//! 6. `night_low` — per-shard rate falls below the merge watermark;
//!    planner-driven **merge 4→2** with true instance removal, the
//!    keyspace re-homed before the spare shards retire.
//!
//! Every plan is independently validated by
//! [`csaw_semantics::check_plan`] before execution (injected through
//! [`csaw_runtime::AutoscaleDriver::validate`] — the runtime crate does
//! not depend on the semantics crate). Oracles: all four transitions
//! land, zero lost acknowledged writes, zero permanently refused
//! requests, every phase quiesces at most `max_concurrent_quiesce`
//! instances, the crash repair verifies, and the recorded trace passes
//! cross-epoch conformance against the boot program plus every
//! installed phase target in cut order.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_arch::sharding::{sharding, sharding_cached, CachedShardingSpec, ShardingSpec};
use csaw_core::expr::Arg;
use csaw_core::names::JRef;
use csaw_core::plan::{Plan, PlanConstraints, PlanPhase};
use csaw_core::program::{CompiledProgram, LoadConfig};
use csaw_core::value::Value;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{
    AutoscaleConfig, AutoscaleDriver, AutoscaleGoal, AutoscaleStats, FailureClass, ReconfigSpec,
    RepairAction, RepairPolicy, Runtime, RuntimeConfig, SupervisorConfig,
};
use mini_redis::apps::{
    CachedShardFrontApp, ReplyQueue, RequestQueue, ServerApp, ShardFrontApp, ShardMode,
};
use mini_redis::hash::shard_of;
use mini_redis::{Command, Store};
use parking_lot::Mutex;

use crate::conformance_runs::ConformanceSummary;
use crate::report::Report;
use crate::self_healing::check_repair_chain;

/// The front-end `wait` deadline.
const FRONT_TIMEOUT: Duration = Duration::from_millis(400);
/// How long one request may retry (through transition windows) before
/// it counts as refused.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);
/// Smallest / largest shard count the scaler may reach.
const MIN_SHARDS: usize = 2;
const MAX_SHARDS: usize = 4;
/// Cache capacity of the inserted tier.
const CACHE_CAPACITY: usize = 64;

/// Timing knobs. Smoke mode (CI) compresses the per-stage traffic
/// holds; settle windows stay generous because they are upper bounds,
/// not sleeps.
#[derive(Clone, Copy, Debug)]
pub struct DiurnalKnobs {
    /// Driver pacing between requests.
    pub pace: Duration,
    /// Traffic hold per stage after its condition is met.
    pub hold: Duration,
    /// Upper bound on gauge-set → transition-landed (or repair
    /// verified) per stage.
    pub settle: Duration,
    /// Autoscaler sampling period.
    pub poll: Duration,
    /// Autoscaler hold-fire window after each transition.
    pub cooldown: Duration,
    /// Consecutive samples a goal change must persist.
    pub confirm_polls: u32,
}

/// Knobs for full vs smoke runs.
pub fn knobs(smoke: bool) -> DiurnalKnobs {
    if smoke {
        DiurnalKnobs {
            pace: Duration::from_millis(1),
            hold: Duration::from_millis(120),
            settle: Duration::from_secs(10),
            poll: Duration::from_millis(20),
            cooldown: Duration::from_millis(80),
            confirm_polls: 2,
        }
    } else {
        DiurnalKnobs {
            pace: Duration::from_micros(300),
            hold: Duration::from_millis(400),
            settle: Duration::from_secs(10),
            poll: Duration::from_millis(30),
            cooldown: Duration::from_millis(150),
            confirm_polls: 2,
        }
    }
}

/// Whether `CSAW_AUTOSCALE_SMOKE` asks for the compressed run.
pub fn smoke_requested() -> bool {
    std::env::var("CSAW_AUTOSCALE_SMOKE").is_ok_and(|v| v != "0")
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

// ---------------------------------------------------------------------
// The driver: goals → programs, plan phases → specs, plans → verdicts
// ---------------------------------------------------------------------

/// [`AutoscaleDriver`] for the sharded KV architecture: `goal.shards`
/// back-ends (`sharding`) with an optional cache-fronted variant
/// (`sharding_cached`), phase specs that bind fresh shard apps over the
/// bench-owned stores and re-home the keyspace in the same phase that
/// cuts the routing over, and `check_plan` installed as the validator.
struct ShardDriver {
    requests: RequestQueue,
    replies: ReplyQueue,
    /// One store per potential shard, bench-owned so state survives
    /// instance removal and the lost-write oracle can see everything.
    stores: Vec<Arc<Mutex<Store>>>,
    constraints: PlanConstraints,
    /// Latest cache tier's hit/miss counters (refreshed on insertion).
    cache_hits: Mutex<Arc<std::sync::atomic::AtomicU64>>,
    cache_misses: Mutex<Arc<std::sync::atomic::AtomicU64>>,
    /// One record per plan judged by the validator.
    validations: Mutex<Vec<String>>,
}

impl ShardDriver {
    fn front_over(&self, goal: &AutoscaleGoal) -> Box<dyn csaw_runtime::InstanceApp> {
        if goal.cache {
            let mut front = CachedShardFrontApp::new(ShardMode::ByKey, goal.shards, CACHE_CAPACITY);
            front.requests = Arc::clone(&self.requests);
            front.replies = Arc::clone(&self.replies);
            *self.cache_hits.lock() = Arc::clone(&front.hits);
            *self.cache_misses.lock() = Arc::clone(&front.misses);
            Box::new(front)
        } else {
            let mut front = ShardFrontApp::new(ShardMode::ByKey, goal.shards);
            front.requests = Arc::clone(&self.requests);
            front.replies = Arc::clone(&self.replies);
            Box::new(front)
        }
    }
}

impl AutoscaleDriver for ShardDriver {
    fn program(&self, goal: &AutoscaleGoal) -> Result<CompiledProgram, String> {
        let base = ShardingSpec { n_backends: goal.shards, ..ShardingSpec::default() };
        let program = if goal.cache {
            sharding_cached(&CachedShardingSpec { base, ..CachedShardingSpec::default() })
        } else {
            sharding(&base)
        };
        csaw_core::compile(program, &LoadConfig::new()).map_err(|e| e.to_string())
    }

    fn phase_spec(&self, goal: &AutoscaleGoal, phase: &PlanPhase) -> ReconfigSpec {
        let mut rs = ReconfigSpec::default();
        for added in &phase.diff.added {
            let i: usize = added
                .strip_prefix("Bck")
                .and_then(|s| s.parse().ok())
                .expect("the autoscale architecture only adds Bck shards");
            rs.apps.push((
                added.clone(),
                Box::new(ServerApp::with_store(Arc::clone(&self.stores[i - 1]))),
            ));
            rs.start.push((
                added.clone(),
                vec![(
                    None,
                    vec![
                        Arg::Junction(JRef::qualified("Fnt", "junction")),
                        Arg::Value(Value::Duration(FRONT_TIMEOUT)),
                    ],
                )],
            ));
        }
        if phase.diff.changed.iter().any(|c| c.name == "Fnt") {
            rs.apps.push(("Fnt".to_string(), self.front_over(goal)));
            // Re-home the keyspace in the same phase that cuts the
            // routing over — the front is held, so no request races
            // the redistribution. For cache-only transitions the shard
            // count is unchanged and every entry stays put.
            let mig = self.stores.clone();
            let to_n = goal.shards;
            rs.migrate = Some(Box::new(move |ctx| {
                let (mut moved, mut bytes) = (0u64, 0u64);
                for idx in 0..mig.len() {
                    let entries = mig[idx].lock().drain_entries();
                    for (k, v) in entries {
                        let home = shard_of(&k, to_n);
                        if home != idx {
                            moved += 1;
                            bytes += v.len() as u64;
                        }
                        mig[home].lock().set(&k, v);
                    }
                }
                ctx.note_moved(moved, bytes);
                Ok(())
            }));
        }
        rs
    }

    fn validate(
        &self,
        from: &CompiledProgram,
        to: &CompiledProgram,
        plan: &Plan,
    ) -> Result<(), String> {
        let verdict = csaw_semantics::check_plan(from, to, plan, &self.constraints);
        self.validations.lock().push(format!(
            "{} phases under max_concurrent_quiesce={}: {}",
            plan.phases.len(),
            self.constraints.max_concurrent_quiesce,
            if verdict.is_valid() { "valid".to_string() } else { verdict.to_string() }
        ));
        if verdict.is_valid() {
            Ok(())
        } else {
            Err(verdict.to_string())
        }
    }
}

// ---------------------------------------------------------------------
// The diurnal script
// ---------------------------------------------------------------------

/// One stage of the diurnal model.
struct Stage {
    name: &'static str,
    /// Gauge values the stage presents to the autoscaler.
    rate: f64,
    read_frac: f64,
    /// The goal the system must embody by the end of the stage.
    expect: AutoscaleGoal,
    /// The transition kind this stage must trigger (`None` = the
    /// scaler must stay quiet).
    expect_kind: Option<&'static str>,
    /// Instance crashed mid-stage (fail-over interplay).
    crash: Option<&'static str>,
}

fn day() -> Vec<Stage> {
    let g = |shards, cache| AutoscaleGoal { shards, cache };
    vec![
        // 60 r/s/shard: inside the (30, 100) watermark band.
        Stage { name: "morning_low", rate: 120.0, read_frac: 0.3, expect: g(2, false), expect_kind: None, crash: None },
        // 150 r/s/shard > 100: split. Post-split 75 r/s/shard is in-band.
        Stage { name: "midday_peak", rate: 300.0, read_frac: 0.3, expect: g(4, false), expect_kind: Some("split"), crash: None },
        // Read fraction 0.9 ≥ 0.8: insert the cache tier.
        Stage { name: "read_heavy", rate: 300.0, read_frac: 0.9, expect: g(4, true), expect_kind: Some("cache_in"), crash: None },
        // Steady gauges; Bck1 crashes and the supervisor restarts it.
        Stage { name: "shard_crash", rate: 300.0, read_frac: 0.9, expect: g(4, true), expect_kind: None, crash: Some("Bck1") },
        // Read fraction 0.3 ≤ 0.5: remove the cache tier.
        Stage { name: "write_heavy", rate: 300.0, read_frac: 0.3, expect: g(4, false), expect_kind: Some("cache_out"), crash: None },
        // 20 r/s/shard < 30: merge. Post-merge 40 r/s/shard is in-band.
        Stage { name: "night_low", rate: 80.0, read_frac: 0.3, expect: g(2, false), expect_kind: Some("merge"), crash: None },
    ]
}

/// Deterministic workload: a small hot set written once up front, then
/// unique-key SETs interleaved with hot GETs. The hot GETs are what the
/// inserted cache tier memoizes; the unique SETs make retries across
/// transition windows idempotent.
fn command_for(i: usize) -> Command {
    if i < 8 {
        Command::Set(format!("hot{i}"), format!("hv{i}").into_bytes())
    } else if i.is_multiple_of(3) {
        Command::Get(format!("hot{}", i % 8))
    } else {
        Command::Set(format!("k{i}"), format!("v{i}").into_bytes())
    }
}

/// What the traffic driver observed over one stage.
#[derive(Debug, Default, Clone, Copy)]
struct StageTraffic {
    sent: usize,
    acked: usize,
    retried: usize,
    refused: usize,
}

/// What one diurnal stage measured.
#[derive(Debug)]
pub struct StageResult {
    /// Stage name (report note prefix).
    pub name: &'static str,
    /// `split` / `cache_in` / `cache_out` / `merge` / `steady` / `failover`.
    pub event: &'static str,
    /// The stage's condition was met (expected transition landed
    /// cleanly, repair verified, or — for steady stages — the scaler
    /// stayed quiet and on-goal).
    pub ok: bool,
    /// Gauge set → condition met.
    pub settle_ms: f64,
    /// Phases of the stage's plan (0 when no transition).
    pub phases: usize,
    /// Largest per-phase quiesce set the stage's plan execution used.
    pub max_phase_quiesce: usize,
    /// Requests driven / acknowledged / retried / permanently refused.
    pub sent: usize,
    pub acked: usize,
    pub retried: usize,
    pub refused: usize,
}

impl StageResult {
    /// One console status line.
    pub fn line(&self) -> String {
        format!(
            "{:12} {:4}  event={:<9} settle={:>7.1}ms phases={} quiesce={} \
             sent={:<4} acked={:<4} retried={:<3} refused={}",
            self.name,
            if self.ok { "OK" } else { "FAIL" },
            self.event,
            self.settle_ms,
            self.phases,
            self.max_phase_quiesce,
            self.sent,
            self.acked,
            self.retried,
            self.refused,
        )
    }
}

/// The whole day's verdict.
#[derive(Debug)]
pub struct DiurnalOutcome {
    /// Per-stage results, in stage order.
    pub stages: Vec<StageResult>,
    /// Clean planner-driven transitions (must be ≥ 4).
    pub transitions: usize,
    /// The per-phase quiesce bound every plan ran under.
    pub quiesce_bound: usize,
    /// Largest per-phase quiesce set any transition used.
    pub max_phase_quiesce: usize,
    /// Plans judged by the injected `check_plan` validator.
    pub plans_validated: usize,
    /// Validator records (one per plan).
    pub validations: Vec<String>,
    /// Cache tier hit/miss counters over its lifetime.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Autoscaler lifetime counters.
    pub stats: AutoscaleStats,
    /// Acknowledged SETs checked against the stores.
    pub acked_sets: usize,
    /// Acknowledged SETs missing from every store — must be 0.
    pub lost_acked_sets: usize,
    /// Requests permanently refused — must be 0.
    pub refused: usize,
    /// Cross-epoch conformance against boot + every installed phase
    /// target in cut order.
    pub conformance: ConformanceSummary,
    /// Every invariant that broke, human-readable.
    pub failures: Vec<String>,
    /// The raw trace (dumped as an artifact on failure).
    pub trace_jsonl: String,
}

impl DiurnalOutcome {
    /// Whether the day's invariants all held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Fold the outcome into the bench report as notes.
    pub fn note_into(&self, r: &mut Report) {
        for s in &self.stages {
            let p = |k: &str| format!("{}_{k}", s.name);
            r.note(&p("ok"), if s.ok { 1.0 } else { 0.0 });
            r.note(&p("settle_ms"), s.settle_ms);
            r.note(&p("phases"), s.phases as f64);
            r.note(&p("max_phase_quiesce"), s.max_phase_quiesce as f64);
            r.note(&p("sent"), s.sent as f64);
            r.note(&p("acked"), s.acked as f64);
            r.note(&p("retried"), s.retried as f64);
            r.note(&p("refused"), s.refused as f64);
        }
        r.note("transitions", self.transitions as f64);
        r.note("quiesce_bound", self.quiesce_bound as f64);
        r.note("max_phase_quiesce", self.max_phase_quiesce as f64);
        r.note("plans_validated", self.plans_validated as f64);
        r.note("cache_hits", self.cache_hits as f64);
        r.note("cache_misses", self.cache_misses as f64);
        r.note("samples", self.stats.samples as f64);
        r.note("confirmed", self.stats.confirmed as f64);
        r.note("suppressed", self.stats.suppressed as f64);
        r.note("failed_transitions", self.stats.failed as f64);
        r.note("acked_sets", self.acked_sets as f64);
        r.note("lost_acked_sets", self.lost_acked_sets as f64);
        r.note("refused", self.refused as f64);
        r.note("conformance_ok", if self.conformance.ok { 1.0 } else { 0.0 });
        r.note("conformance_events", self.conformance.events as f64);
        r.note("conformance_violations", self.conformance.violations as f64);
    }
}

/// Run the six-stage diurnal day and judge it.
pub fn run_diurnal(k: DiurnalKnobs) -> DiurnalOutcome {
    let constraints = PlanConstraints::max_quiesce(1);
    let boot = csaw_core::compile(
        sharding(&ShardingSpec { n_backends: MIN_SHARDS, ..ShardingSpec::default() }),
        &LoadConfig::new(),
    )
    .unwrap();

    let rt = Runtime::new(&boot, RuntimeConfig::default());
    rt.set_tracing(true);
    let front = ShardFrontApp::new(ShardMode::ByKey, MIN_SHARDS);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let mut stores: Vec<Arc<Mutex<Store>>> = Vec::new();
    for i in 1..=MAX_SHARDS {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        if i <= MIN_SHARDS {
            rt.bind_app(&format!("Bck{i}"), Box::new(app));
        }
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();

    // Gauges first, then the autoscaler: its first sample must see the
    // morning load, not zeros.
    let metrics = rt.metrics();
    let rate_gauge = metrics.gauge("offered_rate");
    let read_gauge = metrics.gauge("read_fraction");
    let stages = day();
    rate_gauge.set(stages[0].rate);
    read_gauge.set(stages[0].read_frac);

    let driver = Arc::new(ShardDriver {
        requests: Arc::clone(&requests),
        replies: Arc::clone(&replies),
        stores: stores.clone(),
        constraints: constraints.clone(),
        cache_hits: Mutex::new(Arc::new(std::sync::atomic::AtomicU64::new(0))),
        cache_misses: Mutex::new(Arc::new(std::sync::atomic::AtomicU64::new(0))),
        validations: Mutex::new(Vec::new()),
    });
    let scaler = rt.autoscale(
        AutoscaleConfig {
            poll: k.poll,
            split_above: 100.0,
            merge_below: 30.0,
            cache_above: 0.8,
            cache_below: 0.5,
            confirm_polls: k.confirm_polls,
            cooldown: k.cooldown,
            min_shards: MIN_SHARDS,
            max_shards: MAX_SHARDS,
            constraints: constraints.clone(),
            ..AutoscaleConfig::default()
        },
        AutoscaleGoal { shards: MIN_SHARDS, cache: false },
        Arc::clone(&driver) as Arc<dyn AutoscaleDriver>,
    );

    let mut failures: Vec<String> = Vec::new();
    let mut stage_results: Vec<StageResult> = Vec::new();
    let acked_sets: Mutex<Vec<(String, Vec<u8>)>> = Mutex::new(Vec::new());
    let next_i = AtomicUsize::new(0);
    let mut cache_high = (0u64, 0u64);

    for stage in &stages {
        let prev_records = scaler.records().len();
        rate_gauge.set(stage.rate);
        read_gauge.set(stage.read_frac);
        let t0 = Instant::now();

        // Keep real traffic flowing while the monitor thread reacts.
        let stop = AtomicBool::new(false);
        let sup = stage.crash.map(|_| {
            rt.supervise(SupervisorConfig {
                poll: Duration::from_millis(10),
                verify_timeout: Duration::from_secs(2),
                policy: RepairPolicy::new()
                    .on(FailureClass::Crash, vec![RepairAction::Restart]),
                ..Default::default()
            })
        });
        let (traffic, settled, repair_ok) = std::thread::scope(|s| {
            let rt_ref = &rt;
            let requests = &requests;
            let replies = &replies;
            let stop_ref = &stop;
            let acked_ref = &acked_sets;
            let next_ref = &next_i;
            let driver_thread = s.spawn(move || {
                let mut t = StageTraffic::default();
                while !stop_ref.load(Ordering::Relaxed) {
                    let cmd = command_for(next_ref.fetch_add(1, Ordering::Relaxed));
                    drive_one(rt_ref, requests, replies, &cmd, &mut t, acked_ref);
                    std::thread::sleep(k.pace);
                }
                t
            });

            let mut repair_ok = None;
            let settled = if let Some(victim) = stage.crash {
                // Let the stage's steady traffic establish, then fail
                // the shard under the supervisor's watch.
                std::thread::sleep(k.hold / 2);
                rt.crash(victim);
                let sup = sup.as_ref().unwrap();
                let ok = wait_until(k.settle, || {
                    sup.records().iter().any(|r| r.instance == victim && r.ok)
                });
                repair_ok = Some(ok);
                ok
            } else if stage.expect_kind.is_some() {
                wait_until(k.settle, || {
                    scaler.records().len() > prev_records
                        && scaler.goal() == Some(stage.expect)
                })
            } else {
                true
            };
            std::thread::sleep(k.hold);
            stop.store(true, Ordering::Relaxed);
            (driver_thread.join().expect("traffic driver"), settled, repair_ok)
        });
        let settle_ms = t0.elapsed().as_secs_f64() * 1e3 - k.hold.as_secs_f64() * 1e3;
        if let Some(sup) = sup {
            sup.stop();
        }

        // Judge the stage.
        let new_records: Vec<_> = scaler.records().into_iter().skip(prev_records).collect();
        let (mut ok, mut event) = (settled, "steady");
        let (mut phases, mut quiesce) = (0usize, 0usize);
        match stage.expect_kind {
            Some(kind) => {
                event = kind;
                let fired = new_records.iter().find(|r| r.kind() == kind);
                match fired {
                    Some(r) if r.ok() => {
                        phases = r.phases;
                        quiesce = r.max_phase_quiesce;
                    }
                    Some(r) => {
                        ok = false;
                        failures.push(format!(
                            "{}: {kind} transition failed: {:?}",
                            stage.name, r.error
                        ));
                    }
                    None => {
                        ok = false;
                        failures.push(format!(
                            "{}: expected a {kind} transition, scaler fired {:?}",
                            stage.name,
                            new_records.iter().map(|r| r.kind()).collect::<Vec<_>>()
                        ));
                    }
                }
            }
            None => {
                if stage.crash.is_some() {
                    event = "failover";
                    if repair_ok != Some(true) {
                        ok = false;
                        failures.push(format!("{}: shard repair never verified", stage.name));
                    }
                }
                if !new_records.is_empty() {
                    ok = false;
                    failures.push(format!(
                        "{}: scaler fired {:?} during a steady stage",
                        stage.name,
                        new_records.iter().map(|r| r.kind()).collect::<Vec<_>>()
                    ));
                }
            }
        }
        if !settled && stage.expect_kind.is_some() {
            failures.push(format!(
                "{}: goal {:?} not reached within {:?} (goal now {:?})",
                stage.name,
                stage.expect,
                k.settle,
                scaler.goal()
            ));
        }
        if scaler.goal() != Some(stage.expect) {
            ok = false;
            failures.push(format!(
                "{}: ended on goal {:?}, expected {:?}",
                stage.name,
                scaler.goal(),
                stage.expect
            ));
        }
        // Snapshot cache counters while the tier exists; cache_out
        // replaces the app (and the counters) with fresh zeros.
        let hits = driver.cache_hits.lock().load(Ordering::Relaxed);
        let misses = driver.cache_misses.lock().load(Ordering::Relaxed);
        if hits + misses > cache_high.0 + cache_high.1 {
            cache_high = (hits, misses);
        }
        stage_results.push(StageResult {
            name: stage.name,
            event,
            ok,
            settle_ms: settle_ms.max(0.0),
            phases,
            max_phase_quiesce: quiesce,
            sent: traffic.sent,
            acked: traffic.acked,
            retried: traffic.retried,
            refused: traffic.refused,
        });
    }

    let records = scaler.records();
    let stats = scaler.stats();
    let programs = scaler.programs();
    scaler.stop();
    let jsonl = rt.trace_jsonl();
    let dropped = rt.trace_dropped();
    rt.shutdown();

    // ----------------------------------------------------------------
    // Day-level oracles
    // ----------------------------------------------------------------
    let transitions = records.iter().filter(|r| r.ok()).count();
    if transitions < 4 {
        failures.push(format!("only {transitions} clean transitions (need ≥ 4)"));
    }
    let max_phase_quiesce = records.iter().map(|r| r.max_phase_quiesce).max().unwrap_or(0);
    if max_phase_quiesce > constraints.max_concurrent_quiesce {
        failures.push(format!(
            "a phase quiesced {max_phase_quiesce} instances (bound {})",
            constraints.max_concurrent_quiesce
        ));
    }
    let validations = driver.validations.lock().clone();
    if validations.len() < records.len() {
        failures.push(format!(
            "{} plans validated for {} transitions — a plan skipped the checker",
            validations.len(),
            records.len()
        ));
    }

    let acked_sets = acked_sets.into_inner();
    let lost_acked_sets = acked_sets
        .iter()
        .filter(|(key, v)| !stores.iter().any(|s| s.lock().get(key) == Some(v.as_slice())))
        .count();
    if lost_acked_sets > 0 {
        failures.push(format!("{lost_acked_sets} acknowledged SETs lost"));
    }
    let refused: usize = stage_results.iter().map(|s| s.refused).sum();
    if refused > 0 {
        failures.push(format!("{refused} requests permanently refused"));
    }
    if cache_high.0 == 0 {
        failures.push("the cache tier never served a hit".to_string());
    }

    // Cross-epoch conformance: boot program + every installed phase
    // target, in cut order. The crash repair restarts in place, so it
    // adds no epoch.
    let mut chain: Vec<&CompiledProgram> = vec![&boot];
    chain.extend(programs.iter());
    let conformance = check_repair_chain(&jsonl, dropped, &chain, false);
    if !conformance.ok {
        failures.push(format!("cross-epoch conformance: {}", conformance.detail));
    }

    DiurnalOutcome {
        stages: stage_results,
        transitions,
        quiesce_bound: constraints.max_concurrent_quiesce,
        max_phase_quiesce,
        plans_validated: validations.len(),
        validations,
        cache_hits: cache_high.0,
        cache_misses: cache_high.1,
        stats,
        acked_sets: acked_sets.len(),
        lost_acked_sets,
        refused,
        conformance,
        failures,
        trace_jsonl: jsonl,
    }
}

/// Drive one command to completion: (re)queue it, invoke the front-end,
/// and only count it acknowledged once a reply lands. Failed or
/// reply-less attempts retry until [`REQUEST_DEADLINE`] — the retries
/// carry requests across plan-phase holds and the repair window.
fn drive_one(
    rt: &Runtime,
    requests: &RequestQueue,
    replies: &ReplyQueue,
    cmd: &Command,
    t: &mut StageTraffic,
    acked_sets: &Mutex<Vec<(String, Vec<u8>)>>,
) {
    t.sent += 1;
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut first = true;
    loop {
        if Instant::now() >= deadline {
            t.refused += 1;
            requests.lock().clear();
            return;
        }
        if !first {
            t.retried += 1;
        }
        first = false;
        {
            let mut q = requests.lock();
            if q.is_empty() {
                q.push_back(cmd.clone());
            }
        }
        let before = replies.lock().len();
        let invoked = rt.invoke("Fnt", "junction").is_ok();
        if invoked && wait_until(Duration::from_millis(400), || replies.lock().len() > before) {
            t.acked += 1;
            if let Command::Set(key, v) = cmd {
                acked_sets.lock().push((key.clone(), v.clone()));
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}
