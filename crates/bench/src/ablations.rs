//! Ablations for the design choices called out in DESIGN.md.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use csaw_core::builder::*;
use csaw_core::decl::Decl;
use csaw_core::expr::{Arg, Expr, ForOp};
use csaw_core::formula::Formula;
use csaw_core::names::{NameRef, PropRef, SetElem, SetRef};
use csaw_core::program::{InstanceType, JunctionDef, LoadConfig};
use csaw_core::value::Value;
use csaw_runtime::cell::JunctionId;
use csaw_runtime::transport::{DeliverFn, Network};
use csaw_runtime::{LinkKind, Runtime, RuntimeConfig};
use csaw_serial::{encode, CodecConfig, HeapValue, Prim, TypeDesc};
use mini_redis::metrics::mean_std;

use crate::report::Report;

/// Transport cost: round-trip-equivalent one-way delivery latency per
/// link kind and message size.
pub fn transports(msgs: usize) -> Report {
    let mut report = Report::new(
        "ablation_transports",
        "Delivery latency by link kind (in-process vs TCP vs simulated)",
    );
    for (label, kind) in [
        ("direct", LinkKind::Direct),
        ("tcp", LinkKind::Tcp),
        (
            "sim-1gbe",
            LinkKind::Sim { latency: Duration::from_micros(50), bandwidth: 125_000_000 },
        ),
    ] {
        for payload in [16usize, 1024, 65_536] {
            let received = Arc::new(AtomicU64::new(0));
            let recv2 = Arc::clone(&received);
            let (tx, rx) = mpsc::channel();
            let deliver: DeliverFn = Arc::new(move |_to: &JunctionId, _u| {
                if recv2.fetch_add(1, Ordering::SeqCst) + 1 == msgs as u64 {
                    let _ = tx.send(());
                }
            });
            let net = Network::new(deliver);
            net.set_link("a", "b", kind);
            let to = JunctionId::new("b", "j");
            let t0 = Instant::now();
            for i in 0..msgs {
                net.send(
                    "a",
                    &to,
                    csaw_kv::Update::data(
                        format!("k{i}"),
                        Value::Bytes(vec![0; payload]),
                        "a::j",
                    ),
                )
                .unwrap();
            }
            rx.recv_timeout(Duration::from_secs(30)).expect("all delivered");
            let total = t0.elapsed().as_secs_f64();
            report.note(
                &format!("{label}_{payload}B_us_per_msg"),
                total / msgs as f64 * 1e6,
            );
            net.shutdown();
        }
    }
    report.remark("expected: direct ≪ tcp; sim tracks bandwidth for large payloads");
    report
}

/// Serializer recursion-depth cap vs encode cost and output size.
/// Deep list traversal needs the big-stack helper (the encoder recurses
/// once per node).
pub fn serializer_depth() -> Report {
    csaw_serial::codec::with_big_stack(|| {
        let mut reg = csaw_serial::Registry::new();
        reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
        let ty = TypeDesc::ptr(TypeDesc::Named("node".into()));
        let list = HeapValue::list_from((0..20_000i64).map(HeapValue::Int));
        let mut report = Report::new(
            "ablation_serializer_depth",
            "Depth-capped serialization: cost and truncation",
        );
        for depth in [100usize, 1000, 10_000, 30_000] {
            let cfg = CodecConfig { max_depth: depth, max_bytes: 64 << 20 };
            let samples: Vec<f64> = (0..5)
                .map(|_| {
                    let t0 = Instant::now();
                    let bytes = encode(&list, &ty, &reg, &cfg).unwrap();
                    let dt = t0.elapsed().as_secs_f64();
                    std::hint::black_box(bytes);
                    dt
                })
                .collect();
            let (mean, _) = mean_std(&samples);
            let size = encode(&list, &ty, &reg, &cfg).unwrap().len();
            report.note(&format!("depth_{depth}_ms"), mean * 1e3);
            report.note(&format!("depth_{depth}_bytes"), size as f64);
        }
        report.remark(
            "expected: cost and size grow ~linearly with the cap, then plateau at the data's depth",
        );
        report
    })
}

/// Fail-over designs: §7.3 write-to-all vs §7.4 watched single-focus —
/// request latency and network messages per request.
pub fn failover_designs(requests: usize) -> Report {
    use csaw_arch::failover::{self, failover, FailoverSpec};
    use csaw_arch::watched::{self, watched_failover, WatchedSpec};
    use csaw_kv::Update;
    use mini_redis::apps::{FailoverFrontApp, ServerApp};

    let mut report = Report::new(
        "ablation_failover_designs",
        "Write-to-all fail-over (§7.3) vs watched single-focus (§7.4)",
    );

    // §7.3 — warm replicas, write to all.
    {
        let spec = FailoverSpec::default();
        let cp = csaw_core::compile(failover(&spec), &LoadConfig::new()).unwrap();
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        let front = FailoverFrontApp::new();
        let reqs = Arc::clone(&front.requests);
        let reps = Arc::clone(&front.replies);
        rt.bind_app("f", Box::new(front));
        rt.bind_app("b1", Box::new(ServerApp::new()));
        rt.bind_app("b2", Box::new(ServerApp::new()));
        let t = Duration::from_millis(500);
        failover::configure_policies(&rt, &spec, t);
        rt.run_main(vec![Value::Duration(t)]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.peek_prop("f", "c", "Starting") != Some(false) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let msgs_before = rt.messages_sent();
        let mut lats = Vec::new();
        for i in 0..requests {
            reqs.lock()
                .push_back(mini_redis::Command::Set(format!("k{i}"), vec![1; 64]));
            let expect = i + 1;
            let t0 = Instant::now();
            rt.deliver_for_test("f", "c", Update::assert("Req", "driver"));
            let dl = Instant::now() + Duration::from_secs(10);
            while reps.lock().len() < expect && Instant::now() < dl {
                std::thread::sleep(Duration::from_micros(200));
            }
            lats.push(t0.elapsed().as_secs_f64());
        }
        let (mean, std) = mean_std(&lats);
        report.note("writeall_latency_ms", mean * 1e3);
        report.note("writeall_latency_std_ms", std * 1e3);
        report.note(
            "writeall_msgs_per_req",
            (rt.messages_sent() - msgs_before) as f64 / requests as f64,
        );
        rt.shutdown();
    }

    // §7.4 — watchdog, single focus.
    {
        let spec = WatchedSpec::default();
        let cp = csaw_core::compile(watched_failover(&spec), &LoadConfig::new()).unwrap();
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        let front = crate::chaos::KvFront::new();
        let reqs = Arc::clone(&front.requests);
        let reps = Arc::clone(&front.replies);
        rt.bind_app("f", Box::new(front));
        rt.bind_app("o", Box::new(ServerApp::new()));
        rt.bind_app("s", Box::new(ServerApp::new()));
        watched::configure_policies(&rt, &spec, Duration::from_millis(50));
        rt.run_main(vec![Value::Duration(Duration::from_millis(500))]).unwrap();
        let msgs_before = rt.messages_sent();
        let mut lats = Vec::new();
        for i in 0..requests {
            let cmd = mini_redis::Command::Set(format!("k{i}"), vec![1; 64]);
            let expect = i + 1;
            let t0 = Instant::now();
            // The previous request's Run-flag retractions may still be in
            // flight; re-invoke until the safety conditions hold (the
            // paper schedules this junction from application logic). A
            // failed attempt may have consumed the queued request (H1
            // runs before the safety verifies), so re-queue each try.
            let dl0 = Instant::now() + Duration::from_secs(10);
            loop {
                if reqs.lock().is_empty() {
                    reqs.lock().push_back(cmd.clone());
                }
                if rt.invoke("f", "junction").is_ok() {
                    break;
                }
                assert!(Instant::now() < dl0, "front-end never became ready");
                std::thread::sleep(Duration::from_micros(200));
            }
            let dl = Instant::now() + Duration::from_secs(10);
            while reps.lock().len() < expect && Instant::now() < dl {
                std::thread::sleep(Duration::from_micros(200));
            }
            lats.push(t0.elapsed().as_secs_f64());
        }
        let (mean, std) = mean_std(&lats);
        report.note("watched_latency_ms", mean * 1e3);
        report.note("watched_latency_std_ms", std * 1e3);
        report.note(
            "watched_msgs_per_req",
            (rt.messages_sent() - msgs_before) as f64 / requests as f64,
        );
        rt.shutdown();
    }
    report.remark(
        "expected: write-to-all costs more messages per request (linear in replicas) \
         in exchange for warm replication; watched focuses on one back-end (§7.4 design notes)",
    );
    report
}

/// Parallel (`+`) vs sequential (`;`) fan-out latency: N arms, each
/// waiting ~d — `+` costs ~d, `;` costs ~N·d.
pub fn fanout(n: usize, arm_ms: u64, reps: usize) -> Report {
    let mut report = Report::new(
        "ablation_fanout",
        "Parallel (+) vs sequential (;) composition of waiting arms",
    );
    for (label, op) in [("par", ForOp::Par), ("seq", ForOp::Seq)] {
        let elems: Vec<SetElem> = (0..n).map(|i| SetElem::Int(i as i64)).collect();
        // Each arm waits on a never-true prop with a per-arm timeout of
        // `arm_ms` (otherwise → skip): pure composition cost.
        let body = for_each(
            "x",
            SetRef::Lit(elems),
            op,
            otherwise(
                scope(Expr::Wait {
                    data: vec![],
                    formula: Formula::Prop(PropRef::plain("Never")),
                }),
                "t",
                skip(),
            ),
        );
        let ty = InstanceType::new(
            "T",
            vec![JunctionDef::new(
                "j",
                vec![p_timeout("t")],
                vec![Decl::prop_false("Never")],
                body,
            )],
        );
        let p = ProgramBuilder::new()
            .ty(ty)
            .instance("a", "T")
            .main(vec![p_timeout("t")], start("a", vec![Arg::Name(NameRef::var("t"))]))
            .build();
        let cp = csaw_core::compile(p, &LoadConfig::new()).unwrap();
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        rt.set_policy("a", "j", csaw_runtime::runtime::Policy::OnDemand);
        rt.run_main(vec![Value::Duration(Duration::from_millis(arm_ms))]).unwrap();
        let samples: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                rt.invoke("a", "j").unwrap();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        let (mean, std) = mean_std(&samples);
        report.note(&format!("{label}_ms"), mean * 1e3);
        report.note(&format!("{label}_std_ms"), std * 1e3);
        rt.shutdown();
    }
    report.note("arms", n as f64);
    report.note("arm_timeout_ms", arm_ms as f64);
    report.remark("expected: seq ≈ N × par (the §7.3 linear-scaling note)");
    report
}

/// Fail-over (§7.3) throughput and loss across link drop rates, with and
/// without the reliability layer (bounded retry + receiver dedup). The
/// schedule is pure loss — no partition, no dup, no jitter — so the sweep
/// isolates what retry buys on a lossy link.
pub fn fault_tolerance(requests: usize) -> Report {
    use crate::chaos::{self, ChaosSchedule};

    let mut report = Report::new(
        "ablation_fault_tolerance",
        "Fail-over under lossy links: drop-rate sweep, retry+dedup on vs off",
    );
    for (label, reliable) in [("with_retry", true), ("without_retry", false)] {
        for drop in [0.0, 0.01, 0.05, 0.20] {
            let mut schedule = ChaosSchedule::acceptance(42)
                .with_requests(requests)
                .with_drop(drop)
                .without_partition()
                .with_pace(Duration::ZERO);
            schedule.dup = 0.0;
            schedule.jitter = Duration::ZERO;
            if !reliable {
                schedule = schedule.without_reliability();
            }
            let outcome = chaos::soak_failover(&schedule);
            let pct = (drop * 100.0).round() as u32;
            report.note(
                &format!("{label}_drop{pct}pct_req_per_s"),
                outcome.answered as f64 / outcome.elapsed,
            );
            report.note(&format!("{label}_drop{pct}pct_lost"), outcome.lost as f64);
        }
    }
    report.remark(
        "expected: with retry, zero losses and graceful throughput degradation up to 20% drop; \
         without it, requests are lost even at low drop rates and throughput collapses \
         (each lost request burns its full deadline, then waits out the demote/re-register cycle)",
    );
    report
}
