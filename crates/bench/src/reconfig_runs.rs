//! Live-reconfiguration downtime bench: hot-swap mini-redis
//! architectures **under sustained traffic** and measure what the
//! transition cost.
//!
//! Four transitions, each driven by a closed-loop client thread while a
//! probe thread watches an *unaffected* instance for read gaps:
//!
//! 1. `single_to_sharded3` — sharding(1) → sharding(3): the front-end is
//!    re-planned, `Bck1` keeps serving, `Bck2`/`Bck3` join, and the
//!    migrate closure re-keys every store entry by the new shard formula.
//! 2. `reshard_2_to_4` — sharding(2) → sharding(4): same shape, with
//!    entries re-homed across the surviving shards too.
//! 3. `add_cache` — a pass-through relay in front of `Fun` becomes the
//!    Fig. 7 caching junction; the bound [`CacheApp`] starts getting its
//!    `LookupCache`/`UpdateCache` hooks called mid-flight.
//! 4. `enable_watched` — the §7.4 fail-over architecture minus its
//!    watchdog gains `w` live; afterwards the preferred back-end is
//!    crashed to prove the reconfigured-in watchdog actually arbitrates.
//!
//! Invariants per transition: **zero lost acknowledged writes** (every
//! SET that produced a reply is present in some store afterwards), no
//! permanently refused requests, an ≈ 0 pause for unaffected instances,
//! and a **cross-epoch conformance** pass — the recorded trace validates
//! against program A's event structures before the `reconfig_cut` and
//! program B's after it ([`csaw_semantics::check_reconfig_jsonl`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_arch::caching::{caching, CachingSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_arch::watched::{watched_failover, WatchedSpec};
use csaw_core::builder::*;
use csaw_core::decl::Decl;
use csaw_core::expr::Arg;
use csaw_core::formula::Formula;
use csaw_core::names::JRef;
use csaw_core::program::{CompiledProgram, InstanceType, JunctionDef, LoadConfig, Program};
use csaw_core::value::Value;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{PhaseTimings, ReconfigReport, ReconfigSpec, Runtime, RuntimeConfig};
use csaw_semantics::{check_reconfig_jsonl, denote_program, ConformanceOptions, DenoteConfig};
use mini_redis::apps::{CacheApp, ServerApp, ShardFrontApp, ShardMode};
use mini_redis::hash::shard_of;
use mini_redis::{Command, Store};
use parking_lot::Mutex;

use crate::chaos::KvFront;
use crate::conformance_runs::ConformanceSummary;
use crate::report::Report;

/// The front-end `wait` deadline used by every transition.
const FRONT_TIMEOUT: Duration = Duration::from_millis(400);
/// How long a single request may retry before it counts as refused.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Timing knobs. Smoke mode (CI) compresses the traffic windows.
#[derive(Clone, Copy, Debug)]
pub struct BenchKnobs {
    /// Traffic before the reconfiguration.
    pub warm: Duration,
    /// Traffic after it.
    pub drain: Duration,
    /// Driver pacing between requests.
    pub pace: Duration,
}

/// Knobs for full vs smoke runs.
pub fn knobs(smoke: bool) -> BenchKnobs {
    if smoke {
        BenchKnobs {
            warm: Duration::from_millis(120),
            drain: Duration::from_millis(180),
            pace: Duration::from_millis(1),
        }
    } else {
        BenchKnobs {
            warm: Duration::from_millis(600),
            drain: Duration::from_millis(600),
            pace: Duration::from_micros(300),
        }
    }
}

/// Whether `CSAW_RECONFIG_SMOKE` asks for the compressed run.
pub fn smoke_requested() -> bool {
    std::env::var("CSAW_RECONFIG_SMOKE").is_ok_and(|v| v != "0")
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

/// Deterministic workload: a small hot set written once up front, then
/// unique-key SETs interleaved with hot GETs. Unique SET keys make
/// retries idempotent (a late-landing duplicate can never clobber a
/// newer acknowledged value), and the hot GETs give the caching
/// transition something to memoize.
fn command_for(i: usize) -> Command {
    if i < 8 {
        Command::Set(format!("hot{i}"), format!("hv{i}").into_bytes())
    } else if i.is_multiple_of(3) {
        Command::Get(format!("hot{}", i % 8))
    } else {
        Command::Set(format!("k{i}"), format!("v{i}").into_bytes())
    }
}

/// What the driver thread observed.
#[derive(Debug, Default)]
struct DriveStats {
    sent: usize,
    acked: usize,
    retried: usize,
    refused: usize,
    acked_sets: Vec<(String, Vec<u8>)>,
}

/// Drive one command to completion: (re)queue it, invoke the front-end,
/// and only count it acknowledged once a reply actually lands. Failed or
/// reply-less attempts retry until [`REQUEST_DEADLINE`]; invokes
/// deferred by a reconfiguration hold simply retry onto the new
/// topology after resume.
fn drive_one<F: Fn() -> usize>(
    rt: &Runtime,
    target: (&str, &str),
    requests: &Arc<Mutex<VecDeque<Command>>>,
    replies_len: F,
    cmd: &Command,
    stats: &mut DriveStats,
) {
    stats.sent += 1;
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut first = true;
    loop {
        if Instant::now() >= deadline {
            stats.refused += 1;
            requests.lock().clear();
            return;
        }
        if !first {
            stats.retried += 1;
        }
        first = false;
        {
            let mut q = requests.lock();
            if q.is_empty() {
                q.push_back(cmd.clone());
            }
        }
        let before = replies_len();
        let invoked = rt.invoke(target.0, target.1).is_ok();
        if invoked && wait_until(Duration::from_millis(400), || replies_len() > before) {
            stats.acked += 1;
            if let Command::Set(k, v) = cmd {
                stats.acked_sets.push((k.clone(), v.clone()));
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Tight read loop against an unaffected instance; returns the largest
/// gap between successive reads outside and inside the reconfiguration
/// window. The inside number is the measured "pause" of the
/// never-quiesced path.
fn probe_loop(
    rt: &Runtime,
    target: (&str, &str, &str),
    window: &AtomicBool,
    stop: &AtomicBool,
) -> (Duration, Duration) {
    let mut last = Instant::now();
    let mut baseline = Duration::ZERO;
    let mut during = Duration::ZERO;
    while !stop.load(Ordering::Relaxed) {
        let _ = rt.peek_prop(target.0, target.1, target.2);
        let gap = last.elapsed();
        last = Instant::now();
        if window.load(Ordering::Relaxed) {
            during = during.max(gap);
        } else {
            baseline = baseline.max(gap);
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    (baseline, during)
}

/// One transition's raw measurements, before verification.
struct LiveRun {
    stats: DriveStats,
    report: ReconfigReport,
    baseline_gap: Duration,
    during_gap: Duration,
}

/// The harness: a driver thread keeps requests flowing and a probe
/// thread watches `bystander` while the main thread warms up, executes
/// the reconfiguration (spec built at cut time), runs `after_cut`, and
/// drains.
fn run_live(
    rt: &Runtime,
    target: &CompiledProgram,
    spec_builder: impl FnOnce() -> ReconfigSpec,
    bystander: (&str, &str, &str),
    k: BenchKnobs,
    mut drive: impl FnMut(usize, &mut DriveStats) + Send,
    after_cut: impl FnOnce(),
) -> Result<LiveRun, String> {
    let window = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let probe = s.spawn(|| probe_loop(rt, bystander, &window, &stop));
        let driver = s.spawn(|| {
            let mut stats = DriveStats::default();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                drive(i, &mut stats);
                i += 1;
                std::thread::sleep(k.pace);
            }
            stats
        });
        std::thread::sleep(k.warm);
        window.store(true, Ordering::Relaxed);
        let report = rt.reconfigure(target, spec_builder());
        window.store(false, Ordering::Relaxed);
        if report.is_ok() {
            after_cut();
            std::thread::sleep(k.drain);
        }
        stop.store(true, Ordering::Relaxed);
        let stats = driver.join().expect("driver thread");
        let (baseline_gap, during_gap) = probe.join().expect("probe thread");
        match report {
            Ok(report) => {
                if let Some(f) = &report.migration_error {
                    return Err(format!(
                        "reconfigure applied the cut but the migration failed: {f:?}"
                    ));
                }
                Ok(LiveRun { stats, report, baseline_gap, during_gap })
            }
            Err(f) => Err(format!("reconfigure failed (not applied): {f:?}")),
        }
    })
}

/// Acked SETs with no home in any store afterwards — the lost-write
/// count, which must be zero.
fn lost_acked_sets(acked: &[(String, Vec<u8>)], stores: &[Arc<Mutex<Store>>]) -> usize {
    acked
        .iter()
        .filter(|(k, v)| !stores.iter().any(|s| s.lock().get(k) == Some(v.as_slice())))
        .count()
}

/// Replay the recorded trace against both epochs' event structures:
/// records scheduled before the `reconfig_cut` must be valid under
/// program A, records after it under program B.
fn check_cross_epoch(
    rt: &Runtime,
    a: &CompiledProgram,
    b: &CompiledProgram,
) -> (ConformanceSummary, String) {
    let jsonl = rt.trace_jsonl();
    let dropped = rt.trace_dropped();
    let sem_a = denote_program(a, &DenoteConfig::default());
    let sem_b = denote_program(b, &DenoteConfig::default());
    // Same caveat as `check_runtime_trace`: the send/apply pairing rule
    // is only sound over a complete (unevicted) trace.
    let opts = ConformanceOptions { require_send_for_apply: dropped == 0 };
    let summary = match check_reconfig_jsonl(&jsonl, Some(&sem_a), Some(&sem_b), &opts) {
        Ok(report) => ConformanceSummary {
            ok: report.ok(),
            events: report.events,
            violations: report.violations.len(),
            matched: report.matched_labels,
            unmatched: report.unmatched_labels,
            dropped,
            detail: report
                .violations
                .iter()
                .take(5)
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        },
        Err(e) => ConformanceSummary {
            ok: false,
            events: 0,
            violations: 1,
            matched: 0,
            unmatched: 0,
            dropped,
            detail: format!("trace parse error: {e}"),
        },
    };
    (summary, jsonl)
}

/// What one live transition measured.
#[derive(Debug)]
pub struct TransitionOutcome {
    /// Transition id (report note prefix).
    pub name: String,
    /// Requests driven.
    pub sent: usize,
    /// Requests that produced a reply.
    pub acked: usize,
    /// Retry attempts (invoke failures or missing replies, e.g. while
    /// the front-end was held across the cut).
    pub retried: usize,
    /// Requests that never completed within the deadline — must be 0.
    pub refused: usize,
    /// Acknowledged SETs checked against the stores.
    pub acked_sets: usize,
    /// Acknowledged SETs missing from every store — must be 0.
    pub lost_acked_sets: usize,
    /// Worst per-instance hold window (affected instances only).
    pub pause_max_us: u64,
    /// The unaffected instance the probe watched.
    pub bystander: String,
    /// Largest probe read gap while the reconfiguration ran.
    pub bystander_gap_us: u64,
    /// Largest probe read gap outside the window (noise floor).
    pub baseline_gap_us: u64,
    /// Serial-codec bytes carried across the cut (junction tables).
    pub migrated_bytes: u64,
    /// App-level entries re-homed by the migrate closure.
    pub moved_entries: u64,
    /// App-level bytes re-homed by the migrate closure.
    pub moved_bytes: u64,
    /// Updates buffered during quiescence and flushed at resume.
    pub held_updates: u64,
    /// Buffered updates with no home in the new program.
    pub dropped_updates: u64,
    /// Wall time of the whole transition.
    pub total_us: u64,
    /// Where the transition spent its time: the engine's per-phase
    /// split (diff / quiesce / migrate / cut / resume).
    pub timings: PhaseTimings,
    /// Plan shape: instances added.
    pub added: usize,
    /// Instances removed by the plan.
    pub removed: usize,
    /// Instances re-planned in place.
    pub changed: usize,
    /// Transition-specific extras (cache hits, fail-over engaged, …).
    pub extra: Vec<(String, f64)>,
    /// Cross-epoch conformance verdict for the recorded trace.
    pub conformance: ConformanceSummary,
    /// The raw trace (dumped as an artifact on failure).
    pub trace_jsonl: String,
}

impl TransitionOutcome {
    /// Whether the transition's invariants held.
    pub fn ok(&self) -> bool {
        self.lost_acked_sets == 0 && self.refused == 0 && self.conformance.ok
    }

    /// Whether the unaffected-instance path stayed ≈ unpaused.
    pub fn bystander_pause_small(&self, bound: Duration) -> bool {
        Duration::from_micros(self.bystander_gap_us) <= bound
    }

    /// One console status line.
    pub fn line(&self) -> String {
        format!(
            "{:18} {:4}  acked={:<5} retried={:<4} refused={:<2} lost={:<2} \
             pause={:>7}us bystander_gap={:>6}us migrated={}B moved={} conf={}",
            self.name,
            if self.ok() { "OK" } else { "FAIL" },
            self.acked,
            self.retried,
            self.refused,
            self.lost_acked_sets,
            self.pause_max_us,
            self.bystander_gap_us,
            self.migrated_bytes,
            self.moved_entries,
            if self.conformance.ok { "ok" } else { "VIOLATED" },
        )
    }

    /// Fold the outcome into the bench report as prefixed notes.
    pub fn note_into(&self, r: &mut Report) {
        let p = |k: &str| format!("{}_{k}", self.name);
        r.note(&p("sent"), self.sent as f64);
        r.note(&p("acked"), self.acked as f64);
        r.note(&p("retried"), self.retried as f64);
        r.note(&p("refused"), self.refused as f64);
        r.note(&p("acked_sets"), self.acked_sets as f64);
        r.note(&p("lost_acked_sets"), self.lost_acked_sets as f64);
        r.note(&p("pause_max_us"), self.pause_max_us as f64);
        r.note(&p("bystander_gap_us"), self.bystander_gap_us as f64);
        r.note(&p("baseline_gap_us"), self.baseline_gap_us as f64);
        r.note(&p("migrated_bytes"), self.migrated_bytes as f64);
        r.note(&p("moved_entries"), self.moved_entries as f64);
        r.note(&p("moved_bytes"), self.moved_bytes as f64);
        r.note(&p("held_updates"), self.held_updates as f64);
        r.note(&p("dropped_updates"), self.dropped_updates as f64);
        r.note(&p("total_us"), self.total_us as f64);
        for (phase, d) in self.timings.phases() {
            r.note(&p(&format!("t_{phase}_us")), d.as_micros() as f64);
        }
        r.note(&p("plan_added"), self.added as f64);
        r.note(&p("plan_removed"), self.removed as f64);
        r.note(&p("plan_changed"), self.changed as f64);
        r.note(&p("conformance_ok"), if self.conformance.ok { 1.0 } else { 0.0 });
        r.note(&p("conformance_events"), self.conformance.events as f64);
        r.note(&p("conformance_violations"), self.conformance.violations as f64);
        for (key, v) in &self.extra {
            r.note(&p(key), *v);
        }
    }
}

fn build_outcome(
    name: &str,
    bystander: &str,
    run: LiveRun,
    lost: usize,
    extra: Vec<(String, f64)>,
    conformance: ConformanceSummary,
    trace_jsonl: String,
) -> TransitionOutcome {
    TransitionOutcome {
        name: name.to_string(),
        sent: run.stats.sent,
        acked: run.stats.acked,
        retried: run.stats.retried,
        refused: run.stats.refused,
        acked_sets: run.stats.acked_sets.len(),
        lost_acked_sets: lost,
        pause_max_us: run.report.max_pause().as_micros() as u64,
        bystander: bystander.to_string(),
        bystander_gap_us: run.during_gap.as_micros() as u64,
        baseline_gap_us: run.baseline_gap.as_micros() as u64,
        migrated_bytes: run.report.migrated_bytes,
        moved_entries: run.report.moved_entries,
        moved_bytes: run.report.moved_bytes,
        held_updates: run.report.held_updates,
        dropped_updates: run.report.dropped_updates,
        total_us: run.report.total.as_micros() as u64,
        timings: run.report.timings,
        added: run.report.plan.added.len(),
        removed: run.report.plan.removed.len(),
        changed: run.report.plan.changed.len(),
        extra,
        conformance,
        trace_jsonl,
    }
}

// ---------------------------------------------------------------------
// Transitions 1 & 2 — live resharding
// ---------------------------------------------------------------------

/// Reshard a running key-hash sharded store from `old_n` to `new_n`
/// back-ends. The front-end is re-planned (its `tgt` idx set widens),
/// surviving back-ends never pause, joining ones are started by the
/// spec, and the migrate closure re-homes every entry by the new shard
/// formula while the front is still held — no request can race the
/// redistribution.
pub fn transition_reshard(
    name: &str,
    old_n: usize,
    new_n: usize,
    k: BenchKnobs,
) -> TransitionOutcome {
    assert!(new_n > old_n);
    let a = csaw_core::compile(
        sharding(&ShardingSpec { n_backends: old_n, ..Default::default() }),
        &LoadConfig::new(),
    )
    .unwrap();
    let b = csaw_core::compile(
        sharding(&ShardingSpec { n_backends: new_n, ..Default::default() }),
        &LoadConfig::new(),
    )
    .unwrap();
    let rt = Runtime::new(&a, RuntimeConfig::default());
    rt.set_tracing(true);
    let front = ShardFrontApp::new(ShardMode::ByKey, old_n);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let mut stores: Vec<Arc<Mutex<Store>>> = Vec::new();
    for i in 1..=old_n {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    // Pre-create the joining shards' stores so the migrate closure and
    // the final verification share the handles.
    for _ in old_n..new_n {
        stores.push(Arc::new(Mutex::new(Store::new())));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();

    let spec_stores = stores.clone();
    let drv_requests = Arc::clone(&requests);
    let drv_replies = Arc::clone(&replies);
    let rt_ref = &rt;
    let run = run_live(
        rt_ref,
        &b,
        move || {
            // The carried front app would still route mod old_n;
            // override it with one routing mod new_n that shares the
            // live request/reply queues.
            let mut new_front = ShardFrontApp::new(ShardMode::ByKey, new_n);
            new_front.requests = requests;
            new_front.replies = replies;
            let mut spec = ReconfigSpec::default();
            spec.apps.push(("Fnt".to_string(), Box::new(new_front)));
            for i in old_n + 1..=new_n {
                spec.apps.push((
                    format!("Bck{i}"),
                    Box::new(ServerApp::with_store(Arc::clone(&spec_stores[i - 1]))),
                ));
                spec.start.push((
                    format!("Bck{i}"),
                    vec![(
                        None,
                        vec![
                            Arg::Junction(JRef::qualified("Fnt", "junction")),
                            Arg::Value(Value::Duration(FRONT_TIMEOUT)),
                        ],
                    )],
                ));
            }
            let mig = spec_stores;
            spec.migrate = Some(Box::new(move |ctx| {
                let mut moved = 0u64;
                let mut bytes = 0u64;
                for idx in 0..old_n {
                    // Bind the drained entries first: iterating the
                    // lock's temporary directly would hold the guard
                    // across the re-inserting `lock()` below.
                    let drained: Vec<(String, Vec<u8>)> = mig[idx].lock().drain_entries();
                    for (key, val) in drained {
                        let home = shard_of(&key, new_n);
                        if home != idx {
                            moved += 1;
                            bytes += (key.len() + val.len()) as u64;
                        }
                        mig[home].lock().set(&key, val);
                    }
                }
                ctx.note_moved(moved, bytes);
                Ok(())
            }));
            spec
        },
        ("Bck1", "junction", "Work"),
        k,
        move |i, stats| {
            let cmd = command_for(i);
            drive_one(
                rt_ref,
                ("Fnt", "junction"),
                &drv_requests,
                || drv_replies.lock().len(),
                &cmd,
                stats,
            );
        },
        || {},
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));

    let lost = lost_acked_sets(&run.stats.acked_sets, &stores);
    rt.shutdown();
    let (conformance, jsonl) = check_cross_epoch(&rt, &a, &b);
    build_outcome(name, "Bck1", run, lost, vec![], conformance, jsonl)
}

// ---------------------------------------------------------------------
// Transition 3 — insert a caching tier
// ---------------------------------------------------------------------

/// A pass-through stand-in for `tCache`: classifies the request (so the
/// same [`CacheApp`] pops it off the queue) but always takes the miss
/// path — forward to `Fun`, wait, restore the reply. The live
/// transition replans this junction into the real Fig. 7 cache.
fn relay_type() -> InstanceType {
    InstanceType::new(
        "tRelay",
        vec![JunctionDef::new(
            "junction",
            vec![p_timeout("t")],
            vec![
                Decl::prop_false("Work"),
                Decl::prop_false("Cacheable"),
                Decl::data("n"),
                Decl::data("m"),
            ],
            seq([
                retract_local("Cacheable"),
                host_w("CheckCacheable", ["Cacheable"]),
                save("n"),
                otherwise(
                    scope(seq([
                        write("n", JRef::instance("Fun")),
                        assert_at(JRef::instance("Fun"), "Work"),
                        wait(["m"], Formula::prop("Work").not()),
                        restore("m"),
                    ])),
                    "t",
                    call("complain", vec![]),
                ),
            ]),
        )],
    )
}

/// The Fig. 7 caching program with the cache junction replaced by the
/// pass-through relay — the "before" of [`transition_add_cache`].
fn caching_without_cache() -> Program {
    let mut prog = caching(&CachingSpec::default());
    prog.types.push(relay_type());
    for (inst, ty) in prog.instances.iter_mut() {
        if inst == "Cache" {
            *ty = "tRelay".to_string();
        }
    }
    prog
}

/// Replan a pass-through relay into the Fig. 7 caching junction while
/// requests flow. The bound [`CacheApp`] is carried across the cut
/// unchanged; its `LookupCache`/`UpdateCache` hooks — dead code under
/// the relay — go live with the new junction body, so cache hits only
/// start accumulating after the cut.
pub fn transition_add_cache(k: BenchKnobs) -> TransitionOutcome {
    let a = csaw_core::compile(caching_without_cache(), &LoadConfig::new()).unwrap();
    let b = csaw_core::compile(caching(&CachingSpec::default()), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&a, RuntimeConfig::default());
    rt.set_tracing(true);
    let cache = CacheApp::new(4096);
    let requests = Arc::clone(&cache.requests);
    let replies = Arc::clone(&cache.replies);
    let hits = Arc::clone(&cache.hits);
    let misses = Arc::clone(&cache.misses);
    rt.bind_app("Cache", Box::new(cache));
    let fun = ServerApp::new();
    let store = Arc::clone(&fun.store);
    rt.bind_app("Fun", Box::new(fun));
    rt.set_policy("Cache", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();

    let rt_ref = &rt;
    let hits_at_cut = AtomicU64::new(0);
    let hits_at_cut_ref = &hits_at_cut;
    let hits_probe = Arc::clone(&hits);
    let run = run_live(
        rt_ref,
        &b,
        move || {
            // Under the relay no lookup ever ran, so this snapshot
            // should read 0 — hits are a post-cut phenomenon.
            hits_at_cut_ref.store(hits_probe.load(Ordering::Relaxed), Ordering::Relaxed);
            ReconfigSpec::default()
        },
        ("Fun", "junction", "Work"),
        k,
        move |i, stats| {
            let cmd = command_for(i);
            drive_one(
                rt_ref,
                ("Cache", "junction"),
                &requests,
                || replies.lock().len(),
                &cmd,
                stats,
            );
        },
        || {},
    )
    .unwrap_or_else(|e| panic!("add_cache: {e}"));

    let lost = lost_acked_sets(&run.stats.acked_sets, std::slice::from_ref(&store));
    let extra = vec![
        ("cache_hits_pre_cut".to_string(), hits_at_cut.load(Ordering::Relaxed) as f64),
        ("cache_hits_total".to_string(), hits.load(Ordering::Relaxed) as f64),
        ("cache_misses_total".to_string(), misses.load(Ordering::Relaxed) as f64),
    ];
    rt.shutdown();
    let (conformance, jsonl) = check_cross_epoch(&rt, &a, &b);
    build_outcome("add_cache", "Fun", run, lost, extra, conformance, jsonl)
}

// ---------------------------------------------------------------------
// Transition 4 — enable the watchdog
// ---------------------------------------------------------------------

/// The §7.4 watched fail-over program with the watchdog instance (and
/// its `start_junctions`) removed — the "before" of
/// [`transition_enable_watched`].
fn watched_without_watchdog() -> Program {
    let mut prog = watched_failover(&WatchedSpec::default());
    prog.instances.retain(|(name, _)| name != "w");
    prog.main.body = seq([
        par([
            start("o", vec![Arg::name("t")]),
            start("s", vec![Arg::name("t")]),
        ]),
        start("f", vec![Arg::name("t")]),
    ]);
    prog
}

/// Add the watchdog `w` to a running watched fail-over system — the only
/// change is one *added* instance, so the quiesce set is empty and no
/// instance pauses at all. After the cut the preferred back-end is
/// crashed to prove the just-added watchdog arbitrates fail-over.
pub fn transition_enable_watched(k: BenchKnobs) -> TransitionOutcome {
    let a = csaw_core::compile(watched_without_watchdog(), &LoadConfig::new()).unwrap();
    let b = csaw_core::compile(watched_failover(&WatchedSpec::default()), &LoadConfig::new())
        .unwrap();
    let rt = Runtime::new(&a, RuntimeConfig::default());
    rt.set_tracing(true);
    let front = KvFront::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let o = ServerApp::new();
    let s = ServerApp::new();
    let store_o = Arc::clone(&o.store);
    let store_s = Arc::clone(&s.store);
    rt.bind_app("o", Box::new(o));
    rt.bind_app("s", Box::new(s));
    // `configure_policies` would touch the absent watchdog; set the
    // front-end policy directly and let the spec configure `w`'s.
    rt.set_policy("f", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();

    let rt_ref = &rt;
    let failed_over = AtomicBool::new(false);
    let failed_over_ref = &failed_over;
    let run = run_live(
        rt_ref,
        &b,
        || {
            let mut spec = ReconfigSpec::default();
            spec.start.push((
                "w".to_string(),
                vec![
                    (Some("co".to_string()), vec![]),
                    (Some("cs".to_string()), vec![]),
                    (Some("cunrecov".to_string()), vec![]),
                ],
            ));
            for j in ["co", "cs", "cunrecov"] {
                spec.policies.push((
                    "w".to_string(),
                    j.to_string(),
                    Policy::Periodic(Duration::from_millis(25)),
                ));
            }
            spec
        },
        ("f", "junction", "failover"),
        k,
        move |i, stats| {
            let cmd = command_for(i);
            drive_one(
                rt_ref,
                ("f", "junction"),
                &requests,
                || replies.lock().len(),
                &cmd,
                stats,
            );
        },
        || {
            // The watchdog is live; now kill the preferred back-end and
            // wait for it to flip the front to the spare. The driver
            // keeps running — its retries cover the detection window.
            std::thread::sleep(Duration::from_millis(80));
            rt_ref.crash("o");
            let flipped = wait_until(Duration::from_secs(3), || {
                rt_ref.peek_prop("f", "junction", "failover") == Some(true)
            });
            failed_over_ref.store(flipped, Ordering::Relaxed);
        },
    )
    .unwrap_or_else(|e| panic!("enable_watched: {e}"));

    // The warm spare mirrors every pre-fail-over command, so the union
    // of both stores must contain every acknowledged SET.
    let lost = lost_acked_sets(&run.stats.acked_sets, &[store_o, store_s]);
    let extra = vec![(
        "failed_over".to_string(),
        if failed_over.load(Ordering::Relaxed) { 1.0 } else { 0.0 },
    )];
    rt.shutdown();
    let (conformance, jsonl) = check_cross_epoch(&rt, &a, &b);
    build_outcome("enable_watched", "f", run, lost, extra, conformance, jsonl)
}

/// Run all four transitions in sequence.
pub fn run_all(k: BenchKnobs) -> Vec<TransitionOutcome> {
    vec![
        transition_reshard("single_to_sharded3", 1, 3, k),
        transition_reshard("reshard_2_to_4", 2, 4, k),
        transition_add_cache(k),
        transition_enable_watched(k),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A compressed reshard under traffic: nothing acked may be lost,
    /// nothing refused, and the cross-epoch trace must conform. The
    /// bystander-gap bound is deliberately not asserted here — it is a
    /// timing measurement, not an invariant, and CI machines stall.
    #[test]
    fn smoke_reshard_under_traffic() {
        let out = transition_reshard("smoke_reshard", 1, 2, knobs(true));
        assert_eq!(out.lost_acked_sets, 0, "lost acked writes");
        assert_eq!(out.refused, 0, "refused requests");
        assert!(out.acked > 0, "no traffic was acknowledged");
        assert!(out.conformance.ok, "cross-epoch violations:\n{}", out.conformance.detail);
        assert_eq!(out.added, 1);
        assert_eq!(out.changed, 1);
    }
}
