//! Open-loop overload storm at the transport level: offered load vs
//! in-deadline goodput, with the overload controls on vs off.
//!
//! A single saturable route (`f → g`, simulated link with a serialization
//! bottleneck) is driven open-loop — the sender paces sends at a scripted
//! rate and never waits for completions — at multiples of the link's
//! capacity. Every unit carries its send timestamp; the receiver scores a
//! unit as *goodput* only if it arrives inside the end-to-end budget.
//!
//! Two transport configurations face the same storms:
//!
//! * **shedding on** — bounded outbox (admission control), deadline
//!   shedding, no blind retries: work the link cannot serve in time is
//!   refused or shed *early*, so what is admitted arrives in budget.
//! * **shedding off** — unbounded queues, deadlines ignored: every unit
//!   is accepted and eventually delivered, but once the backlog exceeds
//!   the budget's worth of wire time, *everything* arrives late. Offered
//!   load past saturation collapses goodput toward zero — the classic
//!   congestion collapse the overload layer exists to prevent.
//!
//! The binary gates on the two headline ratios (see [`StormOutcome::ok`]):
//! with shedding, goodput at 2× offered must hold ≥ 80% of saturation
//! throughput; without, it must collapse below 50% — otherwise the
//! comparison is vacuous and the run fails.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::cell::JunctionId;
use csaw_runtime::transport::{DeliverFn, Network, SendError};
use csaw_runtime::{LinkKind, OverloadConfig, RetryPolicy};

use crate::report::Report;

/// Storm parameters. [`knobs`] builds the standard set; `--smoke`
/// compresses the per-point hold for CI.
#[derive(Clone, Debug)]
pub struct StormKnobs {
    /// Wall-clock seconds each (multiplier, config) point is driven.
    pub secs: f64,
    /// End-to-end budget a unit must meet to count as goodput.
    pub budget: Duration,
    /// Simulated link serialization bandwidth (bytes/s). One unit is
    /// ~36 wire bytes, so 40 kB/s puts capacity near 1000 units/s.
    pub bandwidth: u64,
    /// One-way link latency.
    pub latency: Duration,
    /// Nominal saturation rate (units/s) the multipliers scale.
    pub unit_rate: f64,
    /// Offered-load multipliers (× `unit_rate`).
    pub multipliers: Vec<f64>,
    /// Outbox bound for the shedding-on configuration.
    pub outbox_bound: usize,
}

/// Standard knobs; `smoke` compresses each point's hold for CI.
pub fn knobs(smoke: bool) -> StormKnobs {
    StormKnobs {
        secs: if smoke { 0.35 } else { crate::exp_seconds(1.5) },
        budget: Duration::from_millis(25),
        bandwidth: 40_000,
        latency: Duration::from_millis(2),
        unit_rate: 1_000.0,
        multipliers: vec![0.5, 1.0, 2.0, 4.0],
        outbox_bound: 16,
    }
}

/// Whether `CSAW_OVERLOAD_SMOKE=1` requests a compressed run.
pub fn smoke_requested() -> bool {
    std::env::var("CSAW_OVERLOAD_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// One (offered multiplier, configuration) measurement.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// Offered multiplier (× saturation).
    pub mult: f64,
    /// Units the pacing loop attempted to send.
    pub offered: u64,
    /// Sends the transport accepted.
    pub admitted: u64,
    /// Sends refused at admission (`QueueFull` + predicted-late).
    pub refused: u64,
    /// Deliveries shed in flight (expired at dispatch/dequeue).
    pub shed: u64,
    /// Units delivered at all.
    pub delivered: usize,
    /// Units delivered inside the budget.
    pub in_deadline: usize,
    /// In-deadline units per second — the goodput score.
    pub goodput: f64,
    /// Median delivery latency (ms) over everything delivered.
    pub p50_ms: f64,
    /// Tail delivery latency (ms) over everything delivered.
    pub p99_ms: f64,
}

impl PointOutcome {
    /// One human-readable result row.
    pub fn line(&self, label: &str) -> String {
        format!(
            "{label} {:>4.1}x: offered {:>5}, admitted {:>5}, refused {:>5}, shed {:>4}, \
             in-deadline {:>5} ({:>7.1}/s), p50 {:>7.2} ms, p99 {:>8.2} ms",
            self.mult,
            self.offered,
            self.admitted,
            self.refused,
            self.shed,
            self.in_deadline,
            self.goodput,
            self.p50_ms,
            self.p99_ms,
        )
    }
}

/// Drive one storm point: pace `mult × unit_rate` sends/s at the
/// transport for `knobs.secs`, then collect the tail and score.
pub fn run_point(shedding: bool, mult: f64, k: &StormKnobs) -> PointOutcome {
    // The receiver records (send-stamp, latency) pairs; the stamp is
    // carried in the unit itself so the scorer needs no side channel.
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&latencies);
    let epoch = Instant::now();
    let deliver: DeliverFn = Arc::new(move |_to: &JunctionId, u: Update| {
        if let csaw_kv::UpdateKind::Data(Value::Int(sent_us)) = u.kind {
            let now_us = epoch.elapsed().as_micros() as i64;
            sink.lock().unwrap().push(now_us.saturating_sub(sent_us).max(0) as u64);
        }
    });
    let net = Network::new(deliver);
    net.set_link("f", "g", LinkKind::Sim { latency: k.latency, bandwidth: k.bandwidth });
    // Open-loop fail-fast: a refused send is counted and dropped, never
    // blocked on — retry amplification is the sim scenarios' subject.
    net.set_retry_policy(RetryPolicy::disabled());
    if shedding {
        net.set_overload(OverloadConfig {
            outbox_bound: k.outbox_bound,
            shed_expired: true,
            ..Default::default()
        });
    } else {
        // Fully permissive: unbounded queues, deadlines ignored.
        net.set_overload(OverloadConfig::default());
    }
    let to = JunctionId::new("g", "junction");

    let rate = mult * k.unit_rate;
    let mut offered = 0u64;
    let mut admitted = 0u64;
    let mut refused = 0u64;
    while epoch.elapsed().as_secs_f64() < k.secs {
        let due = (epoch.elapsed().as_secs_f64() * rate) as u64;
        while offered < due {
            offered += 1;
            let sent_us = epoch.elapsed().as_micros() as i64;
            let u = Update::data("n", Value::Int(sent_us), "f::j");
            let deadline = shedding.then(|| Instant::now() + k.budget);
            match net.send_with_deadline("f", &to, u, deadline) {
                Ok(()) => admitted += 1,
                Err(SendError::QueueFull) | Err(SendError::DeadlineExpired) => refused += 1,
                Err(e) => panic!("storm send failed unexpectedly: {e}"),
            }
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    // Let in-budget stragglers land. The no-control backlog can take
    // much longer to drain, but by construction everything still queued
    // past this point is already over budget.
    std::thread::sleep(k.budget + Duration::from_millis(150));

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    let budget_us = k.budget.as_micros() as u64;
    let delivered = lat.len();
    let in_deadline = lat.iter().filter(|&&l| l <= budget_us).count();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * p).round() as usize;
        lat[idx] as f64 / 1_000.0
    };
    let stats = net.stats();
    net.shutdown();
    PointOutcome {
        mult,
        offered,
        admitted,
        refused,
        shed: stats.shed,
        delivered,
        in_deadline,
        goodput: in_deadline as f64 / k.secs,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// The full sweep: every multiplier under both configurations, plus the
/// acceptance gates.
#[derive(Clone, Debug)]
pub struct StormOutcome {
    /// Knobs the storm ran with.
    pub knobs: StormKnobs,
    /// Shedding-on points, one per multiplier.
    pub with_shedding: Vec<PointOutcome>,
    /// Shedding-off points, one per multiplier.
    pub without_shedding: Vec<PointOutcome>,
    /// Saturation throughput: shedding-on goodput at 1× offered.
    pub saturation: f64,
    /// Gate violations (empty ⇔ the run passes).
    pub failures: Vec<String>,
}

impl StormOutcome {
    /// True iff every acceptance gate held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// The point at `mult` from one side of the comparison.
    pub fn at(&self, shedding: bool, mult: f64) -> &PointOutcome {
        let side = if shedding { &self.with_shedding } else { &self.without_shedding };
        side.iter()
            .find(|p| (p.mult - mult).abs() < 1e-9)
            .expect("multiplier was swept")
    }

    /// Push the headline numbers into a [`Report`] as notes (the CI
    /// gate re-reads these with `read_notes`).
    pub fn note_into(&self, report: &mut Report) {
        report.note("saturation_goodput_per_s", self.saturation);
        for p in &self.with_shedding {
            report.note(&format!("shed_on_{}x_goodput_per_s", p.mult), p.goodput);
        }
        for p in &self.without_shedding {
            report.note(&format!("shed_off_{}x_goodput_per_s", p.mult), p.goodput);
        }
        let on2 = self.at(true, 2.0);
        let off2 = self.at(false, 2.0);
        if self.saturation > 0.0 {
            report.note("shed_on_2x_vs_saturation", on2.goodput / self.saturation);
            report.note("shed_off_2x_vs_saturation", off2.goodput / self.saturation);
        }
        report.note("shed_on_2x_refused", on2.refused as f64);
        report.note("shed_on_2x_shed", on2.shed as f64);
        report.note("shed_off_2x_p99_ms", off2.p99_ms);
        report.note("ok", if self.ok() { 1.0 } else { 0.0 });
    }
}

/// Run the full storm sweep and evaluate the acceptance gates.
pub fn run_storm(k: &StormKnobs) -> StormOutcome {
    let mut with_shedding = Vec::new();
    let mut without_shedding = Vec::new();
    for &mult in &k.multipliers {
        with_shedding.push(run_point(true, mult, k));
        without_shedding.push(run_point(false, mult, k));
    }
    let saturation = with_shedding
        .iter()
        .find(|p| (p.mult - 1.0).abs() < 1e-9)
        .map(|p| p.goodput)
        .unwrap_or(0.0);

    let mut failures = Vec::new();
    let find = |side: &[PointOutcome], mult: f64| -> PointOutcome {
        side.iter()
            .find(|p| (p.mult - mult).abs() < 1e-9)
            .cloned()
            .expect("multiplier was swept")
    };
    let on2 = find(&with_shedding, 2.0);
    let off2 = find(&without_shedding, 2.0);
    if saturation <= 0.0 {
        failures.push("saturation throughput is zero — the storm never delivered".into());
    } else {
        if on2.goodput < 0.80 * saturation {
            failures.push(format!(
                "graceful degradation failed: with shedding, 2x offered held only \
                 {:.1}/s of {saturation:.1}/s saturation (< 80%)",
                on2.goodput
            ));
        }
        if off2.goodput >= 0.50 * saturation {
            failures.push(format!(
                "no-control baseline failed to collapse: {:.1}/s of {saturation:.1}/s \
                 at 2x offered (≥ 50%) — the comparison is vacuous",
                off2.goodput
            ));
        }
    }
    if on2.refused + on2.shed == 0 {
        failures.push("overload controls never engaged at 2x offered — vacuous".into());
    }
    StormOutcome {
        knobs: k.clone(),
        with_shedding,
        without_shedding,
        saturation,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One compressed shedding-on point past saturation: admission
    /// control must engage, and what it admits must land in budget.
    #[test]
    fn storm_point_sheds_and_still_delivers() {
        let mut k = knobs(true);
        k.secs = 0.25;
        let p = run_point(true, 2.0, &k);
        assert!(p.offered > 0, "pacing loop sent nothing");
        assert!(
            p.refused + p.shed > 0,
            "2x offered never engaged the overload controls: {p:?}"
        );
        assert!(p.in_deadline > 0, "no unit landed inside the budget: {p:?}");
    }
}
