//! Redis experiments: Figs. 23a/23b/23c (behaviour) and 25c/26b/26c
//! (overhead) of §10.

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_arch::caching::{caching, CachingSpec};
use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{Runtime, RuntimeConfig};
use mini_redis::apps::{CacheApp, CheckpointStoreApp, ServerApp, ShardFrontApp, ShardMode};
use mini_redis::hash::shard_of;
use mini_redis::metrics::{CumulativeByClass, Latencies, Throughput};
use mini_redis::workload::{KeyDist, Workload, WorkloadSpec};
use mini_redis::{Command, Store};
use parking_lot::Mutex;

use crate::report::Report;

fn preload(store: &Arc<Mutex<Store>>, keys: usize, value_size: usize) {
    let mut s = store.lock();
    for i in 0..keys {
        s.set(&format!("key:{i}"), vec![0xAB; value_size]);
    }
}

// ---------------------------------------------------------------------
// Fig. 23a — response of query rate to checkpoints (+ crash recovery)
// ---------------------------------------------------------------------

/// "In this experiment we carry out checkpoints at 15-second intervals
/// and simulate a Redis crash to observe its recovery" (§10.1), with
/// time compressed: checkpoints every `seconds/8`, crash at 55%.
pub fn fig23a(seconds: f64) -> Report {
    let spec = CheckpointSpec::default();
    let cp = csaw_core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let prim = ServerApp::new();
    let store = Arc::clone(&prim.store);
    rt.bind_app("Prim", Box::new(prim));
    rt.bind_app("Store", Box::new(CheckpointStoreApp::new()));
    let interval = Duration::from_secs_f64(seconds / 8.0);
    rt.set_policy("Prim", "checkpoint", Policy::Periodic(interval));
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    preload(&store, 20_000, 128);
    let mut wl = Workload::new(WorkloadSpec {
        keyspace: 20_000,
        read_ratio: 0.7,
        value_size: 128,
        ..Default::default()
    });
    let mut tp = Throughput::start(Duration::from_secs_f64(seconds / 60.0));
    let start = Instant::now();
    let crash_at = Duration::from_secs_f64(seconds * 0.55);
    let total = Duration::from_secs_f64(seconds);
    let mut crashed = false;
    let mut crash_time = 0.0;
    let mut recovered_time = 0.0;
    while start.elapsed() < total {
        if !crashed && start.elapsed() >= crash_at {
            crashed = true;
            crash_time = start.elapsed().as_secs_f64();
            // Crash: the primary loses its state.
            rt.crash("Prim");
            store.lock().flush();
            rt.set_policy("Prim", "checkpoint", Policy::OnDemand);
            rt.restart("Prim").unwrap();
            rt.deliver_for_test("Prim", "recover", Update::assert("NeedState", "driver"));
            // Wait for the checkpoint to restore the keyspace.
            let deadline = Instant::now() + Duration::from_secs(10);
            while store.lock().len() < 20_000 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            recovered_time = start.elapsed().as_secs_f64();
            rt.set_policy("Prim", "checkpoint", Policy::Periodic(interval));
            continue;
        }
        let cmd = wl.next();
        let _ = cmd.execute(&mut store.lock());
        tp.hit();
    }
    let mut report = Report::new("fig23a", "Response of Redis query rate to checkpoints");
    report.series(
        "Query Rate",
        "time (s)",
        "queries/s",
        tp.series(),
    );
    report.note("crash_at_s", crash_time);
    report.note("recovered_at_s", recovered_time);
    report.note("checkpoint_interval_s", interval.as_secs_f64());
    report.note("total_queries", tp.total() as f64);
    report.remark(
        "expected shape: periodic dips at checkpoints; deep dip at the crash; \
         rate recovers after restore (paper Fig. 23a)",
    );
    rt.shutdown();
    report
}

// ---------------------------------------------------------------------
// Fig. 23b / Fig. 26c — cumulative requests per shard
// ---------------------------------------------------------------------

fn sharded_cumulative(
    id: &str,
    title: &str,
    mode: ShardMode,
    dist: KeyDist,
    seconds: f64,
) -> Report {
    let n = 4;
    let spec = ShardingSpec { n_backends: n, ..Default::default() };
    let cp = csaw_core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let front = ShardFrontApp::new(mode, n);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let mut handled = Vec::new();
    for i in 1..=n {
        let app = ServerApp::new();
        handled.push(Arc::clone(&app.handled));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    let mut wl = Workload::new(WorkloadSpec {
        keyspace: 4000,
        read_ratio: 0.0, // SETs so sizes register for BySize
        value_size: 64,
        dist,
        ..Default::default()
    });
    let mut cum = CumulativeByClass::start(n, Duration::from_secs_f64(seconds / 50.0));
    let start = Instant::now();
    let total = Duration::from_secs_f64(seconds);
    while start.elapsed() < total {
        let cmd = wl.next();
        let class = match mode {
            ShardMode::ByKey => cmd.key().map_or(0, |k| shard_of(k, n)),
            ShardMode::BySize => match &cmd {
                Command::Set(k, v) => {
                    let _ = k;
                    mini_redis::hash::size_class(v.len()).min(n - 1)
                }
                _ => n - 1,
            },
        };
        requests.lock().push_back(cmd);
        if rt.invoke("Fnt", "junction").is_ok() {
            cum.hit(class);
        }
    }
    let totals = cum.totals();
    let mut report = Report::new(id, title);
    for (i, series) in cum.series().into_iter().enumerate() {
        report.series(
            &format!("Shard {}", i + 1),
            "time (s)",
            "cumulative requests",
            series.into_iter().map(|(x, y)| (x, y as f64)).collect(),
        );
    }
    for (i, t) in totals.iter().enumerate() {
        report.note(&format!("total_shard_{}", i + 1), *t as f64);
    }
    let replies_n = replies.lock().len();
    report.note("replies", replies_n as f64);
    for (i, h) in handled.iter().enumerate() {
        report.note(
            &format!("handled_bck{}", i + 1),
            h.load(std::sync::atomic::Ordering::Relaxed) as f64,
        );
    }
    rt.shutdown();
    report
}

/// Fig. 23b: key-hash (djb2) sharding under an uneven workload — the
/// cumulative curves split in the workload's ratio.
pub fn fig23b(seconds: f64) -> Report {
    let mut r = sharded_cumulative(
        "fig23b",
        "Cumulative requests sharded by key (uneven workload)",
        ShardMode::ByKey,
        KeyDist::Skewed { shards: 4 },
        seconds,
    );
    r.remark("expected shape: four diverging cumulative curves in ~1:2:3:4 ratio (paper Fig. 23b)");
    r
}

/// Fig. 26c: object-size sharding under a size-classed workload.
pub fn fig26c(seconds: f64) -> Report {
    let mut r = sharded_cumulative(
        "fig26c",
        "Cumulative requests sharded by object size",
        ShardMode::BySize,
        KeyDist::SizeClassed,
        seconds,
    );
    r.remark("expected shape: per-class cumulative curves tracking the size mix (paper Fig. 26c)");
    r
}

// ---------------------------------------------------------------------
// Fig. 23c — effect of caching on query rate
// ---------------------------------------------------------------------

fn caching_run(capacity: usize, seconds: f64) -> (Vec<(f64, f64)>, u64, u64) {
    let spec = CachingSpec::default();
    let cp = csaw_core::compile(caching(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let cache = CacheApp::new(capacity);
    let requests = Arc::clone(&cache.requests);
    let hits = Arc::clone(&cache.hits);
    let misses = Arc::clone(&cache.misses);
    rt.bind_app("Cache", Box::new(cache));
    let fun = ServerApp::new();
    let store = Arc::clone(&fun.store);
    rt.bind_app("Fun", Box::new(fun));
    rt.set_policy("Cache", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    preload(&store, 10_000, 256);
    let mut wl = Workload::new(WorkloadSpec::hotspot_90_10());
    let mut tp = Throughput::start(Duration::from_secs_f64(seconds / 40.0));
    let start = Instant::now();
    let total = Duration::from_secs_f64(seconds);
    while start.elapsed() < total {
        requests.lock().push_back(wl.next());
        if rt.invoke("Cache", "junction").is_ok() {
            tp.hit();
        }
    }
    let h = hits.load(std::sync::atomic::Ordering::Relaxed);
    let m = misses.load(std::sync::atomic::Ordering::Relaxed);
    rt.shutdown();
    (tp.series(), h, m)
}

/// "90% of requests are directed at 10% of the entries … the gain from
/// caching on this setup is around 200 queries per second" — we run the
/// same architecture with the cache enabled and disabled.
pub fn fig23c(seconds: f64) -> Report {
    let (with_cache, hits, misses) = caching_run(100_000, seconds);
    let (without_cache, _, _) = caching_run(0, seconds);
    let mean = |s: &[(f64, f64)]| {
        if s.is_empty() {
            0.0
        } else {
            s.iter().map(|(_, y)| y).sum::<f64>() / s.len() as f64
        }
    };
    let mut report = Report::new("fig23c", "Effect of caching on query rate (90/10 skew)");
    let m_with = mean(&with_cache);
    let m_without = mean(&without_cache);
    report.series("With Caching", "time (s)", "queries/s", with_cache);
    report.series("No Caching", "time (s)", "queries/s", without_cache);
    report.note("mean_qps_with_cache", m_with);
    report.note("mean_qps_no_cache", m_without);
    report.note("cache_hits", hits as f64);
    report.note("cache_misses", misses as f64);
    report.note("gain_qps", m_with - m_without);
    report.remark("expected shape: a modest steady QPS gain with caching (paper Fig. 23c)");
    report
}

// ---------------------------------------------------------------------
// Figs. 25c / 26b — latency CDFs of the re-architected systems
// ---------------------------------------------------------------------

fn latency_cdf(ops: usize, reads: bool) -> Vec<(String, Latencies)> {
    let mut out = Vec::new();
    let mut wl_spec = WorkloadSpec {
        keyspace: 5000,
        read_ratio: if reads { 1.0 } else { 0.0 },
        value_size: 128,
        ..Default::default()
    };

    // Baseline: unmodified store, direct execution. Direct ops are
    // sub-microsecond, so we sample over a fixed wall-clock period (the
    // same period the replication run uses, so both see comparable
    // numbers of checkpoint windows).
    {
        let store = Arc::new(Mutex::new(Store::new()));
        preload(&store, 5000, 128);
        let mut wl = Workload::new(wl_spec.clone());
        let mut lat = Latencies::new();
        let end = Instant::now() + Duration::from_secs(2);
        let mut i = 0u64;
        while Instant::now() < end {
            let cmd = wl.next();
            let t0 = Instant::now();
            let _ = cmd.execute(&mut store.lock());
            let dt = t0.elapsed();
            if i.is_multiple_of(97) && lat.len() < ops * 4 {
                lat.record(dt);
            }
            i += 1;
        }
        out.push(("Baseline".to_string(), lat));
    }

    // Replication (checkpoint-based): ops race with periodic full-state
    // serialization — low average, long tail (paper Fig. 25c).
    {
        let spec = CheckpointSpec::default();
        let cp = csaw_core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        let prim = ServerApp::new();
        let store = Arc::clone(&prim.store);
        rt.bind_app("Prim", Box::new(prim));
        rt.bind_app("Store", Box::new(CheckpointStoreApp::new()));
        rt.set_policy("Prim", "checkpoint", Policy::Periodic(Duration::from_millis(100)));
        rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();
        // A heavier keyspace makes each checkpoint hold the store lock
        // long enough to produce the paper's replication tail.
        preload(&store, 30_000, 256);
        let mut wl = Workload::new(WorkloadSpec { keyspace: 30_000, ..wl_spec.clone() });
        let mut lat = Latencies::new();
        let end = Instant::now() + Duration::from_secs(2);
        let mut i = 0u64;
        while Instant::now() < end {
            let cmd = wl.next();
            let t0 = Instant::now();
            let _ = cmd.execute(&mut store.lock());
            let dt = t0.elapsed();
            // Keep every slow sample (the tail) plus a uniform subsample.
            if dt > Duration::from_micros(100) || (i.is_multiple_of(97) && lat.len() < ops * 4) {
                lat.record(dt);
            }
            i += 1;
        }
        rt.shutdown();
        out.push(("Replication".to_string(), lat));
    }

    // Shard by key hash / by object size: ops through the DSL path.
    for (name, mode) in [
        ("Shard by Key Hash", ShardMode::ByKey),
        ("Shard by Object Size", ShardMode::BySize),
    ] {
        let spec = ShardingSpec::default();
        let cp = csaw_core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
        let rt = Runtime::new(&cp, RuntimeConfig::default());
        let front = ShardFrontApp::new(mode, 4);
        let requests = Arc::clone(&front.requests);
        rt.bind_app("Fnt", Box::new(front));
        let mut stores = Vec::new();
        for i in 1..=4 {
            let app = ServerApp::new();
            stores.push(Arc::clone(&app.store));
            rt.bind_app(&format!("Bck{i}"), Box::new(app));
        }
        rt.set_policy("Fnt", "junction", Policy::OnDemand);
        rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();
        // Preload every shard so GETs hit regardless of routing.
        for s in &stores {
            preload(s, 5000, 128);
        }
        wl_spec.seed += 1;
        let mut wl = Workload::new(wl_spec.clone());
        let mut lat = Latencies::new();
        for _ in 0..ops {
            let cmd = wl.next();
            requests.lock().push_back(cmd);
            let t0 = Instant::now();
            if rt.invoke("Fnt", "junction").is_ok() {
                lat.record(t0.elapsed());
            }
        }
        rt.shutdown();
        out.push((name.to_string(), lat));
    }
    out
}

fn cdf_report(id: &str, title: &str, ops: usize, reads: bool) -> Report {
    let mut report = Report::new(id, title);
    for (name, lat) in latency_cdf(ops, reads) {
        report.series(&name, "latency (ms)", "cumulative probability", {
            lat.cdf(100)
        });
        if let (Some(p50), Some(p99)) = (lat.quantile(0.5), lat.quantile(0.99)) {
            report.note(&format!("{name}_p50_us"), p50.as_micros() as f64);
            report.note(&format!("{name}_p99_us"), p99.as_micros() as f64);
        }
    }
    report.remark(
        "expected shape: overheads noticeable but low vs baseline; \
         replication shows the longest tail (paper Figs. 25c/26b)",
    );
    report
}

/// Fig. 25c: GET latency CDFs.
pub fn fig25c(ops: usize) -> Report {
    cdf_report("fig25c", "Redis GET latency CDFs", ops, true)
}

/// Fig. 26b: SET latency CDFs.
pub fn fig26b(ops: usize) -> Report {
    cdf_report("fig26b", "Redis SET latency CDFs", ops, false)
}
