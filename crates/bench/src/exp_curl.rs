//! cURL experiments: Figs. 25a/25b (small files + overhead %) and 26a
//! (large files) of §10.3.
//!
//! The paper "generated two binaries: for the local and remote instances"
//! and measured download time (i) unmodified, (ii) with both binaries in
//! the same VM, (iii) across VMs over 1GbE. Here the locality contrast
//! maps onto transports: in-process channel vs a real TCP loopback
//! socket between the `Act` and `Aud` instances.

use std::sync::Arc;
use std::time::Duration;

use csaw_arch::snapshot::{snapshot, SnapshotSpec};
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{LinkKind, Runtime, RuntimeConfig};
use mini_curl::apps::{AuditorApp, CurlApp};
use mini_curl::LinkModel;
use mini_redis::metrics::mean_std;

use crate::report::Report;

/// One measured configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Config {
    /// Unmodified client.
    Original,
    /// Audited, auditor co-located (Direct channel).
    SameVm,
    /// Audited, auditor across a TCP loopback socket.
    CrossVm,
}

impl Config {
    fn label(self) -> &'static str {
        match self {
            Config::Original => "Original",
            Config::SameVm => "Same VM",
            Config::CrossVm => "Cross VMs",
        }
    }
}

/// Time one download of `size` bytes under a configuration. Returns
/// seconds.
fn timed_download(config: Config, size: u64, link: LinkModel) -> f64 {
    match config {
        Config::Original => {
            let mut client = mini_curl::Client::new(link);
            client
                .download("http://files.example/x", size, |_| {})
                .as_secs_f64()
        }
        Config::SameVm | Config::CrossVm => {
            let spec = SnapshotSpec::default();
            let cp = csaw_core::compile(snapshot(&spec), &LoadConfig::new()).unwrap();
            let rt = Runtime::new(&cp, RuntimeConfig::default());
            if config == Config::CrossVm {
                rt.set_link("Act", "Aud", LinkKind::Tcp);
                rt.set_link("Aud", "Act", LinkKind::Tcp);
            }
            let act = CurlApp::new(link);
            let jobs = Arc::clone(&act.jobs);
            rt.bind_app("Act", Box::new(act));
            let aud = AuditorApp::new();
            let log = Arc::clone(&aud.log);
            rt.bind_app("Aud", Box::new(aud));
            rt.set_policy("Act", "junction", Policy::OnDemand);
            rt.run_main(vec![Value::Duration(Duration::from_secs(10))]).unwrap();
            jobs.lock().push(("http://files.example/x".into(), size));
            let t0 = std::time::Instant::now();
            rt.invoke("Act", "junction").expect("audited download");
            let elapsed = t0.elapsed().as_secs_f64();
            // The audit record must have landed (integrity property).
            assert!(!log.lock().is_empty(), "audit record missing");
            rt.shutdown();
            elapsed
        }
    }
}

fn sweep(id: &str, title: &str, sizes_mb: &[f64], reps: usize) -> Report {
    let link = LinkModel::gigabit_scaled();
    let mut report = Report::new(id, title);
    let mut per_config: Vec<(Config, Vec<(f64, f64)>)> = Vec::new();
    let mut originals: Vec<(f64, f64)> = Vec::new();
    for config in [Config::Original, Config::SameVm, Config::CrossVm] {
        let mut points = Vec::new();
        for &mb in sizes_mb {
            let size = (mb * 1024.0 * 1024.0) as u64;
            let samples: Vec<f64> = (0..reps)
                .map(|_| timed_download(config, size, link))
                .collect();
            let (mean, std) = mean_std(&samples);
            points.push((mb, mean));
            report.note(&format!("{}_{}mb_std_s", config.label(), mb), std);
            if config == Config::Original {
                originals.push((mb, mean));
            }
        }
        per_config.push((config, points));
    }
    for (config, points) in &per_config {
        report.series(
            config.label(),
            "file size (MB)",
            "download time (s)",
            points.clone(),
        );
    }
    // Overhead % vs original (the Fig. 25b view).
    for (config, points) in &per_config {
        if *config == Config::Original {
            continue;
        }
        let overhead: Vec<(f64, f64)> = points
            .iter()
            .zip(originals.iter())
            .map(|(&(mb, t), &(_, t0))| (mb, ((t - t0) / t0.max(1e-9)) * 100.0))
            .collect();
        report.series(
            &format!("{} overhead %", config.label()),
            "file size (MB)",
            "time increase (%)",
            overhead,
        );
    }
    report.remark(
        "expected shape: audited configs cost more for small files; the overhead \
         percentage falls as file size grows (amortization — paper Figs. 25a/25b); \
         Cross-VM ≥ Same-VM",
    );
    report
}

/// Figs. 25a/25b: small files, 1KB–10MB.
pub fn fig25ab(reps: usize) -> Report {
    sweep(
        "fig25ab",
        "cURL download time & overhead, small files (original / same-VM / cross-VM audit)",
        &[0.001, 0.01, 0.1, 1.0, 10.0],
        reps,
    )
}

/// Fig. 26a: large files, 20MB–1.2GB (scaled down by default; pass
/// `--full` to the binary for the full sweep).
pub fn fig26a(reps: usize, full: bool) -> Report {
    let sizes: &[f64] = if full {
        &[20.0, 50.0, 100.0, 400.0, 700.0, 1200.0]
    } else {
        &[20.0, 50.0, 100.0]
    };
    sweep(
        "fig26a",
        "cURL download time, large files (original / same-VM / cross-VM audit)",
        sizes,
        reps,
    )
}
