//! Trace-conformance validation across the architecture catalogue.
//!
//! Every §5/§7 architecture is driven live with tracing enabled; the
//! recorded JSONL trace is then replayed through the
//! `csaw-semantics` conformance checker against the event structure
//! denoted from the *same* compiled program. A passing run means the
//! observed execution was a valid configuration: causally closed,
//! conflict-free, and obeying the §8 local-priority update rule.
//!
//! The snapshot / sharding / parallel-sharding / caching architectures
//! get dedicated drivers here; the fail-over family (failover, watched,
//! checkpoint) reuses the chaos soaks in conformance mode with a light
//! schedule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_core::program::{CompiledProgram, LoadConfig};
use csaw_core::value::Value;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{HostCtx, InstanceApp, Runtime, RuntimeConfig};
use csaw_semantics::{check_jsonl, denote_program, ConformanceOptions, DenoteConfig};
use mini_curl::apps::{AuditorApp, CurlApp};
use mini_curl::LinkModel;
use mini_redis::apps::{CacheApp, ServerApp, ShardFrontApp, ShardMode};
use mini_redis::Command;

use crate::chaos::{soak_checkpoint, soak_failover, soak_watched, ChaosSchedule, SoakOutcome};

/// The digest of one conformance replay.
#[derive(Clone, Debug)]
pub struct ConformanceSummary {
    /// No violations (parse errors count as violations).
    pub ok: bool,
    /// Trace records replayed.
    pub events: usize,
    /// Rule violations found.
    pub violations: usize,
    /// Activation labels matched to denoted events.
    pub matched: usize,
    /// Activation labels with no denoted candidate (informational).
    pub unmatched: usize,
    /// Events evicted from the trace ring before draining.
    pub dropped: u64,
    /// First few violations (or the parse error), one per line.
    pub detail: String,
}

/// Drain a runtime's trace and replay it against the event structures
/// denoted from the same compiled program. Returns the digest and the
/// raw JSONL (for artifact dumps on failure).
pub fn check_runtime_trace(rt: &Runtime, cp: &CompiledProgram) -> (ConformanceSummary, String) {
    let jsonl = rt.trace_jsonl();
    let dropped = rt.trace_dropped();
    let sem = denote_program(cp, &DenoteConfig::default());
    // If the ring evicted events, a delivery's matching send may have
    // been evicted rather than never sent — the pairing rule is only
    // sound over a complete trace.
    let opts = ConformanceOptions { require_send_for_apply: dropped == 0 };
    let summary = match check_jsonl(&jsonl, Some(&sem), &opts) {
        Ok(report) => ConformanceSummary {
            ok: report.ok(),
            events: report.events,
            violations: report.violations.len(),
            matched: report.matched_labels,
            unmatched: report.unmatched_labels,
            dropped,
            detail: report
                .violations
                .iter()
                .take(5)
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        },
        Err(e) => ConformanceSummary {
            ok: false,
            events: 0,
            violations: 1,
            matched: 0,
            unmatched: 0,
            dropped,
            detail: format!("trace parse error: {e}"),
        },
    };
    (summary, jsonl)
}

/// One architecture's conformance verdict.
#[derive(Clone, Debug)]
pub struct ArchConformance {
    /// Architecture label.
    pub arch: String,
    /// The replay digest.
    pub summary: ConformanceSummary,
    /// The recorded trace (dump on failure).
    pub jsonl: String,
}

impl ArchConformance {
    /// One status line for console output.
    pub fn line(&self) -> String {
        let s = &self.summary;
        format!(
            "{:18} {:5}  events={:<6} matched={:<5} unmatched={:<4} dropped={}",
            self.arch,
            if s.ok { "OK" } else { "FAIL" },
            s.events,
            s.matched,
            s.unmatched,
            s.dropped,
        )
    }
}

fn finish(arch: &str, rt: &Runtime, cp: &CompiledProgram) -> ArchConformance {
    let (summary, jsonl) = check_runtime_trace(rt, cp);
    ArchConformance { arch: arch.to_string(), summary, jsonl }
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

// ---------------------------------------------------------------------
// §5.1 snapshot (audited curl)
// ---------------------------------------------------------------------

/// A few audited downloads through the snapshot architecture.
pub fn conf_snapshot() -> ArchConformance {
    use csaw_arch::snapshot::{snapshot, SnapshotSpec};

    let spec = SnapshotSpec::default();
    let cp = csaw_core::compile(snapshot(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    rt.set_tracing(true);
    let act = CurlApp::new(LinkModel::gigabit_scaled());
    let jobs = Arc::clone(&act.jobs);
    rt.bind_app("Act", Box::new(act));
    let aud = AuditorApp::new();
    let log = Arc::clone(&aud.log);
    rt.bind_app("Aud", Box::new(aud));
    rt.set_policy("Act", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    for i in 0..4u64 {
        jobs.lock().push((format!("http://files.example/{i}"), 32 * 1024));
        let _ = rt.invoke("Act", "junction");
    }
    wait_until(Duration::from_secs(5), || log.lock().len() >= 4);
    rt.shutdown();
    finish("snapshot", &rt, &cp)
}

// ---------------------------------------------------------------------
// §5.2 sharding
// ---------------------------------------------------------------------

/// A dozen key-hash-sharded commands.
pub fn conf_sharding() -> ArchConformance {
    use csaw_arch::sharding::{sharding, ShardingSpec};

    let n = 4;
    let spec = ShardingSpec { n_backends: n, ..Default::default() };
    let cp = csaw_core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    rt.set_tracing(true);
    let front = ShardFrontApp::new(ShardMode::ByKey, n);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    for i in 1..=n {
        rt.bind_app(&format!("Bck{i}"), Box::new(ServerApp::new()));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    let mut sent = 0usize;
    for i in 0..12u8 {
        requests.lock().push_back(Command::Set(format!("key{i}"), vec![i; 16]));
        if rt.invoke("Fnt", "junction").is_ok() {
            sent += 1;
        }
    }
    wait_until(Duration::from_secs(5), || replies.lock().len() >= sent);
    rt.shutdown();
    finish("sharding", &rt, &cp)
}

// ---------------------------------------------------------------------
// §5.3 parallel sharding
// ---------------------------------------------------------------------

/// Front app for the parallel-sharding run: `Choose` selects a fixed
/// subset of back-ends for the fan-out.
struct ParFront {
    subset: Vec<String>,
}

impl InstanceApp for ParFront {
    fn host_call(&mut self, name: &str, ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "Choose" {
            let elems: Vec<csaw_core::names::SetElem> = self
                .subset
                .iter()
                .map(|s| csaw_core::names::SetElem::Instance(s.clone()))
                .collect();
            ctx.set_subset("tgt", elems)?;
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(7))
    }
    fn restore(&mut self, _key: &str, _value: &Value) -> Result<(), String> {
        Ok(())
    }
}

/// Back-end app: counts `Handle` calls.
struct CountingBack {
    handled: Arc<AtomicU64>,
}

impl InstanceApp for CountingBack {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "Handle" {
            self.handled.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(0))
    }
    fn restore(&mut self, _key: &str, _value: &Value) -> Result<(), String> {
        Ok(())
    }
}

/// A few subset fan-outs through the parallel-sharding architecture.
pub fn conf_parallel_sharding() -> ArchConformance {
    use csaw_arch::parallel_sharding::{parallel_sharding, ParallelShardingSpec};

    let spec = ParallelShardingSpec::default();
    let cp = csaw_core::compile(parallel_sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    rt.set_tracing(true);
    rt.bind_app("Fnt", Box::new(ParFront { subset: vec!["Bck1".into(), "Bck3".into()] }));
    let counters: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, c) in counters.iter().enumerate() {
        rt.bind_app(
            &format!("Bck{}", i + 1),
            Box::new(CountingBack { handled: Arc::clone(c) }),
        );
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    for round in 1..=3u64 {
        let _ = rt.invoke("Fnt", "junction");
        wait_until(Duration::from_secs(5), || {
            counters[0].load(Ordering::SeqCst) >= round
                && counters[2].load(Ordering::SeqCst) >= round
        });
    }
    rt.shutdown();
    finish("parallel_sharding", &rt, &cp)
}

// ---------------------------------------------------------------------
// §5.4 caching
// ---------------------------------------------------------------------

/// Writes then repeated reads through the caching architecture (both
/// hit and miss paths fire).
pub fn conf_caching() -> ArchConformance {
    use csaw_arch::caching::{caching, CachingSpec};

    let spec = CachingSpec::default();
    let cp = csaw_core::compile(caching(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    rt.set_tracing(true);
    let cache = CacheApp::new(64);
    let requests = Arc::clone(&cache.requests);
    let replies = Arc::clone(&cache.replies);
    rt.bind_app("Cache", Box::new(cache));
    rt.bind_app("Fun", Box::new(ServerApp::new()));
    rt.set_policy("Cache", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    let mut sent = 0usize;
    for i in 0..4u8 {
        requests.lock().push_back(Command::Set(format!("k{i}"), vec![i; 32]));
        if rt.invoke("Cache", "junction").is_ok() {
            sent += 1;
        }
    }
    for _ in 0..2 {
        for i in 0..4u8 {
            requests.lock().push_back(Command::Get(format!("k{i}")));
            if rt.invoke("Cache", "junction").is_ok() {
                sent += 1;
            }
        }
    }
    wait_until(Duration::from_secs(5), || replies.lock().len() >= sent);
    rt.shutdown();
    finish("caching", &rt, &cp)
}

// ---------------------------------------------------------------------
// Fail-over family via the chaos soaks
// ---------------------------------------------------------------------

/// A light chaos schedule for conformance runs: the stock faults but no
/// partition window to wait out, few requests, fast pacing.
fn light_schedule(seed: u64) -> ChaosSchedule {
    ChaosSchedule::acceptance(seed)
        .with_requests(24)
        .without_partition()
        .with_pace(Duration::from_millis(2))
        .with_conformance(true)
}

fn from_soak(outcome: SoakOutcome) -> ArchConformance {
    let summary = outcome
        .conformance
        .expect("soak ran with conformance enabled");
    ArchConformance {
        arch: outcome.arch,
        summary,
        jsonl: outcome.trace_jsonl.unwrap_or_default(),
    }
}

/// Run all seven catalogue architectures and collect their verdicts.
pub fn conformance_all(seed: u64) -> Vec<ArchConformance> {
    vec![
        conf_snapshot(),
        conf_sharding(),
        conf_parallel_sharding(),
        conf_caching(),
        from_soak(soak_failover(&light_schedule(seed))),
        from_soak(soak_watched(&light_schedule(seed))),
        from_soak(soak_checkpoint(&light_schedule(seed))),
    ]
}
