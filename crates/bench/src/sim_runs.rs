//! Deterministic-simulation schedules: the parametric scenario family
//! behind `csaw-sim`.
//!
//! Every scenario builds a program *family* indexed by `(shards: N,
//! replicas: K)` on a [`Clock::simulated`] runtime, single-threaded
//! under a [`SimExecutor`], with oracles written against N/K rather
//! than a fixed topology:
//!
//! * [`Scenario::Failover`] — N independent §7.4 supervised fail-over
//!   groups (`f{g}`/`o{g}`/`s{g}`); `min(K, N)` preferred back-ends are
//!   partitioned away mid-traffic, heartbeats raise suspicion, the
//!   supervisor promotes each group's spare (fencing the zombie), the
//!   partitions heal and the zombies are poked. Oracles: a counting
//!   bound on lost acknowledged writes per group, no poke-induced
//!   split-brain, fencing evidence, cross-epoch conformance.
//! * [`Scenario::Reshard`] — a live `sharding(N) → sharding(N+K)`
//!   reconfiguration lands mid-schedule under request traffic; the
//!   migrate closure re-homes every store entry by the new shard
//!   formula. Oracles: every acknowledged key readable at exactly one
//!   store (and, once the reshard lands, at the `shard_of(key, N+K)`
//!   home), no lost acked writes, conformance across both epochs.
//! * [`Scenario::Restore`] — the checkpoint mesh (`checkpoint_mesh(N,
//!   K)`: N primaries × K store replicas); `p1` crashes between
//!   scripted checkpoints, the supervisor restarts it and triggers
//!   recovery. Oracles: the recovered state is genuinely checkpointed
//!   and not older than the crash landmark, every replica blob is a
//!   genuinely checkpointed state.
//! * [`Scenario::Churn`] — K alternating grow/shrink reconfiguration
//!   waves over the sharded architecture under sustained traffic, each
//!   wave re-homing the keyspace. Same oracles as `Reshard`, with the
//!   conformance chain spanning every epoch.
//! * [`Scenario::Planned`] — planner-driven multi-phase resharding:
//!   a grow wave `sharding(N) → sharding(N+K)` and a shrink wave back
//!   to N (true instance removal), each compiled into a phased `Plan`
//!   under `max_concurrent_quiesce = 1` and executed through
//!   `Runtime::reconfigure_plan`. Extra oracles on top of the sharded
//!   ones: every wave's plan passes the semantics-side plan-validity
//!   checker (`check_plan`), and no *executed* phase quiesces more
//!   instances than the constraint allows; the conformance chain gets
//!   one epoch per phase, so cross-epoch conformance is judged at
//!   every phase boundary, not just at wave ends.
//! * [`Scenario::Overload`] — N open-loop storm pipelines
//!   (`storm_pipeline(N)`: a never-blocking pump fanning units out to
//!   two sinks over bandwidth-limited links) driven at ~2K× the
//!   saturated routes' capacity, every request under a per-request
//!   ingress budget (`otherwise[d]`, which the interpreter stamps onto
//!   each send). The runtime's overload layer — bounded outboxes,
//!   deadline shedding, retry budgets, and a control-plane priority
//!   lane for heartbeats — must degrade gracefully. Oracles: a
//!   per-group goodput floor at overload, *zero* false crash
//!   classifications (nothing actually failed, so the supervisor must
//!   stay quiet), post-storm probe units all land (no congestion
//!   collapse), overload control actually engaged (sheds + queue-full
//!   refusals non-vacuous), and shed-aware conformance.
//!
//! Each scenario carries a deliberate *fence-off* bug mode
//! ([`ScheduleSpec::buggy`], or the `fence-off-bug` cargo feature which
//! compiles the bug in unconditionally): fail-over skips zombie
//! fencing (split-brain), the sharded scenarios copy instead of drain
//! re-homed entries (double-homed keys), restore skips parking the
//! checkpoint junction across the crash (a restart-time checkpoint of
//! reset state races recovery), overload drops the control-plane
//! priority lane (heartbeats are refused by the data plane's bounded
//! outboxes on saturated routes, so the failure detector starves and
//! the supervisor falsely repairs a healthy pump). The oracle must
//! catch every one.
//!
//! A red schedule serializes to a JSON [`Artifact`] (pinned to the
//! instance set it was recorded against); [`replay_schedule`]
//! re-executes it, [`shrink_failure`] minimizes it, and
//! [`dfs_schedule`] hands the whole scenario to the runtime's bounded
//! DFS/DPOR explorer for exhaustive small-model checking.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use csaw_arch::checkpoint::{checkpoint_mesh, mesh_primary, mesh_store};
use csaw_arch::overload::{storm_names, storm_pipeline};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_arch::watched::supervised_failover_groups;
use csaw_core::expr::Arg;
use csaw_core::names::JRef;
use csaw_core::plan::{plan_break_before_make, plan_reconfiguration, PlanConstraints};
use csaw_core::program::{CompiledProgram, LoadConfig};
use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::runtime::Policy;
use csaw_runtime::supervisor::RepairAction;
use csaw_runtime::{
    Artifact, Clock, DfsConfig, DfsStats, FailureClass, FaultPlan, HeartbeatConfig,
    HostCtx, InstanceApp, LinkKind, OverloadConfig, ReconfigSpec, RepairPolicy, RetryPolicy,
    Runtime, RuntimeConfig, SimConfig, SimExecutor, SimOutcome, StepRecord, Supervisor,
    SupervisorConfig,
};
use mini_redis::apps::{ServerApp, ShardFrontApp, ShardMode};
use mini_redis::hash::shard_of;
use mini_redis::{Command, Reply, Store};
use parking_lot::Mutex;

use crate::chaos::KvFront;
use crate::conformance_runs::ConformanceSummary;
use crate::self_healing::check_repair_chain;

/// Front-end `wait` deadline (virtual).
const FRONT_TIMEOUT: Duration = Duration::from_millis(200);
/// Per-request invoke deadline (virtual). Kept short: a blocked invoke
/// runs nested, where supervisor polls cannot fire, so a long deadline
/// would starve detection.
const REQUEST_DEADLINE: Duration = Duration::from_millis(80);

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The scenario families the simulator can schedule. All are
/// parametric in `(shards, replicas)` — see the module doc for what
/// each axis means per scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// N supervised fail-over groups, `min(K, N)` of them partitioned.
    Failover,
    /// One live `sharding(N) → sharding(N+K)` re-homing reconfiguration.
    Reshard,
    /// `checkpoint_mesh(N, K)` with a crash + restart-and-recover repair.
    Restore,
    /// K alternating grow/shrink resharding waves under traffic.
    Churn,
    /// Planner-driven phased grow + shrink under a quiesce bound.
    Planned,
    /// N open-loop storm pipelines at ~2K× saturation under ingress
    /// budgets; graceful degradation + control-plane isolation.
    Overload,
}

impl Scenario {
    /// Every scenario, in sweep order.
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::Failover,
            Scenario::Reshard,
            Scenario::Restore,
            Scenario::Churn,
            Scenario::Planned,
            Scenario::Overload,
        ]
    }

    /// Stable CLI / report label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Failover => "failover",
            Scenario::Reshard => "reshard",
            Scenario::Restore => "restore",
            Scenario::Churn => "churn",
            Scenario::Planned => "planned",
            Scenario::Overload => "overload",
        }
    }

    /// Inverse of [`Scenario::label`].
    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|sc| sc.label() == s)
    }
}

/// One schedule's parameters. Everything that shapes the run is here,
/// so `(spec, steps)` fully determines a replay.
#[derive(Clone, Debug)]
pub struct ScheduleSpec {
    /// Which scenario family to build.
    pub scenario: Scenario,
    /// Topology width N (groups / initial shards / primaries).
    pub shards: usize,
    /// Redundancy / churn depth K (partitioned groups / joining shards
    /// / store replicas / reconfiguration waves).
    pub replicas: usize,
    /// Seed for the explorer's random walk *and* the link-chaos dice.
    pub seed: u64,
    /// Whether the scenario's ordering fence is up. `false`
    /// re-introduces the scenario's deliberate bug on purpose; the
    /// oracle must catch it.
    pub fence: bool,
    /// Mild seeded link chaos (reordering) on top of scripted faults.
    pub chaos: bool,
    /// Step budget per schedule.
    pub max_steps: usize,
    /// Virtual-time horizon.
    pub horizon: Duration,
}

impl ScheduleSpec {
    /// The standard schedule for a scenario at `(shards, replicas)`:
    /// fence on, chaos on, budget and horizon scaled to the topology.
    pub fn new(scenario: Scenario, shards: usize, replicas: usize, seed: u64) -> ScheduleSpec {
        assert!(shards >= 1 && replicas >= 1, "grid axes are 1-based");
        let (n, k) = (shards as u64, replicas as u64);
        let cut = n.min(k);
        let (max_steps, horizon) = match scenario {
            Scenario::Failover => (6000 + 5000 * (shards - 1), ms(1500 + 30 * (cut - 1))),
            Scenario::Reshard => (9000 + 1500 * shards, ms(900)),
            Scenario::Restore => (9000 + 2500 * shards * replicas, ms(900)),
            Scenario::Churn => (9000 + 3000 * replicas, ms(250 + 200 * (k - 1) + 450)),
            // Two planner waves (grow at 300 ms, shrink at 600 ms),
            // each an adds/changes/removals phase sequence.
            Scenario::Planned => (9000 + 2500 * (shards + replicas), ms(900)),
            // A 400 ms storm at ~2K× saturation per group, then a
            // post-storm probe window; the step budget scales with the
            // offered load (N groups × K storm multiplier).
            Scenario::Overload => (20_000 + 30_000 * shards * replicas, ms(600)),
        };
        ScheduleSpec {
            scenario,
            shards,
            replicas,
            seed,
            fence: true,
            chaos: true,
            max_steps,
            horizon,
        }
    }

    /// The original single-group fail-over schedule for one seed.
    pub fn for_seed(seed: u64) -> ScheduleSpec {
        ScheduleSpec::new(Scenario::Failover, 1, 1, seed)
    }

    /// The deliberate-bug variant: identical schedule, fence disabled.
    pub fn buggy(seed: u64) -> ScheduleSpec {
        ScheduleSpec { fence: false, ..ScheduleSpec::for_seed(seed) }
    }

    /// Fence-off variant of any spec.
    pub fn with_fence_off(mut self) -> ScheduleSpec {
        self.fence = false;
        self
    }

    /// Override the step budget — the knob the exhaustive explorer
    /// turns to keep small-model DFS trees finite.
    pub fn with_budget(mut self, max_steps: usize) -> ScheduleSpec {
        self.max_steps = max_steps;
        self
    }
}

/// Whether the spec's fence survives the build. The `fence-off-bug`
/// cargo feature compiles every scenario's deliberate ordering bug in
/// unconditionally, so CI can prove the oracles catch it on an
/// otherwise-default spec.
fn fence_enabled(spec: &ScheduleSpec) -> bool {
    !cfg!(feature = "fence-off-bug") && spec.fence
}

/// What one schedule run produced, plus the oracle's verdict.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// The seed the schedule ran under.
    pub seed: u64,
    /// The recorded schedule (explore) or the re-recorded one (replay).
    pub steps: Vec<StepRecord>,
    /// Sorted instance names of the *boot* program — what an
    /// [`Artifact`] is pinned to.
    pub instances: Vec<String>,
    /// Virtual time covered.
    pub virtual_ms: f64,
    /// The walk hit its step budget before the horizon.
    pub truncated: bool,
    /// Requests (or scripted ticks, for `Restore`) that landed.
    pub acked: usize,
    /// Restored OK acks in excess of durable serve footprints — must
    /// be 0 (every acknowledged write is backed by a durable serve).
    pub lost_acked: usize,
    /// A healed zombie's stale reply landed — must stay false.
    pub stale_applied: bool,
    /// Every scripted repair / reconfiguration wave verified.
    pub repair_ok: bool,
    /// Sends rejected by the fence over the run.
    pub fenced_sends: u64,
    /// Instances still held at the horizon — must be 0.
    pub held_at_end: usize,
    /// One line per supervisor repair: `instance class action ok×attempts`.
    pub repairs: Vec<String>,
    /// Cross-epoch conformance verdict.
    pub conformance: ConformanceSummary,
    /// `None` if every invariant held; otherwise what broke.
    pub failure: Option<String>,
    /// The recorded trace (virtual timestamps — byte-stable per seed).
    pub trace_jsonl: String,
}

impl ScheduleOutcome {
    /// Package a red schedule for replay.
    pub fn artifact(&self) -> Option<Artifact> {
        self.failure.as_ref().map(|reason| Artifact {
            seed: self.seed,
            reason: reason.clone(),
            instances: self.instances.clone(),
            steps: self.steps.clone(),
        })
    }
}

/// What the oracle measured over one finished run. [`ScheduleOutcome`]
/// is this plus the walk's own numbers.
struct Verdict {
    acked: usize,
    lost_acked: usize,
    stale_applied: bool,
    repair_ok: bool,
    fenced_sends: u64,
    held_at_end: usize,
    repairs: Vec<String>,
    conformance: ConformanceSummary,
    failure: Option<String>,
    trace_jsonl: String,
}

/// One wired scenario: an executor with its injections registered, a
/// `fresh` closure that resets all driver-shared state and builds a new
/// runtime from the boot program, and the parametric oracle. The
/// injections and the oracle share state through `Arc`s that `fresh`
/// re-zeroes, so the same `Scene` drives explore, replay, *and* the
/// many re-executions of a DFS run.
struct Scene {
    exec: SimExecutor,
    boot_instances: Vec<String>,
    fresh: Box<dyn Fn() -> Runtime>,
    check: OracleFn,
}

/// The parametric oracle: inspects the final runtime + sim outcome and
/// returns the verdict (failure reason, repair status, counters).
type OracleFn = Box<dyn Fn(&Runtime, &SimOutcome) -> Verdict>;

fn wire(spec: &ScheduleSpec) -> Scene {
    match spec.scenario {
        Scenario::Failover => wire_failover(spec),
        Scenario::Reshard | Scenario::Churn => wire_sharded(spec),
        Scenario::Restore => wire_restore(spec),
        Scenario::Planned => wire_planned(spec),
        Scenario::Overload => wire_overload(spec),
    }
}

/// Explore one schedule from the spec's seed.
pub fn run_schedule(spec: &ScheduleSpec) -> ScheduleOutcome {
    drive(spec, None)
}

/// Re-execute a recorded schedule (from an [`Artifact`] or a shrink
/// candidate) against a fresh runtime built from the same spec.
pub fn replay_schedule(spec: &ScheduleSpec, steps: &[StepRecord]) -> ScheduleOutcome {
    drive(spec, Some(steps))
}

/// Minimize a red schedule: greedy chunk deletion, re-replaying the
/// candidate and re-running the oracle each time. A candidate must
/// fail for the artifact's exact reason — deleting an `inj:` record
/// suppresses that injection on replay, and a schedule with no crash
/// or no reconfigure wave can go red on a *different* (liveness)
/// oracle, which would shrink past the bug being minimized.
pub fn shrink_failure(spec: &ScheduleSpec, artifact: &Artifact) -> Vec<StepRecord> {
    csaw_runtime::sim::shrink_steps(&artifact.steps, |cand| {
        replay_schedule(spec, cand).failure.as_deref() == Some(artifact.reason.as_str())
    })
}

/// Exhaustively explore the scenario's schedule tree up to the spec's
/// step budget: bounded DFS with sleep-set partial-order reduction and
/// state-fingerprint revisit pruning (both switchable off through
/// `dfs` for the naive baseline). Every schedule re-runs the full
/// parametric oracle; red schedules come back as replayable artifacts.
pub fn dfs_schedule(spec: &ScheduleSpec, dfs: &DfsConfig) -> DfsStats {
    let scene = wire(spec);
    scene.exec.dfs_explore(
        dfs,
        || ((scene.fresh)(), ()),
        |_, rt, out| match (scene.check)(rt, out).failure {
            Some(reason) => Err(reason),
            None => Ok(()),
        },
    )
}

fn drive(spec: &ScheduleSpec, replay: Option<&[StepRecord]>) -> ScheduleOutcome {
    let scene = wire(spec);
    let rt = (scene.fresh)();
    let out = match replay {
        None => scene.exec.explore(&rt),
        Some(steps) => scene.exec.replay(&rt, steps),
    };
    let v = (scene.check)(&rt, &out);
    rt.shutdown();
    ScheduleOutcome {
        seed: spec.seed,
        steps: out.steps,
        instances: scene.boot_instances,
        virtual_ms: out.virtual_time.as_secs_f64() * 1e3,
        truncated: out.truncated,
        acked: v.acked,
        lost_acked: v.lost_acked,
        stale_applied: v.stale_applied,
        repair_ok: v.repair_ok,
        fenced_sends: v.fenced_sends,
        held_at_end: v.held_at_end,
        repairs: v.repairs,
        conformance: v.conformance,
        failure: v.failure,
        trace_jsonl: v.trace_jsonl,
    }
}

fn repair_lines(records: &[csaw_runtime::RepairRecord]) -> Vec<String> {
    records
        .iter()
        .map(|r| {
            format!(
                "{} {} {} ok={} attempts={}",
                r.instance,
                r.class.label(),
                r.action,
                r.ok,
                r.attempts
            )
        })
        .collect()
}

// =====================================================================
// Fail-over groups
// =====================================================================

/// Deterministic request workload for fail-over group `g`: a handful
/// of unique-key SETs, one GET. Index is the injection's position in
/// the group's request series.
fn fo_command(g: usize, i: usize) -> Command {
    if i == 2 {
        Command::Get(fo_key(g, 0))
    } else {
        Command::Set(fo_key(g, i), fo_value(g, i).into_bytes())
    }
}

fn fo_key(g: usize, i: usize) -> String {
    format!("rq{g}_{i}")
}

fn fo_value(g: usize, i: usize) -> String {
    format!("rv{g}_{i}")
}

/// The scripted SET windows (window 2 is the GET).
const FO_SET_WINDOWS: [usize; 5] = [0, 1, 3, 4, 5];
/// Request window offsets, in virtual ms (per group, staggered by 3 ms
/// per extra group): three before the partitions, three on the
/// promoted architectures.
const FO_REQUEST_TIMES: [u64; 6] = [10, 25, 40, 550, 620, 690];

/// Directed links between group `g`'s preferred back-end and the rest.
fn fo_links(g: usize) -> [(String, String); 4] {
    let (f, o, s) = (format!("f{g}"), format!("o{g}"), format!("s{g}"));
    [(o.clone(), f.clone()), (f, o.clone()), (o.clone(), s.clone()), (s, o)]
}

/// Driver-shared state for the fail-over scenario; everything the
/// `(preferred, spare)` store handles for one replication group.
type StorePair = (Arc<Mutex<Store>>, Arc<Mutex<Store>>);

/// injections write and the oracle reads, re-zeroed per runtime.
struct FoShared {
    n: usize,
    cut: usize,
    requests: Vec<Arc<Mutex<std::collections::VecDeque<Command>>>>,
    replies: Vec<Arc<Mutex<Vec<Reply>>>>,
    /// `(preferred, spare)` store handles per group, rebound per run.
    stores: Mutex<Vec<StorePair>>,
    acked: AtomicUsize,
    injected_reconfig: AtomicBool,
    /// `Reply@f{g}` just before each partitioned group's zombie poke.
    /// The split-brain oracle only counts a *transition* to true caused
    /// by the poke: the write-to-all mode routinely leaves a benign
    /// trailing `Reply` assert, which is protocol residue.
    poke_reply_before: Mutex<Vec<Option<bool>>>,
    /// Cumulative per-group promotion flags the repair closure compiles
    /// targets from — two partitioned groups compose.
    promoted: Mutex<Vec<bool>>,
    sup: Mutex<Option<Supervisor>>,
    boot: CompiledProgram,
}

fn wire_failover(spec: &ScheduleSpec) -> Scene {
    let n = spec.shards;
    let cut = spec.replicas.min(n);
    let boot =
        csaw_core::compile(supervised_failover_groups(n, &vec![false; n]), &LoadConfig::new())
            .unwrap();
    let boot_instances: Vec<String> = {
        let mut v: Vec<String> =
            (1..=n).flat_map(|g| [format!("f{g}"), format!("o{g}"), format!("s{g}")]).collect();
        v.sort();
        v
    };

    let shared = Arc::new(FoShared {
        n,
        cut,
        requests: (0..n).map(|_| Arc::new(Mutex::new(Default::default()))).collect(),
        replies: (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect(),
        stores: Mutex::new(Vec::new()),
        acked: AtomicUsize::new(0),
        injected_reconfig: AtomicBool::new(false),
        poke_reply_before: Mutex::new(vec![None; cut]),
        promoted: Mutex::new(vec![false; n]),
        sup: Mutex::new(None),
        boot,
    });

    let mut exec = SimExecutor::new(SimConfig {
        seed: spec.seed,
        max_steps: spec.max_steps,
        horizon: spec.horizon,
        max_nested: 4,
    });

    // Requests: per group, three before the partition window and three
    // on the promoted architecture, staggered 3 ms per group so the
    // invokes interleave. Each injection enqueues one command and
    // invokes the front; the invoke's blocking drives nested progress.
    for g in 1..=n {
        for (i, at_ms) in FO_REQUEST_TIMES.iter().enumerate() {
            let sh = Arc::clone(&shared);
            let at = ms(at_ms + 3 * (g as u64 - 1));
            exec.inject_at(at, &format!("request-{g}-{i}"), move |rt| {
                let cmd = fo_command(g, i);
                {
                    let mut q = sh.requests[g - 1].lock();
                    q.clear();
                    q.push_back(cmd);
                }
                let before = sh.replies[g - 1].lock().len();
                let deadline = rt.clock().now() + REQUEST_DEADLINE;
                let _ = rt.invoke_deadline(&format!("f{g}"), "junction", deadline);
                if sh.replies[g - 1].lock().len() > before {
                    sh.acked.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    }

    // A benign live reconfiguration in the detection window: same
    // program, fresh epoch — reconfigure interleaved with the
    // supervisor's detect → repair machinery.
    {
        let sh = Arc::clone(&shared);
        exec.inject_at(ms(100), "reconfig-identity", move |rt| {
            if rt.reconfigure(&sh.boot, ReconfigSpec::default()).is_ok() {
                sh.injected_reconfig.store(true, Ordering::SeqCst);
            }
        });
    }

    // The partitions, then the heals + zombie pokes, staggered 30 ms
    // per partitioned group.
    for g in 1..=cut {
        exec.inject_at(ms(60 + 30 * (g as u64 - 1)), &format!("partition-o{g}"), move |rt| {
            for (from, to) in fo_links(g) {
                rt.set_fault_plan(&from, &to, FaultPlan::none().with_drop(1.0));
            }
        });
    }
    for g in 1..=cut {
        let sh = Arc::clone(&shared);
        exec.inject_at(ms(900 + 30 * (g as u64 - 1)), &format!("heal-and-poke-{g}"), move |rt| {
            sh.poke_reply_before.lock()[g - 1] =
                Some(rt.peek_prop(&format!("f{g}"), "junction", "Reply") == Some(true));
            for (from, to) in fo_links(g) {
                rt.set_fault_plan(&from, &to, FaultPlan::none());
            }
            // Re-arm the zombie's guard: with the fence up its stale
            // reply dies on the wire; without it, split-brain.
            rt.deliver_for_test(
                &format!("o{g}"),
                "junction",
                Update::assert(format!("Run[o{g}]"), "sim-driver"),
            );
        });
    }

    let fence = fence_enabled(spec);
    let chaos = spec.chaos;
    let seed = spec.seed;
    let fresh = {
        let sh = Arc::clone(&shared);
        Box::new(move || {
            for q in &sh.requests {
                q.lock().clear();
            }
            for r in &sh.replies {
                r.lock().clear();
            }
            sh.acked.store(0, Ordering::SeqCst);
            sh.injected_reconfig.store(false, Ordering::SeqCst);
            *sh.poke_reply_before.lock() = vec![None; sh.cut];
            *sh.promoted.lock() = vec![false; sh.n];
            if let Some(old) = sh.sup.lock().take() {
                old.stop();
            }

            let rt = Runtime::new(
                &sh.boot,
                RuntimeConfig {
                    default_link: LinkKind::Sim { latency: ms(1), bandwidth: 0 },
                    clock: Clock::simulated(),
                    ..RuntimeConfig::default()
                },
            );
            rt.set_tracing(true);
            let mut stores = Vec::new();
            for g in 1..=sh.n {
                let mut front = KvFront::new();
                front.requests = Arc::clone(&sh.requests[g - 1]);
                front.replies = Arc::clone(&sh.replies[g - 1]);
                rt.bind_app(&format!("f{g}"), Box::new(front));
                let o = ServerApp::new();
                let s = ServerApp::new();
                stores.push((Arc::clone(&o.store), Arc::clone(&s.store)));
                rt.bind_app(&format!("o{g}"), Box::new(o));
                rt.bind_app(&format!("s{g}"), Box::new(s));
                rt.set_policy(&format!("f{g}"), "junction", Policy::OnDemand);
            }
            *sh.stores.lock() = stores;
            rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();
            rt.enable_heartbeats(HeartbeatConfig {
                interval: ms(20),
                suspicion: ms(80),
                k_missed: 2,
            });
            if chaos {
                // Mild seeded reordering on each group's surviving
                // path. Deliberately no drops (the partition script
                // owns those) and no duplicates: the watched reply
                // protocol is not idempotent, so duplication makes the
                // driver's acked attribution (and thus the lost-write
                // oracle) unsound. The reorder delay stays well under
                // the gap between scripted requests for the same
                // reason.
                for g in 1..=sh.n {
                    let base = 0x51D0 + 2 * (g as u64 - 1);
                    let plan =
                        FaultPlan::none().with_reorder(0.20, ms(4)).with_seed(seed ^ base);
                    rt.set_fault_plan(&format!("f{g}"), &format!("s{g}"), plan.clone());
                    rt.set_fault_plan(
                        &format!("s{g}"),
                        &format!("f{g}"),
                        plan.with_seed(seed ^ (base + 1)),
                    );
                }
            }

            let repair_shared = Arc::clone(&sh);
            let sup = rt.supervise(SupervisorConfig {
                poll: ms(20),
                quorum: 2,
                confirm_polls: 2,
                verify_timeout: ms(500),
                fence_on_reconfigure: fence,
                policy: RepairPolicy::new().on(
                    FailureClass::Partition,
                    vec![RepairAction::Reconfigure(Arc::new(move |_rt, inst| {
                        // Promote the partitioned group's spare; the
                        // target composes every promotion so far.
                        if let Some(g) =
                            inst.strip_prefix('o').and_then(|v| v.parse::<usize>().ok())
                        {
                            repair_shared.promoted.lock()[g - 1] = true;
                        }
                        let flags = repair_shared.promoted.lock().clone();
                        let target = csaw_core::compile(
                            supervised_failover_groups(repair_shared.n, &flags),
                            &LoadConfig::new(),
                        )
                        .unwrap();
                        (target, ReconfigSpec::default())
                    }))],
                ),
                ..SupervisorConfig::default()
            });
            *sh.sup.lock() = Some(sup);
            rt
        }) as Box<dyn Fn() -> Runtime>
    };

    let check = {
        let sh = Arc::clone(&shared);
        Box::new(move |rt: &Runtime, _out: &SimOutcome| -> Verdict {
            // Lost-acked-write invariant, stated soundly for an
            // *anonymous* reply protocol, per group. The front's reply
            // carries no request identity and the wait abandons late
            // replies, so per-window attribution of acks to commands
            // is unsound by construction. What *is* guaranteed: every
            // restored `+OK` consumed one `Reply` assertion, which
            // came from one `reply` call, which a back-end only makes
            // after durably serving one scripted SET — and the unique
            // keys are never overwritten or deleted. So with
            // at-most-once links the number of restored OK acks can
            // never exceed the number of durable per-store serve
            // footprints. An excess means an ack with no durable
            // write behind it: a genuinely lost acknowledged write.
            let stores = sh.stores.lock();
            let mut lost_acked = 0usize;
            let mut detail = String::new();
            for g in 1..=sh.n {
                let ok_acks =
                    sh.replies[g - 1].lock().iter().filter(|r| matches!(r, Reply::Ok)).count();
                let footprints = |store: &Arc<Mutex<Store>>| -> usize {
                    let s = store.lock();
                    FO_SET_WINDOWS
                        .iter()
                        .filter(|i| {
                            s.get(&fo_key(g, **i))
                                .is_some_and(|v| v == fo_value(g, **i).into_bytes())
                        })
                        .count()
                };
                let (so, ss) = &stores[g - 1];
                let durable = footprints(so) + footprints(ss);
                if ok_acks > durable {
                    lost_acked += ok_acks - durable;
                    detail =
                        format!("group {g}: {ok_acks} OK acks, {durable} durable serves");
                }
            }
            let poke = sh.poke_reply_before.lock();
            let stale_applied = (1..=sh.cut).any(|g| {
                poke[g - 1] == Some(false)
                    && rt.peek_prop(&format!("f{g}"), "junction", "Reply") == Some(true)
            });
            let sup_guard = sh.sup.lock();
            let sup = sup_guard.as_ref().expect("scene runtime has a supervisor");
            let records = sup.records();
            let repairs = repair_lines(&records);
            let repair_ok = (1..=sh.cut)
                .all(|g| records.iter().any(|r| r.instance == format!("o{g}") && r.ok));
            let fenced_sends = rt.link_stats().fenced;
            let held_at_end = rt.held_instances().len();
            let jsonl = rt.trace_jsonl();
            let dropped = rt.trace_dropped();
            let programs = sup.programs();

            let mut chain: Vec<&CompiledProgram> = vec![&sh.boot];
            if sh.injected_reconfig.load(Ordering::SeqCst) {
                // The identity reconfigure always lands before a
                // repair can confirm (suspicion + quorum polls put
                // every promotion later).
                chain.push(&sh.boot);
            }
            chain.extend(programs.iter());
            // The zombie pokes and heal-window retries inject applies
            // with no matching send in the trace.
            let conformance = check_repair_chain(&jsonl, dropped, &chain, true);

            let failure = if lost_acked > 0 {
                Some(format!("lost {lost_acked} acked write(s): {detail}"))
            } else if stale_applied {
                Some("split-brain: zombie reply applied after heal".to_string())
            } else if held_at_end > 0 {
                Some(format!("{held_at_end} instance(s) left held"))
            } else if !conformance.ok {
                Some(format!("conformance: {}", conformance.detail))
            } else {
                None
            };
            Verdict {
                acked: sh.acked.load(Ordering::SeqCst),
                lost_acked,
                stale_applied,
                repair_ok,
                fenced_sends,
                held_at_end,
                repairs,
                conformance,
                failure,
                trace_jsonl: jsonl,
            }
        }) as Box<dyn Fn(&Runtime, &SimOutcome) -> Verdict>
    };

    Scene { exec, boot_instances, fresh, check }
}

// =====================================================================
// Overload scenario: open-loop storms under ingress budgets
// =====================================================================

/// Per-request ingress budget `d` (virtual): the `otherwise[d]`
/// deadline the interpreter stamps onto every storm send. Sized so a
/// shallow outbox queue is survivable but a deep one is not — both the
/// admission gate and the arrival-prediction shed get exercised.
const OV_BUDGET: Duration = Duration::from_millis(30);
/// Storm window (virtual ms): units are offered in `[start, end)`.
const OV_STORM_START_MS: u64 = 30;
const OV_STORM_END_MS: u64 = 430;
/// Saturated-route bandwidth (bytes/s). One unit is a payload + a
/// `Run` trigger (~85 wire bytes ≈ 11 ms serialized), so the base
/// inter-arrival of [`ov_spacing_us`] offers ~4× a route's capacity —
/// dense enough that the bounded outboxes stay pinned full for the
/// whole storm (a half-full queue would let fence-off heartbeats
/// slip through and mask the priority lane's absence).
const OV_BANDWIDTH: u64 = 8_000;

/// Storm inter-arrival in µs for storm multiplier `k` (~4k× saturation).
fn ov_spacing_us(k: u64) -> u64 {
    (2_750 / k).max(250)
}

/// The pump's host side: synthesizes one unique unit per `save`.
struct StormPump {
    prefix: String,
    next: usize,
}

impl InstanceApp for StormPump {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        self.next += 1;
        Ok(Value::Bytes(format!("{}:{}", self.prefix, self.next).into_bytes()))
    }
    fn restore(&mut self, _key: &str, _value: &Value) -> Result<(), String> {
        Ok(())
    }
}

/// A sink's host side: counts *distinct* restored units — the
/// scenario's goodput meter. (An update can be restored twice when a
/// shed payload's surviving trigger re-activates the junction on a
/// stale datum; distinctness keeps the meter sound.)
struct StormSink {
    seen: std::collections::HashSet<Vec<u8>>,
    count: Arc<AtomicUsize>,
}

impl InstanceApp for StormSink {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, key: &str) -> Result<Value, String> {
        Err(format!("sink has nothing to save for `{key}`"))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        let unit = value.as_bytes().ok_or("unit payload must be bytes")?;
        if self.seen.insert(unit.to_vec()) {
            self.count.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// Driver-shared state for the overload scenario.
struct OvShared {
    n: usize,
    /// Storm units offered per group (injections fired; probes excluded).
    offered: Vec<Arc<AtomicUsize>>,
    /// Distinct units landed at each group's preferred sink `k{g}`.
    goodput: Vec<Arc<AtomicUsize>>,
    /// `goodput` snapshot taken after the storm drained, before probes.
    pre_probe: Mutex<Vec<usize>>,
    /// Times the supervisor's repair ladder fired — must stay 0:
    /// nothing in this scenario ever actually fails.
    false_repairs: AtomicUsize,
    sup: Mutex<Option<Supervisor>>,
    boot: CompiledProgram,
}

fn wire_overload(spec: &ScheduleSpec) -> Scene {
    let n = spec.shards;
    let k = spec.replicas as u64;
    let boot = csaw_core::compile(storm_pipeline(n), &LoadConfig::new()).unwrap();
    let boot_instances: Vec<String> = {
        let mut v: Vec<String> = (1..=n)
            .flat_map(|g| {
                let (p, kk, x) = storm_names(g);
                [p, kk, x]
            })
            .collect();
        v.sort();
        v
    };

    let shared = Arc::new(OvShared {
        n,
        offered: (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect(),
        goodput: (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect(),
        pre_probe: Mutex::new(vec![0; n]),
        false_repairs: AtomicUsize::new(0),
        sup: Mutex::new(None),
        boot,
    });

    let mut exec = SimExecutor::new(SimConfig {
        seed: spec.seed,
        max_steps: spec.max_steps,
        horizon: spec.horizon,
        max_nested: 8,
    });

    // The storm: open-loop — the pump never blocks, so each injection
    // is one quick invoke regardless of how congested the links are,
    // and the offered rate is set by the script, not by completions.
    let spacing = ov_spacing_us(k);
    let storm_count = (OV_STORM_END_MS - OV_STORM_START_MS) * 1000 / spacing;
    for g in 1..=n {
        for i in 0..storm_count {
            let sh = Arc::clone(&shared);
            let at = Duration::from_micros(
                OV_STORM_START_MS * 1000 + i * spacing + 137 * (g as u64 - 1),
            );
            exec.inject_at(at, &format!("storm-{g}-{i}"), move |rt| {
                sh.offered[g - 1].fetch_add(1, Ordering::SeqCst);
                let deadline = rt.clock().now() + OV_BUDGET;
                let _ = rt.invoke_deadline(&format!("p{g}"), "junction", deadline);
            });
        }
    }

    // Post-storm probes: the congestion-collapse oracle. Once the
    // storm stops, the bounded queues must have drained — a fresh
    // trickle of units must land comfortably inside the same budget.
    {
        let sh = Arc::clone(&shared);
        exec.inject_at(ms(460), "probe-baseline", move |_rt| {
            let mut pre = sh.pre_probe.lock();
            for g in 1..=sh.n {
                pre[g - 1] = sh.goodput[g - 1].load(Ordering::SeqCst);
            }
        });
    }
    for g in 1..=n {
        for (j, at) in [470u64, 485, 500].into_iter().enumerate() {
            exec.inject_at(
                ms(at + 2 * (g as u64 - 1)),
                &format!("probe-{g}-{j}"),
                move |rt| {
                    let deadline = rt.clock().now() + OV_BUDGET;
                    let _ = rt.invoke_deadline(&format!("p{g}"), "junction", deadline);
                },
            );
        }
    }

    let lane = fence_enabled(spec);
    let fresh = {
        let sh = Arc::clone(&shared);
        Box::new(move || {
            for c in sh.offered.iter().chain(sh.goodput.iter()) {
                c.store(0, Ordering::SeqCst);
            }
            *sh.pre_probe.lock() = vec![0; sh.n];
            sh.false_repairs.store(0, Ordering::SeqCst);
            if let Some(old) = sh.sup.lock().take() {
                old.stop();
            }

            let rt = Runtime::new(
                &sh.boot,
                RuntimeConfig {
                    default_link: LinkKind::Sim { latency: ms(1), bandwidth: 0 },
                    clock: Clock::simulated(),
                    overload: OverloadConfig {
                        // Must bind *before* the 30 ms budget's
                        // admission prediction (~5 queued packets)
                        // does, so saturated routes actually refuse
                        // admission — that refusal is what the
                        // priority lane shields heartbeats from.
                        outbox_bound: 3,
                        mailbox_bound: 64,
                        // Budgets come from the DSL (`otherwise[d]`),
                        // not a network-wide default.
                        ingress_deadline: None,
                        shed_expired: true,
                        priority_lane: lane,
                    },
                    ..RuntimeConfig::default()
                },
            );
            rt.set_tracing(true);
            // Fail fast at a full outbox: one sub-millisecond retry,
            // then surface `QueueFull` to the pump's `otherwise[d]`
            // handler. Sized so a whole storm activation costs less
            // virtual time than the injection spacing — the walk must
            // come back up to top level between injections, or
            // supervisor polls (top-level-only events) starve for the
            // entire storm. The default wall-clock policy would burn
            // ~100 virtual ms per refused send.
            rt.set_retry_policy(RetryPolicy {
                enabled: true,
                max_retries: 1,
                base: Duration::from_micros(100),
                cap: Duration::from_micros(200),
            });
            for g in 1..=sh.n {
                let (p, kk, x) = storm_names(g);
                rt.bind_app(
                    &p,
                    Box::new(StormPump { prefix: format!("u{g}"), next: 0 }),
                );
                rt.bind_app(
                    &kk,
                    Box::new(StormSink {
                        seen: Default::default(),
                        count: Arc::clone(&sh.goodput[g - 1]),
                    }),
                );
                // The aux sink receives the same fan-out but is not
                // the goodput meter; it exists as the second saturated
                // route and the second live observer of the pump.
                rt.bind_app(
                    &x,
                    Box::new(StormSink {
                        seen: Default::default(),
                        count: Arc::new(AtomicUsize::new(0)),
                    }),
                );
                rt.set_policy(&p, "junction", Policy::OnDemand);
                rt.set_link(&p, &kk, LinkKind::Sim { latency: ms(1), bandwidth: OV_BANDWIDTH });
                rt.set_link(&p, &x, LinkKind::Sim { latency: ms(1), bandwidth: OV_BANDWIDTH });
            }
            rt.run_main(vec![Value::Duration(OV_BUDGET)]).unwrap();
            // Suspicion sizing: with the lane ON a beat is never
            // refused, only queued behind ≤ outbox_bound data packets
            // (≤ ~20 ms at this bandwidth), so the max inter-beat gap
            // an observer sees is ~interval + queueing ≈ 40 ms — 60 ms
            // cannot false-suspect. With the lane OFF, refused beats
            // open storm-long gaps that blow way past it.
            // One 60 ms window (`k_missed: 1` — the detector requires
            // `suspicion × k_missed` of silence): three consecutive
            // refused beats on a route open it.
            rt.enable_heartbeats(HeartbeatConfig {
                interval: ms(20),
                suspicion: ms(60),
                k_missed: 1,
            });

            // Any repair is a false one: the scenario never partitions,
            // crashes, or stops anything. The ladder records the
            // misclassification and "repairs" with the identity program.
            let repair_shared = Arc::clone(&sh);
            let repair = RepairAction::Reconfigure(Arc::new(move |_rt, _inst| {
                repair_shared.false_repairs.fetch_add(1, Ordering::SeqCst);
                (repair_shared.boot.clone(), ReconfigSpec::default())
            }));
            let sup = rt.supervise(SupervisorConfig {
                poll: ms(10),
                quorum: 2,
                confirm_polls: 2,
                verify_timeout: ms(200),
                fence_on_reconfigure: true,
                policy: RepairPolicy::new()
                    .on(FailureClass::Partition, vec![repair.clone()])
                    .on(FailureClass::Crash, vec![repair]),
                ..SupervisorConfig::default()
            });
            *sh.sup.lock() = Some(sup);
            rt
        }) as Box<dyn Fn() -> Runtime>
    };

    let check = {
        let sh = Arc::clone(&shared);
        Box::new(move |rt: &Runtime, out: &SimOutcome| -> Verdict {
            let goodput: Vec<usize> =
                (1..=sh.n).map(|g| sh.goodput[g - 1].load(Ordering::SeqCst)).collect();
            let offered: Vec<usize> =
                (1..=sh.n).map(|g| sh.offered[g - 1].load(Ordering::SeqCst)).collect();
            let acked: usize = goodput.iter().sum();
            let stats = rt.link_stats();

            let sup_guard = sh.sup.lock();
            let sup = sup_guard.as_ref().expect("scene runtime has a supervisor");
            let records = sup.records();
            let repairs = repair_lines(&records);
            // `Slow` (a single suspecting observer) carries no repair
            // ladder; anything stronger on a healthy fleet is a false
            // crash classification.
            let false_class = sh.false_repairs.load(Ordering::SeqCst) > 0
                || records.iter().any(|r| r.class != FailureClass::Slow);
            let repair_ok = records.is_empty();
            let fenced_sends = stats.fenced;
            let held_at_end = rt.held_instances().len();
            let jsonl = rt.trace_jsonl();
            let dropped = rt.trace_dropped();
            let programs = sup.programs();
            let mut chain: Vec<&CompiledProgram> = vec![&sh.boot];
            chain.extend(programs.iter());
            let conformance = check_repair_chain(&jsonl, dropped, &chain, false);

            // Strict fail-fast admission sheds *almost everything* at
            // 4× offered: once the outbox pins at its bound, each
            // drained slot is grabbed by the next unit's payload, so
            // payload+trigger pairs complete only at the storm's edges
            // (~0–1 units in-storm). The floor therefore rejects
            // near-zero *totals* — a healthy run still banks the
            // storm-edge pair plus the post-storm probes (observed
            // 3–4), while congestion collapse (wedged queues, probes
            // lost) lands 0–1. The quantitative goodput-vs-offered
            // curves live in the open-loop bench, not here.
            let floor = 2;
            let worst =
                goodput.iter().copied().enumerate().min_by_key(|(_, c)| *c).unwrap_or((0, 0));
            let pre = sh.pre_probe.lock().clone();
            let probes_ok =
                (1..=sh.n).all(|g| goodput[g - 1].saturating_sub(pre[g - 1]) >= 2);
            let engaged = stats.shed + stats.queue_full;

            let failure = if false_class {
                Some(format!(
                    "false crash classification: supervisor repaired healthy instance(s) [{}]",
                    repairs.join("; ")
                ))
            } else if !out.truncated && worst.1 < floor {
                Some(format!(
                    "goodput collapse: group {} landed {} unit(s) (< floor {floor}) of {} offered",
                    worst.0 + 1,
                    worst.1,
                    offered.get(worst.0).copied().unwrap_or(0)
                ))
            } else if !out.truncated && !probes_ok {
                Some("congestion collapse: post-storm probe units failed to land".to_string())
            } else if !out.truncated && engaged == 0 {
                Some("vacuous: the storm never engaged overload control".to_string())
            } else if held_at_end > 0 {
                Some(format!("{held_at_end} instance(s) left held"))
            } else if !conformance.ok {
                Some(format!("conformance: {}", conformance.detail))
            } else {
                None
            };
            Verdict {
                acked,
                lost_acked: 0,
                stale_applied: false,
                repair_ok,
                fenced_sends,
                held_at_end,
                repairs,
                conformance,
                failure,
                trace_jsonl: jsonl,
            }
        }) as Box<dyn Fn(&Runtime, &SimOutcome) -> Verdict>
    };

    Scene { exec, boot_instances, fresh, check }
}

// =====================================================================
// Sharded scenarios: reshard (one wave) and churn (K waves)
// =====================================================================

/// Scan for a key that provably re-homes between `from_n` and `to_n`
/// shards — written first, it guarantees every wave migrates at least
/// one entry (and the fence-off copy bug double-homes it).
fn mover_key(from_n: usize, to_n: usize) -> String {
    (0..)
        .map(|j| format!("mv{j}"))
        .find(|k| shard_of(k, from_n) != shard_of(k, to_n))
        .expect("some key re-homes between distinct shard counts")
}

/// One scripted request: key, value, time, plus the driver-side flag
/// recording whether its invoke saw a reply (set during the run).
struct ShardRequest {
    key: String,
    value: Vec<u8>,
    at: Duration,
    acked: AtomicBool,
}

/// Driver-shared state for the sharded scenarios.
struct ShardShared {
    base_n: usize,
    max_n: usize,
    /// `(at, routing_n)` per scripted reconfiguration wave.
    waves: Vec<(Duration, usize)>,
    requests_q: Arc<Mutex<std::collections::VecDeque<Command>>>,
    replies_q: Arc<Mutex<std::collections::VecDeque<Reply>>>,
    reqs: Vec<ShardRequest>,
    stores: Mutex<Vec<Arc<Mutex<Store>>>>,
    /// Routing shard count currently live; waves compare-and-advance
    /// it. Shrink waves narrow only the routing formula — de-routed
    /// back-ends stay alive (and drained), so instance lifetimes are
    /// monotone and the conformance epoch rule applies cleanly.
    cur_n: Mutex<usize>,
    /// Instances currently materialized (monotone: `max` of base and
    /// every landed routing target).
    live_n: Mutex<usize>,
    /// `(routing_n, instances_n)` of every wave that landed, in order
    /// (the epoch chain pushes `programs[&instances_n]`).
    applied: Mutex<Vec<(usize, usize)>>,
    /// First wave-time re-homing violation, recorded atomically right
    /// after the wave's migrate ran: at that instant nothing scripted
    /// can be in flight (injections are single executor steps), so
    /// every durable key must sit at exactly its new home. Checked here
    /// rather than at the horizon because a walk-deferred back-end
    /// pass may legitimately serve a timed-out request *after* a later
    /// wave, parking its key off-home on a green run.
    homing: Mutex<Option<String>>,
    /// How many wave injections actually fired this run. A shrunk
    /// replay can suppress a wave's `inj:` record entirely; the
    /// waves-landed liveness oracle only counts waves that fired.
    waves_fired: AtomicUsize,
    programs: BTreeMap<usize, CompiledProgram>,
}

fn wire_sharded(spec: &ScheduleSpec) -> Scene {
    let base_n = spec.shards;
    let waves: Vec<(Duration, usize)> = match spec.scenario {
        Scenario::Reshard => vec![(ms(300), base_n + spec.replicas)],
        Scenario::Churn => (1..=spec.replicas as u64)
            .map(|w| {
                (ms(250 + 200 * (w - 1)), if w % 2 == 1 { base_n + 1 } else { base_n })
            })
            .collect(),
        _ => unreachable!("wire_sharded only handles sharded scenarios"),
    };
    let max_n = waves.iter().map(|(_, n)| *n).max().unwrap().max(base_n);
    let mut programs = BTreeMap::new();
    for n in base_n..=max_n {
        programs.insert(
            n,
            csaw_core::compile(
                sharding(&ShardingSpec { n_backends: n, ..ShardingSpec::default() }),
                &LoadConfig::new(),
            )
            .unwrap(),
        );
    }
    let boot_instances: Vec<String> = {
        let mut v: Vec<String> = (1..=base_n).map(|i| format!("Bck{i}")).collect();
        v.push("Fnt".to_string());
        v.sort();
        v
    };

    // Scripted unique-key SETs on a 40 ms cadence, keeping a quiet
    // margin before each wave: the margin exceeds the request deadline
    // plus chaos delay, so nothing scripted is in flight when a wave
    // reconfigures and the store-level oracles below stay sound. The
    // first request writes a scanned mover key so every wave provably
    // re-homes at least one entry.
    let horizon_ms = spec.horizon.as_millis() as u64;
    let mut reqs: Vec<ShardRequest> = Vec::new();
    let mover = mover_key(base_n, waves[0].1);
    let mut t = 20u64;
    while t + 250 <= horizon_ms {
        let quiet = waves.iter().any(|(w, _)| {
            let w = w.as_millis() as u64;
            t + 95 >= w && t <= w + 5
        });
        if !quiet {
            let idx = reqs.len();
            let key = if idx == 0 { mover.clone() } else { format!("k{idx}") };
            reqs.push(ShardRequest {
                key,
                value: format!("v{idx}").into_bytes(),
                at: ms(t),
                acked: AtomicBool::new(false),
            });
        }
        t += 40;
    }

    let shared = Arc::new(ShardShared {
        base_n,
        max_n,
        waves,
        requests_q: Arc::new(Mutex::new(Default::default())),
        replies_q: Arc::new(Mutex::new(Default::default())),
        reqs,
        stores: Mutex::new(Vec::new()),
        cur_n: Mutex::new(base_n),
        live_n: Mutex::new(base_n),
        applied: Mutex::new(Vec::new()),
        homing: Mutex::new(None),
        waves_fired: AtomicUsize::new(0),
        programs,
    });

    let mut exec = SimExecutor::new(SimConfig {
        seed: spec.seed,
        max_steps: spec.max_steps,
        horizon: spec.horizon,
        max_nested: 4,
    });

    for i in 0..shared.reqs.len() {
        let sh = Arc::clone(&shared);
        let at = shared.reqs[i].at;
        exec.inject_at(at, &format!("request-{i}"), move |rt| {
            let r = &sh.reqs[i];
            {
                let mut q = sh.requests_q.lock();
                q.clear();
                q.push_back(Command::Set(r.key.clone(), r.value.clone()));
            }
            let before = sh.replies_q.lock().len();
            let deadline = rt.clock().now() + REQUEST_DEADLINE;
            let _ = rt.invoke_deadline("Fnt", "junction", deadline);
            if sh.replies_q.lock().len() > before {
                r.acked.store(true, Ordering::SeqCst);
            }
        });
    }

    let fence = fence_enabled(spec);
    for (w, (at, to_n)) in shared.waves.clone().into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        exec.inject_at(at, &format!("wave-{}-to-{to_n}", w + 1), move |rt| {
            let from_n = *sh.cur_n.lock();
            if from_n == to_n {
                return;
            }
            sh.waves_fired.fetch_add(1, Ordering::SeqCst);
            let live = *sh.live_n.lock();
            let inst_n = live.max(to_n);
            let mut rs = ReconfigSpec::default();
            let mut front = ShardFrontApp::new(ShardMode::ByKey, to_n);
            front.requests = Arc::clone(&sh.requests_q);
            front.replies = Arc::clone(&sh.replies_q);
            rs.apps.push(("Fnt".to_string(), Box::new(front)));
            let stores = sh.stores.lock().clone();
            for i in live + 1..=inst_n {
                rs.apps.push((
                    format!("Bck{i}"),
                    Box::new(ServerApp::with_store(Arc::clone(&stores[i - 1]))),
                ));
                rs.start.push((
                    format!("Bck{i}"),
                    vec![(
                        None,
                        vec![
                            Arg::Junction(JRef::qualified("Fnt", "junction")),
                            Arg::Value(Value::Duration(FRONT_TIMEOUT)),
                        ],
                    )],
                ));
            }
            let mig = stores.clone();
            rs.migrate = Some(Box::new(move |ctx| {
                let (mut moved, mut bytes) = (0u64, 0u64);
                for idx in 0..mig.len() {
                    let entries = mig[idx].lock().drain_entries();
                    for (k, v) in entries {
                        let home = shard_of(&k, to_n);
                        if home != idx {
                            moved += 1;
                            bytes += v.len() as u64;
                            if !fence {
                                // The deliberate fence-off bug: the old
                                // home keeps serving its copy of a
                                // re-homed entry.
                                mig[idx].lock().set(&k, v.clone());
                            }
                        }
                        mig[home].lock().set(&k, v);
                    }
                }
                ctx.note_moved(moved, bytes);
                Ok(())
            }));
            if rt.reconfigure(&sh.programs[&inst_n], rs).is_ok() {
                *sh.cur_n.lock() = to_n;
                *sh.live_n.lock() = inst_n;
                sh.applied.lock().push((to_n, inst_n));
                // Atomic post-migrate snapshot: every durable scripted
                // key sits at exactly its `shard_of(key, to_n)` home.
                let mut viol = sh.homing.lock();
                if viol.is_none() {
                    'keys: for r in &sh.reqs {
                        let homes: Vec<usize> = (0..sh.max_n)
                            .filter(|i| stores[*i].lock().get(&r.key).is_some())
                            .collect();
                        if homes.is_empty() {
                            continue;
                        }
                        let home = shard_of(&r.key, to_n);
                        if homes.len() > 1 {
                            *viol = Some(format!(
                                "key {} double-homed after re-homing to {to_n} \
                                 shards: stores {:?}",
                                r.key,
                                homes.iter().map(|i| i + 1).collect::<Vec<_>>()
                            ));
                            break 'keys;
                        }
                        if homes[0] != home {
                            *viol = Some(format!(
                                "key {} homed at store {} instead of {} after \
                                 re-homing to {to_n} shards",
                                r.key,
                                homes[0] + 1,
                                home + 1
                            ));
                            break 'keys;
                        }
                    }
                }
            }
        });
    }

    let fresh = {
        let sh = Arc::clone(&shared);
        Box::new(move || {
            sh.requests_q.lock().clear();
            sh.replies_q.lock().clear();
            for r in &sh.reqs {
                r.acked.store(false, Ordering::SeqCst);
            }
            *sh.cur_n.lock() = sh.base_n;
            *sh.live_n.lock() = sh.base_n;
            sh.applied.lock().clear();
            *sh.homing.lock() = None;
            sh.waves_fired.store(0, Ordering::SeqCst);

            let rt = Runtime::new(
                &sh.programs[&sh.base_n],
                RuntimeConfig {
                    default_link: LinkKind::Sim { latency: ms(1), bandwidth: 0 },
                    clock: Clock::simulated(),
                    ..RuntimeConfig::default()
                },
            );
            rt.set_tracing(true);
            let mut front = ShardFrontApp::new(ShardMode::ByKey, sh.base_n);
            front.requests = Arc::clone(&sh.requests_q);
            front.replies = Arc::clone(&sh.replies_q);
            rt.bind_app("Fnt", Box::new(front));
            // One store handle per *maximum* shard: joiners bind to
            // their pre-created store when a grow wave adds them.
            let mut stores = Vec::new();
            for i in 1..=sh.max_n {
                let store = Arc::new(Mutex::new(Store::new()));
                stores.push(Arc::clone(&store));
                if i <= sh.base_n {
                    rt.bind_app(&format!("Bck{i}"), Box::new(ServerApp::with_store(store)));
                }
            }
            *sh.stores.lock() = stores;
            rt.set_policy("Fnt", "junction", Policy::OnDemand);
            rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();
            // Deliberately no link chaos here: the sharded front's
            // two-message request protocol (`n` payload, then `Work`)
            // assumes FIFO links, and reordering makes a back-end
            // serve a stale payload while the front acks the new
            // request — an ack without a serve, red by construction.
            // The explorer's walk/DFS over pump and pass orderings is
            // the nondeterminism under test.
            rt
        }) as Box<dyn Fn() -> Runtime>
    };

    let check = {
        let sh = Arc::clone(&shared);
        Box::new(move |rt: &Runtime, out: &SimOutcome| -> Verdict {
            let stores = sh.stores.lock();
            let applied = sh.applied.lock().clone();

            // Wave-time re-homing violations (recorded atomically right
            // after each migrate) take precedence: they are the
            // exactly-once-re-home oracle.
            let mut failure: Option<String> = sh.homing.lock().clone();

            // Horizon-time double-home: every serve writes a key into
            // exactly one store and a green migrate *moves* entries, so
            // two live copies can only come from the copy bug. (A
            // single off-home copy at the horizon is NOT a violation: a
            // walk-deferred pass may serve a timed-out request after
            // the last wave through the old routing.)
            if failure.is_none() {
                for r in &sh.reqs {
                    let homes: Vec<usize> = (0..sh.max_n)
                        .filter(|i| stores[*i].lock().get(&r.key).is_some())
                        .collect();
                    if homes.len() > 1 {
                        failure = Some(format!(
                            "key {} double-homed at horizon: stores {:?}",
                            r.key,
                            homes.iter().map(|i| i + 1).collect::<Vec<_>>()
                        ));
                        break;
                    }
                }
            }

            // Counting bound on lost acked writes: each restored `+OK`
            // consumed one reply, each reply follows one durable serve,
            // and each scripted key is served at most once — so OK
            // acks can never exceed durable scripted keys. (The
            // per-request `acked` flags are reporting only: a deferred
            // reply pump can land inside the *next* request's window,
            // so per-request attribution is approximate.)
            let ok_acks =
                sh.replies_q.lock().iter().filter(|r| matches!(r, Reply::Ok)).count();
            let durable = sh
                .reqs
                .iter()
                .filter(|r| {
                    (0..sh.max_n)
                        .any(|i| stores[i].lock().get(&r.key).is_some_and(|v| v == r.value))
                })
                .count();
            let lost_acked = ok_acks.saturating_sub(durable);
            let acked =
                sh.reqs.iter().filter(|r| r.acked.load(Ordering::SeqCst)).count();
            let held_at_end = rt.held_instances().len();
            let fenced_sends = rt.link_stats().fenced;
            let jsonl = rt.trace_jsonl();
            let dropped = rt.trace_dropped();

            let mut chain: Vec<&CompiledProgram> = vec![&sh.programs[&sh.base_n]];
            for (_, inst_n) in &applied {
                chain.push(&sh.programs[inst_n]);
            }
            let conformance = check_repair_chain(&jsonl, dropped, &chain, false);
            // Count against waves that actually fired: a shrunk replay
            // can suppress a wave injection, and a wave that never
            // fired owes no reconfiguration.
            let waves_fired = sh.waves_fired.load(Ordering::SeqCst);
            let repair_ok = applied.len() == waves_fired;
            let repairs: Vec<String> = applied
                .iter()
                .map(|(route, inst)| format!("wave -> {route} shards ({inst} instances) ok"))
                .collect();

            let failure = failure
                .or_else(|| {
                    (lost_acked > 0).then(|| {
                        format!(
                            "lost {lost_acked} acked write(s): {ok_acks} OK acks, \
                             {durable} durable keys"
                        )
                    })
                })
                .or_else(|| {
                    (held_at_end > 0).then(|| format!("{held_at_end} instance(s) left held"))
                })
                .or_else(|| {
                    (!conformance.ok).then(|| format!("conformance: {}", conformance.detail))
                })
                .or_else(|| {
                    (!out.truncated && !repair_ok).then(|| {
                        format!(
                            "only {}/{waves_fired} reconfiguration waves landed",
                            applied.len()
                        )
                    })
                });
            Verdict {
                acked,
                lost_acked,
                stale_applied: false,
                repair_ok,
                fenced_sends,
                held_at_end,
                repairs,
                conformance,
                failure,
                trace_jsonl: jsonl,
            }
        }) as Box<dyn Fn(&Runtime, &SimOutcome) -> Verdict>
    };

    Scene { exec, boot_instances, fresh, check }
}

// =====================================================================
// Planner-driven phased resharding
// =====================================================================

/// Driver-shared state for the planned scenario.
struct PlShared {
    base_n: usize,
    max_n: usize,
    /// `(at, routing_n)` per scripted planner wave.
    waves: Vec<(Duration, usize)>,
    requests_q: Arc<Mutex<std::collections::VecDeque<Command>>>,
    replies_q: Arc<Mutex<std::collections::VecDeque<Reply>>>,
    reqs: Vec<ShardRequest>,
    stores: Mutex<Vec<Arc<Mutex<Store>>>>,
    cur_n: Mutex<usize>,
    /// Every *installed* phase target, in cut order — the conformance
    /// epoch chain judges the trace at every phase boundary.
    applied: Mutex<Vec<CompiledProgram>>,
    /// Per-wave summary lines (`wave -> N shards in P phases ok`).
    wave_log: Mutex<Vec<String>>,
    /// First plan-validity violation (`check_plan` red on a wave).
    plan_bad: Mutex<Option<String>>,
    /// First executed phase that quiesced more than the bound allows.
    over_quiesce: Mutex<Option<String>>,
    /// First post-wave re-homing violation (see [`ShardShared::homing`]).
    homing: Mutex<Option<String>>,
    waves_fired: AtomicUsize,
    waves_landed: AtomicUsize,
    programs: BTreeMap<usize, CompiledProgram>,
}

fn wire_planned(spec: &ScheduleSpec) -> Scene {
    let base_n = spec.shards;
    let grow_n = base_n + spec.replicas;
    let max_n = grow_n;
    // Grow to N+K mid-traffic, then shrink back to N with true
    // instance removal — both as phased plans under the quiesce bound.
    let waves: Vec<(Duration, usize)> = vec![(ms(300), grow_n), (ms(600), base_n)];
    let constraints = PlanConstraints::max_quiesce(1);

    let mut programs = BTreeMap::new();
    for n in [base_n, grow_n] {
        programs.insert(
            n,
            csaw_core::compile(
                sharding(&ShardingSpec { n_backends: n, ..ShardingSpec::default() }),
                &LoadConfig::new(),
            )
            .unwrap(),
        );
    }
    let boot_instances: Vec<String> = {
        let mut v: Vec<String> = (1..=base_n).map(|i| format!("Bck{i}")).collect();
        v.push("Fnt".to_string());
        v.sort();
        v
    };

    // Same scripted cadence and quiet margins as the sharded
    // scenarios: nothing is in flight while a wave's phases run, so
    // the store-level oracles stay sound across every phase boundary.
    let horizon_ms = spec.horizon.as_millis() as u64;
    let mut reqs: Vec<ShardRequest> = Vec::new();
    let mover = mover_key(base_n, grow_n);
    let mut t = 20u64;
    while t + 250 <= horizon_ms {
        let quiet = waves.iter().any(|(w, _)| {
            let w = w.as_millis() as u64;
            t + 95 >= w && t <= w + 5
        });
        if !quiet {
            let idx = reqs.len();
            let key = if idx == 0 { mover.clone() } else { format!("k{idx}") };
            reqs.push(ShardRequest {
                key,
                value: format!("v{idx}").into_bytes(),
                at: ms(t),
                acked: AtomicBool::new(false),
            });
        }
        t += 40;
    }

    let shared = Arc::new(PlShared {
        base_n,
        max_n,
        waves,
        requests_q: Arc::new(Mutex::new(Default::default())),
        replies_q: Arc::new(Mutex::new(Default::default())),
        reqs,
        stores: Mutex::new(Vec::new()),
        cur_n: Mutex::new(base_n),
        applied: Mutex::new(Vec::new()),
        wave_log: Mutex::new(Vec::new()),
        plan_bad: Mutex::new(None),
        over_quiesce: Mutex::new(None),
        homing: Mutex::new(None),
        waves_fired: AtomicUsize::new(0),
        waves_landed: AtomicUsize::new(0),
        programs,
    });

    let mut exec = SimExecutor::new(SimConfig {
        seed: spec.seed,
        max_steps: spec.max_steps,
        horizon: spec.horizon,
        max_nested: 4,
    });

    for i in 0..shared.reqs.len() {
        let sh = Arc::clone(&shared);
        let at = shared.reqs[i].at;
        exec.inject_at(at, &format!("request-{i}"), move |rt| {
            let r = &sh.reqs[i];
            {
                let mut q = sh.requests_q.lock();
                q.clear();
                q.push_back(Command::Set(r.key.clone(), r.value.clone()));
            }
            let before = sh.replies_q.lock().len();
            let deadline = rt.clock().now() + REQUEST_DEADLINE;
            let _ = rt.invoke_deadline("Fnt", "junction", deadline);
            if sh.replies_q.lock().len() > before {
                r.acked.store(true, Ordering::SeqCst);
            }
        });
    }

    let fence = fence_enabled(spec);
    for (w, (at, to_n)) in shared.waves.clone().into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        let constraints = constraints.clone();
        exec.inject_at(at, &format!("plan-wave-{}-to-{to_n}", w + 1), move |rt| {
            let from_n = *sh.cur_n.lock();
            if from_n == to_n {
                return;
            }
            sh.waves_fired.fetch_add(1, Ordering::SeqCst);
            let a = rt.current_program();
            let b = &sh.programs[&to_n];

            // The deliberate fence-off bug: a constraint-violating
            // phase ordering (break-before-make, unbounded chunks)
            // instead of the real planner. The plan-validity checker
            // is the oracle that must catch it.
            let plan = if fence {
                match plan_reconfiguration(&a, b, &constraints) {
                    Ok(p) => p,
                    Err(e) => {
                        let mut bad = sh.plan_bad.lock();
                        if bad.is_none() {
                            *bad = Some(format!("wave {} unplannable: {e}", w + 1));
                        }
                        return;
                    }
                }
            } else {
                plan_break_before_make(&a, b, &constraints)
            };

            let verdict = csaw_semantics::check_plan(&a, b, &plan, &constraints);
            if !verdict.is_valid() {
                let mut bad = sh.plan_bad.lock();
                if bad.is_none() {
                    *bad = Some(format!(
                        "wave {} plan invalid under max_concurrent_quiesce={}: {}",
                        w + 1,
                        constraints.max_concurrent_quiesce,
                        verdict
                    ));
                }
            }

            // Execute even an invalid plan: break-before-make still
            // converges to the right final architecture (nothing is in
            // flight during the wave), so only the checker sees the
            // hazard — exactly the bug class the oracle exists for.
            let stores = sh.stores.lock().clone();
            let (req_q, rep_q) = (Arc::clone(&sh.requests_q), Arc::clone(&sh.replies_q));
            let report = rt.reconfigure_plan(&plan, |phase| {
                let mut rs = ReconfigSpec::default();
                for added in &phase.diff.added {
                    let i: usize = added
                        .strip_prefix("Bck")
                        .and_then(|s| s.parse().ok())
                        .expect("planned scenario only adds Bck shards");
                    rs.apps.push((
                        added.clone(),
                        Box::new(ServerApp::with_store(Arc::clone(&stores[i - 1]))),
                    ));
                    rs.start.push((
                        added.clone(),
                        vec![(
                            None,
                            vec![
                                Arg::Junction(JRef::qualified("Fnt", "junction")),
                                Arg::Value(Value::Duration(FRONT_TIMEOUT)),
                            ],
                        )],
                    ));
                }
                if phase.diff.changed.iter().any(|c| c.name == "Fnt") {
                    let mut front = ShardFrontApp::new(ShardMode::ByKey, to_n);
                    front.requests = Arc::clone(&req_q);
                    front.replies = Arc::clone(&rep_q);
                    rs.apps.push(("Fnt".to_string(), Box::new(front)));
                    // Re-home the keyspace in the same phase that cuts
                    // the routing over — the front is held, so no
                    // request can race the redistribution.
                    let mig = stores.clone();
                    rs.migrate = Some(Box::new(move |ctx| {
                        let (mut moved, mut bytes) = (0u64, 0u64);
                        for idx in 0..mig.len() {
                            let entries = mig[idx].lock().drain_entries();
                            for (k, v) in entries {
                                let home = shard_of(&k, to_n);
                                if home != idx {
                                    moved += 1;
                                    bytes += v.len() as u64;
                                }
                                mig[home].lock().set(&k, v);
                            }
                        }
                        ctx.note_moved(moved, bytes);
                        Ok(())
                    }));
                }
                rs
            });

            if report.max_phase_quiesce() > constraints.max_concurrent_quiesce {
                let mut over = sh.over_quiesce.lock();
                if over.is_none() {
                    *over = Some(format!(
                        "wave {} quiesced {} instances in one phase (bound {})",
                        w + 1,
                        report.max_phase_quiesce(),
                        constraints.max_concurrent_quiesce
                    ));
                }
            }

            for target in report.installed_targets(&plan) {
                sh.applied.lock().push(target.clone());
            }
            if report.ok() {
                sh.waves_landed.fetch_add(1, Ordering::SeqCst);
                *sh.cur_n.lock() = to_n;
                sh.wave_log.lock().push(format!(
                    "wave -> {to_n} shards in {} phases ok",
                    report.phases.len()
                ));
                // Atomic post-wave snapshot: every durable scripted key
                // sits at exactly its `shard_of(key, to_n)` home.
                let mut viol = sh.homing.lock();
                if viol.is_none() {
                    'keys: for r in &sh.reqs {
                        let homes: Vec<usize> = (0..sh.max_n)
                            .filter(|i| stores[*i].lock().get(&r.key).is_some())
                            .collect();
                        if homes.is_empty() {
                            continue;
                        }
                        let home = shard_of(&r.key, to_n);
                        if homes.len() > 1 {
                            *viol = Some(format!(
                                "key {} double-homed after planned re-homing to \
                                 {to_n} shards: stores {:?}",
                                r.key,
                                homes.iter().map(|i| i + 1).collect::<Vec<_>>()
                            ));
                            break 'keys;
                        }
                        if homes[0] != home {
                            *viol = Some(format!(
                                "key {} homed at store {} instead of {} after \
                                 planned re-homing to {to_n} shards",
                                r.key,
                                homes[0] + 1,
                                home + 1
                            ));
                            break 'keys;
                        }
                    }
                }
            } else {
                sh.wave_log.lock().push(format!(
                    "wave -> {to_n} shards FAILED at phase {:?}",
                    report.error.as_ref().map(|(i, _)| i)
                ));
            }
        });
    }

    let fresh = {
        let sh = Arc::clone(&shared);
        Box::new(move || {
            sh.requests_q.lock().clear();
            sh.replies_q.lock().clear();
            for r in &sh.reqs {
                r.acked.store(false, Ordering::SeqCst);
            }
            *sh.cur_n.lock() = sh.base_n;
            sh.applied.lock().clear();
            sh.wave_log.lock().clear();
            *sh.plan_bad.lock() = None;
            *sh.over_quiesce.lock() = None;
            *sh.homing.lock() = None;
            sh.waves_fired.store(0, Ordering::SeqCst);
            sh.waves_landed.store(0, Ordering::SeqCst);

            let rt = Runtime::new(
                &sh.programs[&sh.base_n],
                RuntimeConfig {
                    default_link: LinkKind::Sim { latency: ms(1), bandwidth: 0 },
                    clock: Clock::simulated(),
                    ..RuntimeConfig::default()
                },
            );
            rt.set_tracing(true);
            let mut front = ShardFrontApp::new(ShardMode::ByKey, sh.base_n);
            front.requests = Arc::clone(&sh.requests_q);
            front.replies = Arc::clone(&sh.replies_q);
            rt.bind_app("Fnt", Box::new(front));
            let mut stores = Vec::new();
            for i in 1..=sh.max_n {
                let store = Arc::new(Mutex::new(Store::new()));
                stores.push(Arc::clone(&store));
                if i <= sh.base_n {
                    rt.bind_app(&format!("Bck{i}"), Box::new(ServerApp::with_store(store)));
                }
            }
            *sh.stores.lock() = stores;
            rt.set_policy("Fnt", "junction", Policy::OnDemand);
            rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();
            // No link chaos, for the same FIFO reason as the sharded
            // scenarios.
            rt
        }) as Box<dyn Fn() -> Runtime>
    };

    let check = {
        let sh = Arc::clone(&shared);
        Box::new(move |rt: &Runtime, out: &SimOutcome| -> Verdict {
            let stores = sh.stores.lock();
            let applied = sh.applied.lock();

            // Plan-validity and quiesce-bound oracles take precedence:
            // they are what this scenario exists to judge.
            let mut failure: Option<String> = sh
                .plan_bad
                .lock()
                .clone()
                .or_else(|| sh.over_quiesce.lock().clone())
                .or_else(|| sh.homing.lock().clone());

            if failure.is_none() {
                for r in &sh.reqs {
                    let homes: Vec<usize> = (0..sh.max_n)
                        .filter(|i| stores[*i].lock().get(&r.key).is_some())
                        .collect();
                    if homes.len() > 1 {
                        failure = Some(format!(
                            "key {} double-homed at horizon: stores {:?}",
                            r.key,
                            homes.iter().map(|i| i + 1).collect::<Vec<_>>()
                        ));
                        break;
                    }
                }
            }

            let ok_acks =
                sh.replies_q.lock().iter().filter(|r| matches!(r, Reply::Ok)).count();
            let durable = sh
                .reqs
                .iter()
                .filter(|r| {
                    (0..sh.max_n)
                        .any(|i| stores[i].lock().get(&r.key).is_some_and(|v| v == r.value))
                })
                .count();
            let lost_acked = ok_acks.saturating_sub(durable);
            let acked =
                sh.reqs.iter().filter(|r| r.acked.load(Ordering::SeqCst)).count();
            let held_at_end = rt.held_instances().len();
            let fenced_sends = rt.link_stats().fenced;
            let jsonl = rt.trace_jsonl();
            let dropped = rt.trace_dropped();

            // One epoch per installed phase: conformance is judged at
            // every phase boundary.
            let mut chain: Vec<&CompiledProgram> = vec![&sh.programs[&sh.base_n]];
            for target in applied.iter() {
                chain.push(target);
            }
            let conformance = check_repair_chain(&jsonl, dropped, &chain, false);
            let waves_fired = sh.waves_fired.load(Ordering::SeqCst);
            let waves_landed = sh.waves_landed.load(Ordering::SeqCst);
            let repair_ok = waves_landed == waves_fired;
            let repairs = sh.wave_log.lock().clone();

            let failure = failure
                .or_else(|| {
                    (lost_acked > 0).then(|| {
                        format!(
                            "lost {lost_acked} acked write(s): {ok_acks} OK acks, \
                             {durable} durable keys"
                        )
                    })
                })
                .or_else(|| {
                    (held_at_end > 0).then(|| format!("{held_at_end} instance(s) left held"))
                })
                .or_else(|| {
                    (!conformance.ok).then(|| format!("conformance: {}", conformance.detail))
                })
                .or_else(|| {
                    (!out.truncated && !repair_ok).then(|| {
                        format!("only {waves_landed}/{waves_fired} planner waves landed")
                    })
                });
            Verdict {
                acked,
                lost_acked,
                stale_applied: false,
                repair_ok,
                fenced_sends,
                held_at_end,
                repairs,
                conformance,
                failure,
                trace_jsonl: jsonl,
            }
        }) as Box<dyn Fn(&Runtime, &SimOutcome) -> Verdict>
    };

    Scene { exec, boot_instances, fresh, check }
}

// =====================================================================
// Checkpoint/restore mesh
// =====================================================================

/// Counter app for the mesh primaries: `save` checkpoints the counter
/// and records what was captured, so recovery can be validated against
/// genuinely checkpointed states only.
struct MeshCounterApp {
    counter: Arc<AtomicUsize>,
    checkpointed: Arc<Mutex<Vec<i64>>>,
    recovered: Arc<Mutex<Option<i64>>>,
}

impl InstanceApp for MeshCounterApp {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        let v = self.counter.load(Ordering::SeqCst) as i64;
        self.checkpointed.lock().push(v);
        Ok(Value::Int(v))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        let v = value.as_int().ok_or("bad checkpoint")?;
        self.counter.store(v as usize, Ordering::SeqCst);
        *self.recovered.lock() = Some(v);
        Ok(())
    }
    // The counter and recovery mark drive behavior the DFS fingerprint
    // must see, or hash-pruning could collapse genuinely distinct
    // states.
    fn sim_digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for word in [
            self.counter.load(Ordering::SeqCst) as u64,
            self.checkpointed.lock().len() as u64,
            self.recovered.lock().map_or(u64::MAX, |v| v as u64),
        ] {
            h = (h ^ word).wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Blob store app: keeps the latest checkpoint value.
struct MeshBlobApp {
    latest: Arc<Mutex<Option<Value>>>,
}

impl InstanceApp for MeshBlobApp {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        self.latest.lock().clone().ok_or("no checkpoint stored".into())
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        *self.latest.lock() = Some(value.clone());
        Ok(())
    }
    fn sim_digest(&self) -> u64 {
        self.latest
            .lock()
            .as_ref()
            .and_then(|v| v.as_int())
            .map_or(0x9e3779b97f4a7c15, |v| (v as u64).wrapping_mul(0x100000001b3))
    }
}

/// Scripted virtual times (ms) for the restore scenario.
const RS_CRASH_AT: u64 = 260;
const RS_RESUME_AT: u64 = 700;

struct RsShared {
    n: usize,
    k: usize,
    counters: Vec<Arc<AtomicUsize>>,
    checkpointed: Vec<Arc<Mutex<Vec<i64>>>>,
    recovered: Vec<Arc<Mutex<Option<i64>>>>,
    /// `blobs[i][j]`: store `d{i+1}_{j+1}`'s latest checkpoint.
    blobs: Vec<Vec<Arc<Mutex<Option<Value>>>>>,
    /// While true, scripted checkpoints skip `p1` (the green fence:
    /// park the junction across the crash window so a restart-time
    /// checkpoint of reset state cannot race recovery).
    parked: AtomicBool,
    /// Whether the scripted crash actually fired this run. A shrunk
    /// replay can suppress the crash injection entirely; the recovery
    /// liveness oracle must not demand recovery from a crash that
    /// never happened.
    crashed: AtomicBool,
    landmark: Mutex<Option<i64>>,
    ticks: AtomicUsize,
    sup: Mutex<Option<Supervisor>>,
    boot: CompiledProgram,
}

fn wire_restore(spec: &ScheduleSpec) -> Scene {
    let (n, k) = (spec.shards, spec.replicas);
    let boot = csaw_core::compile(checkpoint_mesh(n, k), &LoadConfig::new()).unwrap();
    let boot_instances = {
        let mut v: Vec<String> = (1..=n)
            .flat_map(|i| {
                std::iter::once(mesh_primary(i)).chain((1..=k).map(move |j| mesh_store(i, j)))
            })
            .collect();
        v.sort();
        v
    };

    let shared = Arc::new(RsShared {
        n,
        k,
        counters: (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect(),
        checkpointed: (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect(),
        recovered: (0..n).map(|_| Arc::new(Mutex::new(None))).collect(),
        blobs: (0..n)
            .map(|_| (0..k).map(|_| Arc::new(Mutex::new(None))).collect())
            .collect(),
        parked: AtomicBool::new(false),
        crashed: AtomicBool::new(false),
        landmark: Mutex::new(None),
        ticks: AtomicUsize::new(0),
        sup: Mutex::new(None),
        boot,
    });

    let mut exec = SimExecutor::new(SimConfig {
        seed: spec.seed,
        max_steps: spec.max_steps,
        horizon: spec.horizon,
        max_nested: 4,
    });

    // Counters advance on scripted ticks; checkpoints are scripted
    // invokes (no periodic policy), so both sides of the crash race
    // live at fixed virtual times and the walk orders everything else
    // around them.
    let mut tick_times: Vec<u64> = (1..=24).map(|i| i * 10).collect();
    tick_times.extend((21..=30).map(|i| i * 20));
    for t in tick_times {
        let sh = Arc::clone(&shared);
        exec.inject_at(ms(t), &format!("tick-{t}"), move |_rt| {
            for c in &sh.counters {
                c.fetch_add(1, Ordering::SeqCst);
            }
            sh.ticks.fetch_add(sh.n, Ordering::SeqCst);
        });
    }
    // Dense checkpoints through the crash/restart window. The parked
    // flag suppresses them for `p1` until the resume mark: a scripted
    // checkpoint invoked mid-recovery cannot corrupt anything — the
    // runtime flushes pending junction deliveries before an invoked
    // activation, so `recover` always schedules first and the invoke
    // serializes behind it — but parking keeps the crash window quiet
    // so the recovery path itself is what the walk reorders. The other
    // primaries keep checkpointing throughout.
    let mut ckpt_times: Vec<u64> = (0..12).map(|i| 30 + i * 20).collect();
    ckpt_times.extend((0..15).map(|i| RS_CRASH_AT + i * 10));
    ckpt_times.extend([RS_RESUME_AT, RS_RESUME_AT + 20, RS_RESUME_AT + 40]);
    for t in ckpt_times {
        let sh = Arc::clone(&shared);
        exec.inject_at(ms(t), &format!("ckpt-{t}"), move |rt| {
            for i in 1..=sh.n {
                if i == 1 && sh.parked.load(Ordering::SeqCst) {
                    continue;
                }
                let deadline = rt.clock().now() + REQUEST_DEADLINE;
                let _ = rt.invoke_deadline(&mesh_primary(i), "checkpoint", deadline);
            }
        });
    }
    {
        let sh = Arc::clone(&shared);
        exec.inject_at(ms(RS_CRASH_AT), "crash-p1", move |rt| {
            sh.parked.store(true, Ordering::SeqCst);
            sh.crashed.store(true, Ordering::SeqCst);
            // The durable floor: the blob `p1`'s first store replica has
            // *applied* at crash time. A later save may still be in
            // flight on the link; recovery serving the applied blob
            // instead of the in-flight one is correct, so the oracle
            // must not anchor on the primary's in-memory counter.
            *sh.landmark.lock() = sh.blobs[0][0].lock().as_ref().and_then(|v| v.as_int());
            rt.crash(&mesh_primary(1));
            // The crash loses in-memory state; the repair must restore
            // it from the checkpoint mesh.
            sh.counters[0].store(0, Ordering::SeqCst);
        });
    }
    {
        let sh = Arc::clone(&shared);
        exec.inject_at(ms(RS_RESUME_AT), "resume-checkpoints", move |_rt| {
            sh.parked.store(false, Ordering::SeqCst);
        });
    }

    let fresh = {
        let sh = Arc::clone(&shared);
        let fence = fence_enabled(spec);
        Box::new(move || {
            for c in &sh.counters {
                c.store(0, Ordering::SeqCst);
            }
            for c in &sh.checkpointed {
                c.lock().clear();
            }
            for r in &sh.recovered {
                *r.lock() = None;
            }
            for row in &sh.blobs {
                for b in row {
                    *b.lock() = None;
                }
            }
            sh.parked.store(false, Ordering::SeqCst);
            sh.crashed.store(false, Ordering::SeqCst);
            *sh.landmark.lock() = None;
            sh.ticks.store(0, Ordering::SeqCst);
            if let Some(old) = sh.sup.lock().take() {
                old.stop();
            }

            let rt = Runtime::new(
                &sh.boot,
                RuntimeConfig {
                    default_link: LinkKind::Sim { latency: ms(1), bandwidth: 0 },
                    clock: Clock::simulated(),
                    ..RuntimeConfig::default()
                },
            );
            rt.set_tracing(true);
            for i in 1..=sh.n {
                rt.bind_app(
                    &mesh_primary(i),
                    Box::new(MeshCounterApp {
                        counter: Arc::clone(&sh.counters[i - 1]),
                        checkpointed: Arc::clone(&sh.checkpointed[i - 1]),
                        recovered: Arc::clone(&sh.recovered[i - 1]),
                    }),
                );
                for j in 1..=sh.k {
                    rt.bind_app(
                        &mesh_store(i, j),
                        Box::new(MeshBlobApp {
                            latest: Arc::clone(&sh.blobs[i - 1][j - 1]),
                        }),
                    );
                }
                rt.set_policy(&mesh_primary(i), "checkpoint", Policy::OnDemand);
            }
            rt.run_main(vec![Value::Duration(ms(600))]).unwrap();

            let verify_recovered = Arc::clone(&sh.recovered[0]);
            // The deliberate bug: with the fence off, the repair policy
            // restarts the crashed primary but never re-arms recovery —
            // the process comes back "healthy" and empty, `recovered`
            // stays `None`, and the liveness oracle reports it at the
            // horizon. The green policy asserts `NeedState` after the
            // restart so the `recover` junction's guard fires.
            let sup = rt.supervise(SupervisorConfig {
                poll: ms(20),
                verify_timeout: ms(500),
                policy: RepairPolicy::new()
                    .on(
                        FailureClass::Crash,
                        vec![RepairAction::RestartThen(Arc::new(
                            move |rt: &Runtime, inst: &str| {
                                if fence {
                                    rt.deliver_for_test(
                                        inst,
                                        "recover",
                                        Update::assert("NeedState", "sim-driver"),
                                    );
                                }
                            },
                        ))],
                    )
                    .verify_with(move |_rt| verify_recovered.lock().is_some()),
                ..SupervisorConfig::default()
            });
            *sh.sup.lock() = Some(sup);
            rt
        }) as Box<dyn Fn() -> Runtime>
    };

    let check = {
        let sh = Arc::clone(&shared);
        Box::new(move |rt: &Runtime, out: &SimOutcome| -> Verdict {
            let landmark = *sh.landmark.lock();
            let recovered = *sh.recovered[0].lock();
            let mut failure: Option<String> = None;

            // Safety: a recovered state must be one that was genuinely
            // checkpointed, and not older than the checkpoint the
            // store had durably applied when the primary crashed.
            if let Some(r) = recovered {
                if !sh.checkpointed[0].lock().contains(&r) {
                    failure = Some(format!("recovered state {r} was never checkpointed"));
                } else if let Some(l) = landmark {
                    if r < l {
                        failure = Some(format!(
                            "recovered state {r} predates the crash landmark {l}"
                        ));
                    }
                }
            }
            // Replica agreement: every store blob is a genuinely
            // checkpointed state of its primary.
            if failure.is_none() {
                'outer: for i in 1..=sh.n {
                    for j in 1..=sh.k {
                        if let Some(v) = sh.blobs[i - 1][j - 1].lock().clone() {
                            let genuine = v
                                .as_int()
                                .is_some_and(|v| sh.checkpointed[i - 1].lock().contains(&v));
                            if !genuine {
                                failure = Some(format!(
                                    "store {} holds a never-checkpointed state {v:?}",
                                    mesh_store(i, j)
                                ));
                                break 'outer;
                            }
                        }
                    }
                }
            }

            let sup_guard = sh.sup.lock();
            let sup = sup_guard.as_ref().expect("scene runtime has a supervisor");
            let records = sup.records();
            let repairs = repair_lines(&records);
            let repair_ok =
                records.iter().any(|r| r.instance == mesh_primary(1) && r.ok);
            let held_at_end = rt.held_instances().len();
            let jsonl = rt.trace_jsonl();
            let dropped = rt.trace_dropped();
            // Restart keeps the program; the only epoch is the boot
            // one. The repair hook injects a NeedState apply.
            let conformance = check_repair_chain(&jsonl, dropped, &[&sh.boot], true);

            // Liveness, only when the walk reached the horizon and the
            // scripted crash actually fired (a shrunk replay can
            // suppress the crash injection).
            if failure.is_none() && !out.truncated && sh.crashed.load(Ordering::SeqCst) {
                if recovered.is_none() {
                    failure = Some("crash recovery never completed".to_string());
                } else if !repair_ok {
                    failure = Some("restart repair did not verify".to_string());
                }
            }
            if failure.is_none() && held_at_end > 0 {
                failure = Some(format!("{held_at_end} instance(s) left held"));
            }
            if failure.is_none() && !conformance.ok {
                failure = Some(format!("conformance: {}", conformance.detail));
            }
            Verdict {
                acked: sh.ticks.load(Ordering::SeqCst),
                lost_acked: 0,
                stale_applied: false,
                repair_ok,
                fenced_sends: rt.link_stats().fenced,
                held_at_end,
                repairs,
                conformance,
                failure,
                trace_jsonl: jsonl,
            }
        }) as Box<dyn Fn(&Runtime, &SimOutcome) -> Verdict>
    };

    Scene { exec, boot_instances, fresh, check }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "debug aid"]
    fn debug_red_seed() {
        let seed: u64 = std::env::var("DBG_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(501);
        let scenario = std::env::var("DBG_SCENARIO")
            .ok()
            .and_then(|s| Scenario::parse(&s))
            .unwrap_or(Scenario::Failover);
        let n: usize = std::env::var("DBG_N").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
        let k: usize = std::env::var("DBG_K").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
        let mut spec = ScheduleSpec::new(scenario, n, k, seed);
        if std::env::var("DBG_BUGGY").is_ok() {
            spec = spec.with_fence_off();
        }
        let out = run_schedule(&spec);
        if let Ok(p) = std::env::var("DBG_TRACE") {
            std::fs::write(p, &out.trace_jsonl).ok();
        }
        eprintln!(
            "seed {seed}: failure={:?} acked={} vms={} steps={} truncated={} repairs={:?}",
            out.failure,
            out.acked,
            out.virtual_ms,
            out.steps.len(),
            out.truncated,
            out.repairs
        );
    }

    /// One green schedule end to end: requests acked, the supervisor
    /// promotes the spare, the fence holds, the oracle is green.
    #[test]
    fn green_schedule_repairs_and_keeps_invariants() {
        let out = run_schedule(&ScheduleSpec::for_seed(7));
        assert!(out.failure.is_none(), "oracle: {:?}\nsteps: {}", out.failure, out.steps.len());
        assert!(
            out.repair_ok,
            "promotion repair did not verify; repairs: {:?}, steps: {}, truncated: {}, vms: {}",
            out.repairs,
            out.steps.len(),
            out.truncated,
            out.virtual_ms
        );
        assert!(out.acked >= 2, "too few acked requests: {}", out.acked);
        assert!(out.fenced_sends > 0, "fence never rejected the zombie");
        assert!(!out.truncated, "step budget too small for the scenario");
    }

    /// Same seed, two fresh runtimes → byte-identical schedules and
    /// byte-identical traces (the determinism contract).
    #[test]
    fn same_seed_is_byte_identical() {
        let a = run_schedule(&ScheduleSpec::for_seed(11));
        let b = run_schedule(&ScheduleSpec::for_seed(11));
        assert_eq!(a.steps, b.steps, "schedules diverged for one seed");
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert_eq!(a.trace_jsonl, b.trace_jsonl, "traces diverged for one seed");
        assert!(!a.trace_jsonl.is_empty(), "trace recording was off");
    }

    /// The deliberate ordering bug (fence disabled): the oracle flags
    /// split-brain, the artifact shrinks, and the shrunk schedule still
    /// reproduces the same failure under replay.
    #[test]
    fn fencing_bug_is_caught_shrunk_and_replayed() {
        let spec = ScheduleSpec::buggy(3);
        let out = run_schedule(&spec);
        let art = out.artifact().expect("fence-off schedule must go red");
        assert!(
            art.reason.contains("split-brain"),
            "wrong failure class: {}",
            art.reason
        );

        // Unshrunk replay reproduces it exactly.
        let replayed = replay_schedule(&spec, &art.steps);
        assert_eq!(replayed.failure.as_deref(), Some(art.reason.as_str()));

        // Shrinking keeps the failure and loses schedule noise.
        let shrunk = shrink_failure(&spec, &art);
        assert!(shrunk.len() < art.steps.len(), "shrink removed nothing");
        let again = replay_schedule(&spec, &shrunk);
        assert!(again.failure.is_some(), "shrunk schedule went green");

        // And the artifact survives a JSON roundtrip into a new replay.
        let json = Artifact {
            seed: art.seed,
            reason: art.reason.clone(),
            instances: art.instances.clone(),
            steps: shrunk,
        }
        .to_json();
        let back = Artifact::from_json(&json).expect("artifact parses");
        let final_run = replay_schedule(&spec, &back.steps);
        assert!(final_run.failure.is_some(), "replay-from-JSON went green");
    }

    /// Satellite check: an artifact recorded against one scenario's
    /// instance set is loudly refused when replayed against another's.
    #[test]
    fn replay_artifact_rejects_cross_scenario_instances() {
        let out = run_schedule(&ScheduleSpec::for_seed(1));
        let art = Artifact {
            seed: 1,
            reason: "synthetic".into(),
            instances: out.instances.clone(),
            steps: out.steps.clone(),
        };
        let other = ScheduleSpec::new(Scenario::Reshard, 2, 2, 1);
        let scene = wire(&other);
        let rt = (scene.fresh)();
        let err = scene.exec.replay_artifact(&rt, &art).unwrap_err();
        assert!(
            err.contains("instance set mismatch"),
            "wrong refusal message: {err}"
        );
        rt.shutdown();
    }

    /// Tentpole smoke: bounded DFS with the reductions on exhausts the
    /// small-budget tree green, and the naive no-reduction baseline
    /// needs at least 5x more schedules (here it blows a low cap
    /// without finishing, so the factor is a lower bound).
    #[test]
    fn dfs_small_budget_completes_and_prunes() {
        let spec = ScheduleSpec::new(Scenario::Restore, 1, 1, 2).with_budget(12);
        let full = dfs_schedule(&spec, &DfsConfig::default());
        assert!(full.complete, "reduced DFS did not exhaust the tree");
        assert!(full.failures.is_empty(), "red at small budget: {:?}", full.failures);
        assert!(full.hash_pruned > 0, "state-hash pruning never fired");

        let naive = dfs_schedule(
            &spec,
            &DfsConfig { sleep_sets: false, hash_prune: false, max_schedules: 500 },
        );
        assert!(naive.failures.is_empty(), "naive found a red the reduced run missed");
        assert!(
            naive.schedules >= 5 * full.schedules,
            "reduction under 5x: naive {} vs reduced {}",
            naive.schedules,
            full.schedules
        );
    }
}
