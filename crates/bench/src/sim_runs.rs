//! Deterministic-simulation schedules over the supervised fail-over
//! architecture: the concrete scenario family behind `csaw-sim`.
//!
//! Every schedule runs the §7.4 supervised fail-over program (front
//! `f`, preferred `o`, spare `s`) on a [`Clock::simulated`] runtime,
//! single-threaded under a [`SimExecutor`], with the same fault story
//! the MTTR bench plays out in wall time:
//!
//! 1. client requests arrive (each one a time-scheduled injection that
//!    enqueues a command and `invoke`s the front),
//! 2. a benign live reconfiguration lands mid-flight,
//! 3. the preferred back-end is partitioned away,
//! 4. heartbeats raise suspicion, the supervisor confirms a quorum and
//!    repairs by promoting the spare (fencing the zombie first —
//!    unless the schedule deliberately disables the fence),
//! 5. more requests ride the promoted architecture,
//! 6. the partition heals and the zombie is poked into replaying its
//!    last acknowledged work.
//!
//! The oracle checks the standing invariants after the horizon: a
//! counting bound on lost acknowledged writes (every `+OK` ack must be
//! backed by a durable serve footprint in some back-end store — sound
//! because links are at-most-once, see the comment at the check),
//! no poke-induced split-brain transition of the front's `Reply` cell,
//! no instance left held, and a cross-epoch conformance pass of the
//! recorded trace against the program chain. A red schedule serializes
//! to a JSON [`Artifact`]; [`replay_schedule`] re-executes it and
//! [`shrink_failure`] minimizes it while re-checking the oracle.

use std::sync::Arc;
use std::time::Duration;

use csaw_arch::watched::{promoted, supervised_failover, WatchedSpec};
use csaw_core::program::{CompiledProgram, LoadConfig};
use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{
    Artifact, Clock, FailureClass, FaultPlan, HeartbeatConfig, LinkKind, ReconfigSpec,
    RepairPolicy, Runtime, RuntimeConfig, SimConfig, SimExecutor, SimOutcome, StepRecord,
    SupervisorConfig,
};
use csaw_runtime::supervisor::RepairAction;
use mini_redis::apps::ServerApp;
use mini_redis::{Command, Reply, Store};
use parking_lot::Mutex;

use crate::chaos::KvFront;
use crate::conformance_runs::ConformanceSummary;
use crate::self_healing::check_repair_chain;

/// Front-end `wait` deadline (virtual).
const FRONT_TIMEOUT: Duration = Duration::from_millis(200);
/// Per-request invoke deadline (virtual). Kept short: a blocked invoke
/// runs nested, where supervisor polls cannot fire, so a long deadline
/// would starve detection.
const REQUEST_DEADLINE: Duration = Duration::from_millis(80);
/// Directed links between the preferred back-end and the rest.
const O_LINKS: [(&str, &str); 4] = [("o", "f"), ("f", "o"), ("o", "s"), ("s", "o")];

/// One schedule's parameters. Everything that shapes the run is here,
/// so `(spec, steps)` fully determines a replay.
#[derive(Clone, Debug)]
pub struct ScheduleSpec {
    /// Seed for the explorer's random walk *and* the link-chaos dice.
    pub seed: u64,
    /// Whether the supervisor's reconfigure repair fences the zombie
    /// first. `false` re-introduces the split-brain ordering bug on
    /// purpose; the oracle must catch it.
    pub fence: bool,
    /// Mild seeded link chaos (reordering) on the front ↔ spare path,
    /// on top of the scripted partition.
    pub chaos: bool,
    /// Step budget per schedule.
    pub max_steps: usize,
    /// Virtual-time horizon.
    pub horizon: Duration,
}

impl ScheduleSpec {
    /// The standard schedule for one seed: fence on, chaos on.
    pub fn for_seed(seed: u64) -> ScheduleSpec {
        ScheduleSpec {
            seed,
            fence: true,
            chaos: true,
            max_steps: 6000,
            horizon: Duration::from_millis(1500),
        }
    }

    /// The deliberate-bug variant: identical schedule, fence disabled.
    pub fn buggy(seed: u64) -> ScheduleSpec {
        ScheduleSpec { fence: false, ..ScheduleSpec::for_seed(seed) }
    }
}

/// What one schedule run produced, plus the oracle's verdict.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// The seed the schedule ran under.
    pub seed: u64,
    /// The recorded schedule (explore) or the re-recorded one (replay).
    pub steps: Vec<StepRecord>,
    /// Virtual time covered.
    pub virtual_ms: f64,
    /// The walk hit its step budget before the horizon.
    pub truncated: bool,
    /// Requests that produced a reply.
    pub acked: usize,
    /// Restored OK acks in excess of durable serve footprints — must
    /// be 0 (every acknowledged write is backed by a durable serve).
    pub lost_acked: usize,
    /// The healed zombie's stale reply landed — must stay false.
    pub stale_applied: bool,
    /// The supervisor's promotion repair verified.
    pub repair_ok: bool,
    /// Sends rejected by the fence over the run.
    pub fenced_sends: u64,
    /// Instances still held at the horizon — must be 0.
    pub held_at_end: usize,
    /// One line per supervisor repair: `instance class action ok×attempts`.
    pub repairs: Vec<String>,
    /// Cross-epoch conformance verdict.
    pub conformance: ConformanceSummary,
    /// `None` if every invariant held; otherwise what broke.
    pub failure: Option<String>,
    /// The recorded trace (virtual timestamps — byte-stable per seed).
    pub trace_jsonl: String,
}

impl ScheduleOutcome {
    /// Package a red schedule for replay.
    pub fn artifact(&self) -> Option<Artifact> {
        self.failure.as_ref().map(|reason| Artifact {
            seed: self.seed,
            reason: reason.clone(),
            steps: self.steps.clone(),
        })
    }
}

/// Explore one schedule from the spec's seed.
pub fn run_schedule(spec: &ScheduleSpec) -> ScheduleOutcome {
    drive(spec, None)
}

/// Re-execute a recorded schedule (from an [`Artifact`] or a shrink
/// candidate) against a fresh runtime built from the same spec.
pub fn replay_schedule(spec: &ScheduleSpec, steps: &[StepRecord]) -> ScheduleOutcome {
    drive(spec, Some(steps))
}

/// Minimize a red schedule: greedy chunk deletion, re-replaying the
/// candidate and re-running the oracle each time. Returns the shrunk
/// step list (still failing for the same reason class).
pub fn shrink_failure(spec: &ScheduleSpec, artifact: &Artifact) -> Vec<StepRecord> {
    csaw_runtime::sim::shrink_steps(&artifact.steps, |cand| {
        replay_schedule(spec, cand).failure.is_some()
    })
}

/// Deterministic request workload: a handful of unique-key SETs, one
/// GET. Index is the injection's position in the request series.
fn command_for(i: usize) -> Command {
    if i == 2 {
        Command::Get("rq0".to_string())
    } else {
        Command::Set(format!("rq{i}"), format!("rv{i}").into_bytes())
    }
}

/// The scripted SET keys (window 2 is the GET).
const SET_WINDOWS: [usize; 5] = [0, 1, 3, 4, 5];

/// Shared driver-side bookkeeping the injections write into.
#[derive(Default)]
struct Driven {
    acked: usize,
    injected_reconfig: bool,
    /// `Reply@f` just before the zombie poke. The split-brain oracle
    /// only counts a *transition* to true caused by the poke: the
    /// write-to-all mode routinely leaves a benign trailing `Reply`
    /// assert (the second back-end's answer re-arms the prop after the
    /// front consumed the first), which is protocol residue, not
    /// split-brain.
    poke_reply_before: Option<bool>,
}

fn drive(spec: &ScheduleSpec, replay: Option<&[StepRecord]>) -> ScheduleOutcome {
    let wspec = WatchedSpec::default();
    let boot = csaw_core::compile(supervised_failover(&wspec), &LoadConfig::new()).unwrap();
    let target = csaw_core::compile(promoted(&wspec), &LoadConfig::new()).unwrap();

    let clock = Clock::simulated();
    let rt = Runtime::new(
        &boot,
        RuntimeConfig {
            default_link: LinkKind::Sim { latency: Duration::from_millis(1), bandwidth: 0 },
            clock: clock.clone(),
            ..RuntimeConfig::default()
        },
    );
    rt.set_tracing(true);

    let front = KvFront::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let o = ServerApp::new();
    let s = ServerApp::new();
    let store_o = Arc::clone(&o.store);
    let store_s = Arc::clone(&s.store);
    rt.bind_app("o", Box::new(o));
    rt.bind_app("s", Box::new(s));
    rt.set_policy("f", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();
    rt.enable_heartbeats(HeartbeatConfig {
        interval: Duration::from_millis(20),
        suspicion: Duration::from_millis(80),
        k_missed: 2,
    });
    if spec.chaos {
        // Mild seeded reordering on the surviving path. Deliberately no
        // drops (the partition script owns those) and no duplicates:
        // the watched reply protocol is not idempotent, so a duplicated
        // `Reply` assertion landing in a later request's wait satisfies
        // it with the *previous* reply payload — which makes the
        // driver's "acked" attribution (and thus the lost-write oracle)
        // unsound. The reorder delay stays well under the gap between
        // scripted requests for the same reason.
        let plan = FaultPlan::none()
            .with_reorder(0.20, Duration::from_millis(4))
            .with_seed(spec.seed ^ 0x51D0);
        rt.set_fault_plan("f", "s", plan.clone());
        rt.set_fault_plan("s", "f", plan.with_seed(spec.seed ^ 0x51D1));
    }

    let promote = target.clone();
    let sup = rt.supervise(SupervisorConfig {
        poll: Duration::from_millis(20),
        quorum: 2,
        confirm_polls: 2,
        verify_timeout: Duration::from_millis(500),
        fence_on_reconfigure: spec.fence,
        policy: RepairPolicy::new().on(
            FailureClass::Partition,
            vec![RepairAction::Reconfigure(Arc::new(move |_rt, _inst| {
                (promote.clone(), ReconfigSpec::default())
            }))],
        ),
        ..SupervisorConfig::default()
    });

    let driven = Arc::new(Mutex::new(Driven::default()));
    let mut exec = SimExecutor::new(SimConfig {
        seed: spec.seed,
        max_steps: spec.max_steps,
        horizon: spec.horizon,
        max_nested: 4,
    });

    // Requests: three before the partition, three on the promoted
    // architecture (the repair confirms around 260ms virtual). Each
    // injection enqueues one command and invokes the front; the
    // invoke's blocking drives nested schedule progress.
    let request_times: [(usize, u64); 6] =
        [(0, 10), (1, 25), (2, 40), (3, 550), (4, 620), (5, 690)];
    for (i, at_ms) in request_times {
        let requests = Arc::clone(&requests);
        let replies = Arc::clone(&replies);
        let driven = Arc::clone(&driven);
        exec.inject_at(Duration::from_millis(at_ms), &format!("request-{i}"), move |rt| {
            let cmd = command_for(i);
            {
                let mut q = requests.lock();
                q.clear();
                q.push_back(cmd);
            }
            let before = replies.lock().len();
            let deadline = rt.clock().now() + REQUEST_DEADLINE;
            let inv = rt.invoke_deadline("f", "junction", deadline);
            if std::env::var("DBG_SIM").is_ok() {
                let r = replies.lock();
                eprintln!(
                    "win {i}: t={:?} inv={:?} replies {}->{} last={:?}",
                    rt.clock().now(),
                    inv.as_ref().map(|_| ()),
                    before,
                    r.len(),
                    r.last()
                );
            }
            if replies.lock().len() > before {
                driven.lock().acked += 1;
            }
        });
    }

    // A benign live reconfiguration in the detection window: same
    // program, fresh epoch — reconfigure interleaved with the
    // supervisor's detect → repair machinery.
    {
        let driven = Arc::clone(&driven);
        let same = boot.clone();
        exec.inject_at(Duration::from_millis(100), "reconfig-identity", move |rt| {
            if rt.reconfigure(&same, ReconfigSpec::default()).is_ok() {
                driven.lock().injected_reconfig = true;
            }
        });
    }

    // The partition, then the heal + zombie poke.
    exec.inject_at(Duration::from_millis(60), "partition-o", |rt| {
        for (from, to) in O_LINKS {
            rt.set_fault_plan(from, to, FaultPlan::none().with_drop(1.0));
        }
    });
    {
        let driven = Arc::clone(&driven);
        exec.inject_at(Duration::from_millis(900), "heal-and-poke", move |rt| {
            driven.lock().poke_reply_before =
                Some(rt.peek_prop("f", "junction", "Reply") == Some(true));
            for (from, to) in O_LINKS {
                rt.set_fault_plan(from, to, FaultPlan::none());
            }
            // Re-arm the zombie's guard: with the fence up its stale
            // reply dies on the wire; without it, split-brain.
            rt.deliver_for_test("o", "junction", Update::assert("Run[o]", "sim-driver"));
        });
    }

    let SimOutcome { steps, virtual_time, truncated } = match replay {
        None => exec.explore(&rt),
        Some(steps) => exec.replay(&rt, steps),
    };

    // ---- oracle -----------------------------------------------------
    let d = driven.lock();
    // Lost-acked-write invariant, stated soundly for an *anonymous*
    // reply protocol. The front's reply carries no request identity and
    // the wait deliberately abandons late replies ("prioritize
    // throughput", Fig. 16), so a stale reply can satisfy a later
    // window's wait — per-window attribution of acks to commands is
    // unsound by construction (a second write-to-all reply re-arms
    // `Reply@f` and the residue survives promotion via state
    // migration). What *is* guaranteed: every restored `+OK` consumed
    // one `Reply` assertion, which came from one `reply` call, which a
    // back-end only makes after durably serving one scripted SET — and
    // the unique keys are never overwritten or deleted. So with
    // at-most-once links (no duplication chaos) the number of restored
    // OK acks can never exceed the number of durable per-store serve
    // footprints. An excess means an ack with no durable write behind
    // it: a genuinely lost acknowledged write.
    let ok_acks = replies.lock().iter().filter(|r| matches!(r, Reply::Ok)).count();
    let serve_footprints = |store: &Arc<Mutex<Store>>| -> usize {
        let s = store.lock();
        SET_WINDOWS
            .iter()
            .filter(|i| {
                s.get(&format!("rq{i}")).is_some_and(|v| v == format!("rv{i}").into_bytes())
            })
            .count()
    };
    let durable_serves = serve_footprints(&store_o) + serve_footprints(&store_s);
    let lost_acked = ok_acks.saturating_sub(durable_serves);
    let stale_applied = d.poke_reply_before == Some(false)
        && rt.peek_prop("f", "junction", "Reply") == Some(true);
    let records = sup.records();
    let repairs: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{} {} {} ok={} attempts={}",
                r.instance,
                r.class.label(),
                r.action,
                r.ok,
                r.attempts
            )
        })
        .collect();
    let repair_ok = records.iter().any(|r| r.instance == "o" && r.ok);
    let fenced_sends = rt.link_stats().fenced;
    let held_at_end = rt.held_instances().len();
    let jsonl = rt.trace_jsonl();
    let dropped = rt.trace_dropped();
    let programs = sup.programs();
    sup.stop();

    let mut chain: Vec<&CompiledProgram> = vec![&boot];
    if d.injected_reconfig {
        // The identity reconfigure always lands before the repair can
        // confirm (suspicion + quorum polls put the promotion later).
        chain.push(&boot);
    }
    chain.extend(programs.iter());
    // The zombie poke and heal-window retries inject applies with no
    // matching send in the trace.
    let conformance = check_repair_chain(&jsonl, dropped, &chain, true);
    let acked = d.acked;
    drop(d);
    rt.shutdown();

    let failure = if lost_acked > 0 {
        Some(format!(
            "lost {lost_acked} acked write(s): {ok_acks} OK acks, {durable_serves} durable serves"
        ))
    } else if stale_applied {
        Some("split-brain: zombie reply applied after heal".to_string())
    } else if held_at_end > 0 {
        Some(format!("{held_at_end} instance(s) left held"))
    } else if !conformance.ok {
        Some(format!("conformance: {}", conformance.detail))
    } else {
        None
    };
    ScheduleOutcome {
        seed: spec.seed,
        steps,
        virtual_ms: virtual_time.as_secs_f64() * 1e3,
        truncated,
        acked,
        lost_acked,
        stale_applied,
        repair_ok,
        fenced_sends,
        held_at_end,
        repairs,
        conformance,
        failure,
        trace_jsonl: jsonl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "debug aid"]
    fn debug_red_seed() {
        let seed: u64 = std::env::var("DBG_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(501);
        let out = run_schedule(&ScheduleSpec::for_seed(seed));
        eprintln!(
            "seed {seed}: failure={:?} acked={} vms={} steps={} repairs={:?}",
            out.failure, out.acked, out.virtual_ms, out.steps.len(), out.repairs
        );
        for line in out.trace_jsonl.lines() {
            if line.contains("\"Reconfig") || line.contains("Repair") || line.contains("Fence") {
                eprintln!("  {line}");
            }
        }
    }

    /// One green schedule end to end: requests acked, the supervisor
    /// promotes the spare, the fence holds, the oracle is green.
    #[test]
    fn green_schedule_repairs_and_keeps_invariants() {
        let out = run_schedule(&ScheduleSpec::for_seed(7));
        assert!(out.failure.is_none(), "oracle: {:?}\nsteps: {}", out.failure, out.steps.len());
        assert!(
            out.repair_ok,
            "promotion repair did not verify; repairs: {:?}, steps: {}, truncated: {}, vms: {}",
            out.repairs,
            out.steps.len(),
            out.truncated,
            out.virtual_ms
        );
        assert!(out.acked >= 2, "too few acked requests: {}", out.acked);
        assert!(out.fenced_sends > 0, "fence never rejected the zombie");
        assert!(!out.truncated, "step budget too small for the scenario");
    }

    /// Same seed, two fresh runtimes → byte-identical schedules and
    /// byte-identical traces (the determinism contract).
    #[test]
    fn same_seed_is_byte_identical() {
        let a = run_schedule(&ScheduleSpec::for_seed(11));
        let b = run_schedule(&ScheduleSpec::for_seed(11));
        assert_eq!(a.steps, b.steps, "schedules diverged for one seed");
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert_eq!(a.trace_jsonl, b.trace_jsonl, "traces diverged for one seed");
        assert!(!a.trace_jsonl.is_empty(), "trace recording was off");
    }

    /// The deliberate ordering bug (fence disabled): the oracle flags
    /// split-brain, the artifact shrinks, and the shrunk schedule still
    /// reproduces the same failure under replay.
    #[test]
    fn fencing_bug_is_caught_shrunk_and_replayed() {
        let spec = ScheduleSpec::buggy(3);
        let out = run_schedule(&spec);
        let art = out.artifact().expect("fence-off schedule must go red");
        assert!(
            art.reason.contains("split-brain"),
            "wrong failure class: {}",
            art.reason
        );

        // Unshrunk replay reproduces it exactly.
        let replayed = replay_schedule(&spec, &art.steps);
        assert_eq!(replayed.failure.as_deref(), Some(art.reason.as_str()));

        // Shrinking keeps the failure and loses schedule noise.
        let shrunk = shrink_failure(&spec, &art);
        assert!(shrunk.len() < art.steps.len(), "shrink removed nothing");
        let again = replay_schedule(&spec, &shrunk);
        assert!(again.failure.is_some(), "shrunk schedule went green");

        // And the artifact survives a JSON roundtrip into a new replay.
        let json = Artifact { seed: art.seed, reason: art.reason.clone(), steps: shrunk }.to_json();
        let back = Artifact::from_json(&json).expect("artifact parses");
        let final_run = replay_schedule(&spec, &back.steps);
        assert!(final_run.failure.is_some(), "replay-from-JSON went green");
    }
}
