//! Result emission: human-readable tables + JSON under `results/`.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A generic experiment result: named series of (x, y) points plus
/// free-form annotations (crash times, checkpoint times, totals…).
#[derive(Debug, Default, Serialize)]
pub struct Report {
    /// Experiment id (e.g. `fig23a`).
    pub id: String,
    /// What the paper's version shows.
    pub title: String,
    /// Named series.
    pub series: Vec<Series>,
    /// Scalar annotations.
    pub notes: Vec<(String, f64)>,
    /// Free-form remarks.
    pub remarks: Vec<String>,
}

/// One named series.
#[derive(Debug, Serialize)]
pub struct Series {
    /// Label (e.g. `Shard 1`).
    pub name: String,
    /// X-axis label.
    pub x: String,
    /// Y-axis label.
    pub y: String,
    /// Points.
    pub points: Vec<(f64, f64)>,
}

impl Report {
    /// New report.
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Add a series.
    pub fn series(
        &mut self,
        name: &str,
        x: &str,
        y: &str,
        points: Vec<(f64, f64)>,
    ) -> &mut Self {
        self.series.push(Series {
            name: name.to_string(),
            x: x.to_string(),
            y: y.to_string(),
            points,
        });
        self
    }

    /// Add a scalar note.
    pub fn note(&mut self, key: &str, value: f64) -> &mut Self {
        self.notes.push((key.to_string(), value));
        self
    }

    /// Add a remark.
    pub fn remark(&mut self, text: impl Into<String>) -> &mut Self {
        self.remarks.push(text.into());
        self
    }

    /// Print a compact human-readable rendering.
    pub fn print(&self) {
        println!("== {} — {} ==", self.id, self.title);
        for s in &self.series {
            println!("-- {} ({} vs {}) --", s.name, s.y, s.x);
            let n = s.points.len();
            // Print up to 24 evenly-spaced points per series.
            let step = (n / 24).max(1);
            for (i, (x, y)) in s.points.iter().enumerate() {
                if i % step == 0 || i == n - 1 {
                    println!("  {x:>12.3}  {y:>14.3}");
                }
            }
        }
        for (k, v) in &self.notes {
            println!("note: {k} = {v:.3}");
        }
        for r in &self.remarks {
            println!("remark: {r}");
        }
    }

    /// Write JSON under `results/<id>.json` (repo root if run from
    /// there; otherwise relative to the current directory).
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, serde_json::to_vec_pretty(self).expect("serialize report"))?;
        Ok(path)
    }

    /// Print and persist.
    pub fn finish(&self) {
        self.print();
        match self.write_json() {
            Ok(p) => println!("[written {}]", p.display()),
            Err(e) => eprintln!("[could not write results: {e}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("figX", "test");
        r.series("s1", "t", "qps", vec![(0.0, 1.0), (1.0, 2.0)])
            .note("total", 3.0)
            .remark("hello");
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.notes.len(), 1);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("figX"));
    }
}
