//! Result emission: human-readable tables + JSON under `results/`.

use std::fs;
use std::path::PathBuf;

/// A generic experiment result: named series of (x, y) points plus
/// free-form annotations (crash times, checkpoint times, totals…).
#[derive(Debug, Default)]
pub struct Report {
    /// Experiment id (e.g. `fig23a`).
    pub id: String,
    /// What the paper's version shows.
    pub title: String,
    /// Named series.
    pub series: Vec<Series>,
    /// Scalar annotations.
    pub notes: Vec<(String, f64)>,
    /// Free-form remarks.
    pub remarks: Vec<String>,
}

/// One named series.
#[derive(Debug)]
pub struct Series {
    /// Label (e.g. `Shard 1`).
    pub name: String,
    /// X-axis label.
    pub x: String,
    /// Y-axis label.
    pub y: String,
    /// Points.
    pub points: Vec<(f64, f64)>,
}

impl Report {
    /// New report.
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Add a series.
    pub fn series(
        &mut self,
        name: &str,
        x: &str,
        y: &str,
        points: Vec<(f64, f64)>,
    ) -> &mut Self {
        self.series.push(Series {
            name: name.to_string(),
            x: x.to_string(),
            y: y.to_string(),
            points,
        });
        self
    }

    /// Add a scalar note.
    pub fn note(&mut self, key: &str, value: f64) -> &mut Self {
        self.notes.push((key.to_string(), value));
        self
    }

    /// Add a remark.
    pub fn remark(&mut self, text: impl Into<String>) -> &mut Self {
        self.remarks.push(text.into());
        self
    }

    /// Print a compact human-readable rendering.
    pub fn print(&self) {
        println!("== {} — {} ==", self.id, self.title);
        for s in &self.series {
            println!("-- {} ({} vs {}) --", s.name, s.y, s.x);
            let n = s.points.len();
            // Print up to 24 evenly-spaced points per series.
            let step = (n / 24).max(1);
            for (i, (x, y)) in s.points.iter().enumerate() {
                if i % step == 0 || i == n - 1 {
                    println!("  {x:>12.3}  {y:>14.3}");
                }
            }
        }
        for (k, v) in &self.notes {
            println!("note: {k} = {v:.3}");
        }
        for r in &self.remarks {
            println!("remark: {r}");
        }
    }

    /// Render the report as pretty-printed JSON. Serialization is
    /// hand-rolled (the offline build has no serde); the schema matches
    /// what `#[derive(Serialize)]` produced: `notes` as `[key, value]`
    /// pairs and `points` as `[x, y]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str("  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_str(&s.name)));
            out.push_str(&format!("      \"x\": {},\n", json_str(&s.x)));
            out.push_str(&format!("      \"y\": {},\n", json_str(&s.y)));
            out.push_str("      \"points\": [");
            for (j, (x, y)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{}, {}]", json_num(*x), json_num(*y)));
            }
            out.push_str("]\n    }");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"notes\": [");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    [{}, {}]", json_str(k), json_num(*v)));
        }
        if !self.notes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"remarks\": [");
        for (i, r) in self.remarks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}", json_str(r)));
        }
        if !self.remarks.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Write JSON under `results/<id>.json` (repo root if run from
    /// there; otherwise relative to the current directory).
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Print and persist.
    pub fn finish(&self) {
        self.print();
        match self.write_json() {
            Ok(p) => println!("[written {}]", p.display()),
            Err(e) => eprintln!("[could not write results: {e}]"),
        }
    }
}

/// Pull the `["name", value]` note pairs back out of a previously
/// written `Report` JSON file — the perf-smoke CI job reads committed
/// baseline reports with this to check fresh runs against them.
pub fn read_notes(path: &str) -> Vec<(String, f64)> {
    let text = fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut notes = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        // Matches the serializer's note shape: ["key", 1.23]
        if let Some(rest) = line.strip_prefix("[\"") {
            if let Some((key, val)) = rest.split_once("\", ") {
                if let Ok(v) = val.trim_end_matches(']').trim().parse::<f64>() {
                    notes.push((key.to_string(), v));
                }
            }
        }
    }
    notes
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number (JSON has no NaN/Infinity; emit null like serde_json).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("figX", "test");
        r.series("s1", "t", "qps", vec![(0.0, 1.0), (1.0, 2.0)])
            .note("total", 3.0)
            .remark("hello");
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.notes.len(), 1);
        let json = r.to_json();
        assert!(json.contains("figX"));
        assert!(json.contains("[0, 1]"));
        assert!(json.contains("[\"total\", 3]"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(2.5), "2.5");
    }
}
