//! Table 2 — the effort (LoC) study.
//!
//! The paper compares, per feature (checkpointing, sharding, caching):
//!
//! * **DSL** — the architecture description in the DSL;
//! * **DSL in C** — the decoupled form produced by the DSL-to-C mapping
//!   (here: the compiled/expanded program rendered back out);
//! * **Redis(DSL)** / **Suricata(DSL)** — the application-side edits to
//!   define junctions (here: the `InstanceApp` adapter sections);
//! * **Redis(C)** — the direct control implementation, which "includes
//!   its own internal management system … which adds 195 lines to each
//!   feature" (here: `mini_redis::direct`'s sections + its mgmt layer);
//! * the generated serialization code for the exchanged datatypes.

use csaw_arch::caching::{caching, CachingSpec};
use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_core::pretty::{loc_of_compiled, loc_of_program};
use csaw_core::program::LoadConfig;
use mini_redis::direct;

use crate::report::Report;

/// Count non-blank lines between `// SECTION: name` / `// ENDSECTION:
/// name` markers in an embedded source file.
fn section_loc(src: &str, name: &str) -> usize {
    let start = format!("// SECTION: {name}");
    let end = format!("// ENDSECTION: {name}");
    let mut counting = false;
    let mut count = 0;
    for line in src.lines() {
        if line.trim() == start {
            counting = true;
            continue;
        }
        if line.trim() == end {
            break;
        }
        if counting && !line.trim().is_empty() {
            count += 1;
        }
    }
    count
}

const REDIS_APPS: &str = include_str!("../../redis/src/apps.rs");
const SURICATA_APPS: &str = include_str!("../../suricata/src/apps.rs");

/// One Table-2 row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Feature name.
    pub feature: String,
    /// DSL LoC (the architecture description).
    pub dsl: usize,
    /// Expanded ("DSL in C" analog) LoC.
    pub dsl_in_c: usize,
    /// Redis adapter LoC.
    pub redis_dsl: usize,
    /// Suricata adapter LoC (None where the paper has N/A).
    pub suricata_dsl: Option<usize>,
    /// Direct ("Redis(C)") LoC including the management share.
    pub redis_c: usize,
}

/// Compute the Table-2 rows.
pub fn table2_rows() -> Vec<Row> {
    let cfg = LoadConfig::new();
    let mgmt = direct::loc_mgmt();

    let ck_prog = checkpoint(&CheckpointSpec::default());
    let ck_dsl = loc_of_program(&ck_prog);
    let ck_expanded = loc_of_compiled(&csaw_core::compile(ck_prog, &cfg).unwrap());

    let sh_prog = sharding(&ShardingSpec::default());
    let sh_dsl = loc_of_program(&sh_prog);
    let sh_expanded = loc_of_compiled(&csaw_core::compile(sh_prog, &cfg).unwrap());

    let ca_prog = caching(&CachingSpec::default());
    let ca_dsl = loc_of_program(&ca_prog);
    let ca_expanded = loc_of_compiled(&csaw_core::compile(ca_prog, &cfg).unwrap());

    vec![
        Row {
            feature: "Checkpointing".into(),
            dsl: ck_dsl,
            dsl_in_c: ck_expanded,
            redis_dsl: section_loc(REDIS_APPS, "checkpoint"),
            suricata_dsl: Some(section_loc(SURICATA_APPS, "engine")),
            redis_c: direct::loc_checkpoint() + mgmt,
        },
        Row {
            feature: "Sharding".into(),
            dsl: sh_dsl,
            dsl_in_c: sh_expanded,
            redis_dsl: section_loc(REDIS_APPS, "sharding"),
            suricata_dsl: Some(section_loc(SURICATA_APPS, "steering")),
            redis_c: direct::loc_sharding() + mgmt,
        },
        Row {
            feature: "Caching".into(),
            dsl: ca_dsl,
            dsl_in_c: ca_expanded,
            redis_dsl: section_loc(REDIS_APPS, "caching"),
            suricata_dsl: None,
            redis_c: direct::loc_caching() + mgmt,
        },
    ]
}

/// Build the Table-2 report, including the serialization-code analog
/// ("The automatically-generated serialization code for the key and
/// value structure used in Redis consists of 182 LoC. The generated
/// serialization code for the packet structure used by Suricata consists
/// of 2380 LoC").
pub fn table2() -> Report {
    let mut report = Report::new("table2", "Effort (LoC) needed to support software extensions");
    println!(
        "{:<14} {:>6} {:>9} {:>11} {:>14} {:>9}",
        "Feature", "DSL", "DSL-in-C", "Redis(DSL)", "Suricata(DSL)", "Redis(C)"
    );
    for row in table2_rows() {
        println!(
            "{:<14} {:>6} {:>9} {:>11} {:>14} {:>9}",
            row.feature,
            row.dsl,
            row.dsl_in_c,
            row.redis_dsl,
            row.suricata_dsl.map_or("N/A".to_string(), |v| v.to_string()),
            row.redis_c
        );
        report.note(&format!("{}_dsl", row.feature), row.dsl as f64);
        report.note(&format!("{}_dsl_in_c", row.feature), row.dsl_in_c as f64);
        report.note(&format!("{}_redis_dsl", row.feature), row.redis_dsl as f64);
        if let Some(s) = row.suricata_dsl {
            report.note(&format!("{}_suricata_dsl", row.feature), s as f64);
        }
        report.note(&format!("{}_redis_c", row.feature), row.redis_c as f64);
    }
    report.note("mgmt_loc", direct::loc_mgmt() as f64);

    // Generated serializer LoC (the §10.2 benefit (iii)).
    let kv_loc =
        csaw_serial::gen::generated_loc(&mini_redis::Store::registry(), "kv_list").unwrap();
    let pkt_loc = csaw_serial::gen::generated_loc(
        &mini_suricata::Packet::registry(),
        "packet",
    )
    .unwrap();
    println!("generated serializer LoC: redis kv = {kv_loc}, suricata packet = {pkt_loc}");
    report.note("serializer_kv_loc", kv_loc as f64);
    report.note("serializer_packet_loc", pkt_loc as f64);
    report.remark(
        "expected shape: DSL column ≪ Redis(C); the direct control pays a fixed \
         management cost per feature; the packet serializer dwarfs the kv one \
         (paper Table 2 + §10.2)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_reproduce_the_table_shape() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // The DSL description is far smaller than the direct control.
            assert!(
                row.dsl < row.redis_c,
                "{}: dsl {} !< direct {}",
                row.feature,
                row.dsl,
                row.redis_c
            );
            // Adapter (junction-embedding) cost is modest.
            assert!(row.redis_dsl > 0);
            assert!(row.dsl > 10);
        }
        // Caching has no Suricata column (N/A in the paper).
        assert!(rows[2].suricata_dsl.is_none());
    }

    #[test]
    fn serializer_loc_ordering_matches_paper() {
        let kv =
            csaw_serial::gen::generated_loc(&mini_redis::Store::registry(), "kv_list").unwrap();
        let pkt = csaw_serial::gen::generated_loc(
            &mini_suricata::Packet::registry(),
            "packet",
        )
        .unwrap();
        assert!(pkt > kv, "packet ({pkt}) should exceed kv ({kv})");
    }
}
