//! Self-healing MTTR bench: inject a fault of each failure class under
//! sustained traffic, let [`csaw_runtime::Runtime::supervise`] run its
//! detect → plan → act → verify loop, and measure how long the outage
//! really lasted.
//!
//! Three scenarios, one per failure class the supervisor distinguishes:
//!
//! 1. `crash_rehoming` — a shard of a 3-way sharded store crashes; the
//!    repair live-reconfigures to the same architecture over the
//!    survivor set ([`ShardingSpec::over`]) and the migrate closure
//!    re-homes the dead shard's entries while the front is held.
//! 2. `partition_promote` — the preferred back-end of the §7.4
//!    supervised fail-over architecture is partitioned away; a quorum of
//!    observers confirms, the repair fences it and promotes the spare,
//!    and after the partition heals the fenced zombie provably cannot
//!    ack anything stale.
//! 3. `crash_restore` — the checkpoint architecture's primary crashes
//!    and is repaired by [`RepairAction::RestartThen`] with a hook that
//!    triggers the §10.1 checkpoint-restore protocol; recovery must land
//!    on a genuinely checkpointed state.
//!
//! Per scenario the report carries the MTTR split three ways —
//! `detect_ms` (fault injection → anomaly confirmed and planned),
//! `repair_ms` (plan → verified converged), `mttr_ms` (injection →
//! verified) — plus the invariants: **zero lost acknowledged writes**,
//! no permanently refused requests, traffic served after the repair,
//! and a cross-epoch conformance pass of the recorded trace against the
//! program chain the repairs installed (`check_repair_jsonl`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_arch::watched::{promoted, supervised_failover, WatchedSpec};
use csaw_core::program::{CompiledProgram, LoadConfig};
use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::runtime::Policy;
use csaw_runtime::supervisor::{RebuildFn, RepairAction, RepairHook};
use csaw_runtime::{
    FailureClass, FaultPlan, HeartbeatConfig, HostCtx, InstanceApp, ReconfigSpec, RepairPolicy,
    RepairRecord, Runtime, RuntimeConfig, SupervisorConfig,
};
use csaw_semantics::{
    check_repair_jsonl, denote_program, ConformanceOptions, DenoteConfig, ProgramSemantics,
};
use mini_redis::apps::{ServerApp, ShardFrontApp, ShardMode};
use mini_redis::hash::shard_of;
use mini_redis::{Command, Store};
use parking_lot::Mutex;

use crate::chaos::KvFront;
use crate::conformance_runs::ConformanceSummary;
use crate::report::Report;

/// The front-end `wait` deadline used by every scenario.
const FRONT_TIMEOUT: Duration = Duration::from_millis(400);
/// How long a single request may retry (through the repair window)
/// before it counts as refused.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Timing knobs. Smoke mode (CI) compresses the traffic windows.
#[derive(Clone, Copy, Debug)]
pub struct BenchKnobs {
    /// Traffic before the fault is injected.
    pub warm: Duration,
    /// Traffic after the repair verified.
    pub after: Duration,
    /// Driver pacing between requests.
    pub pace: Duration,
}

/// Knobs for full vs smoke runs.
pub fn knobs(smoke: bool) -> BenchKnobs {
    if smoke {
        BenchKnobs {
            warm: Duration::from_millis(100),
            after: Duration::from_millis(150),
            pace: Duration::from_millis(1),
        }
    } else {
        BenchKnobs {
            warm: Duration::from_millis(500),
            after: Duration::from_millis(500),
            pace: Duration::from_micros(300),
        }
    }
}

/// Whether `CSAW_SELF_HEALING_SMOKE` asks for the compressed run.
pub fn smoke_requested() -> bool {
    std::env::var("CSAW_SELF_HEALING_SMOKE").is_ok_and(|v| v != "0")
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    false
}

/// Deterministic workload: a small hot set written once up front, then
/// unique-key SETs interleaved with hot GETs (unique keys make retries
/// across the repair window idempotent).
fn command_for(i: usize) -> Command {
    if i < 8 {
        Command::Set(format!("hot{i}"), format!("hv{i}").into_bytes())
    } else if i.is_multiple_of(3) {
        Command::Get(format!("hot{}", i % 8))
    } else {
        Command::Set(format!("k{i}"), format!("v{i}").into_bytes())
    }
}

/// What the driver thread observed.
#[derive(Debug, Default)]
struct DriveStats {
    sent: usize,
    acked: usize,
    retried: usize,
    refused: usize,
    acked_sets: Vec<(String, Vec<u8>)>,
}

/// Drive one command to completion: (re)queue it, invoke the front-end,
/// and only count it acknowledged once a reply lands. Failed or
/// reply-less attempts retry until [`REQUEST_DEADLINE`] — the retries
/// are what carry a request across the detection + repair window.
fn drive_one<F: Fn() -> usize>(
    rt: &Runtime,
    target: (&str, &str),
    requests: &Arc<Mutex<VecDeque<Command>>>,
    replies_len: F,
    cmd: &Command,
    stats: &mut DriveStats,
) {
    stats.sent += 1;
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut first = true;
    loop {
        if Instant::now() >= deadline {
            stats.refused += 1;
            requests.lock().clear();
            return;
        }
        if !first {
            stats.retried += 1;
        }
        first = false;
        {
            let mut q = requests.lock();
            if q.is_empty() {
                q.push_back(cmd.clone());
            }
        }
        let before = replies_len();
        let invoked = rt.invoke(target.0, target.1).is_ok();
        if invoked && wait_until(Duration::from_millis(400), || replies_len() > before) {
            stats.acked += 1;
            if let Command::Set(k, v) = cmd {
                stats.acked_sets.push((k.clone(), v.clone()));
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Acked SETs with no home in any store afterwards — the lost-write
/// count, which must be zero.
fn lost_acked_sets(acked: &[(String, Vec<u8>)], stores: &[Arc<Mutex<Store>>]) -> usize {
    acked
        .iter()
        .filter(|(k, v)| !stores.iter().any(|s| s.lock().get(k) == Some(v.as_slice())))
        .count()
}

/// Replay the recorded trace against the epoch chain the repairs
/// installed (boot program + every `Reconfigure` target, in cut order)
/// plus the repair-event protocol rules.
pub(crate) fn check_repair_chain(
    jsonl: &str,
    dropped: u64,
    chain: &[&CompiledProgram],
    injected_applies: bool,
) -> ConformanceSummary {
    let sems: Vec<ProgramSemantics> = chain
        .iter()
        .map(|p| denote_program(p, &DenoteConfig::default()))
        .collect();
    let sem_refs: Vec<Option<&ProgramSemantics>> = sems.iter().map(Some).collect();
    // The send/apply pairing rule is only sound over a complete trace
    // with no driver-injected deliveries.
    let opts = ConformanceOptions {
        require_send_for_apply: dropped == 0 && !injected_applies,
    };
    match check_repair_jsonl(jsonl, &sem_refs, &opts) {
        Ok(report) => ConformanceSummary {
            ok: report.ok(),
            events: report.events,
            violations: report.violations.len(),
            matched: report.matched_labels,
            unmatched: report.unmatched_labels,
            dropped,
            detail: report
                .violations
                .iter()
                .take(5)
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        },
        Err(e) => ConformanceSummary {
            ok: false,
            events: 0,
            violations: 1,
            matched: 0,
            unmatched: 0,
            dropped,
            detail: format!("trace parse error: {e}"),
        },
    }
}

/// What one self-healing scenario measured.
#[derive(Debug)]
pub struct RepairOutcome {
    /// Scenario id (report note prefix).
    pub name: String,
    /// Failure class the supervisor confirmed.
    pub class: String,
    /// Repair action it took.
    pub action: String,
    /// The repair passed its verify phase.
    pub repair_ok: bool,
    /// Fault injection → anomaly confirmed and planned.
    pub detect_ms: f64,
    /// Plan → verified converged (act + verify).
    pub repair_ms: f64,
    /// Fault injection → repair verified: the headline MTTR.
    pub mttr_ms: f64,
    /// Reconfigure attempts spent (0 for restarts).
    pub attempts: u32,
    /// Longest per-instance pause a reconfigure attempt caused (µs).
    pub reconfig_pause_us: u64,
    /// Fence floor installed by the repair (-1 = repair did not fence).
    pub fence_epoch: i64,
    /// Sends rejected by the fence over the whole run.
    pub fenced_sends: u64,
    /// Requests driven.
    pub sent: usize,
    /// Requests that produced a reply.
    pub acked: usize,
    /// Retry attempts (these carry requests across the repair window).
    pub retried: usize,
    /// Requests that never completed within the deadline — must be 0.
    pub refused: usize,
    /// Acknowledged SETs checked against the stores.
    pub acked_sets: usize,
    /// Acknowledged SETs missing from every store — must be 0.
    pub lost_acked_sets: usize,
    /// Traffic completed after the repair verified.
    pub served_after_repair: bool,
    /// A fenced zombie's stale write landed post-heal — must stay false.
    pub stale_applied: bool,
    /// Cross-epoch conformance verdict for the recorded trace.
    pub conformance: ConformanceSummary,
    /// The raw trace (dumped as an artifact on failure).
    pub trace_jsonl: String,
}

impl RepairOutcome {
    /// Whether the scenario's invariants held.
    pub fn ok(&self) -> bool {
        self.repair_ok
            && self.lost_acked_sets == 0
            && self.refused == 0
            && self.served_after_repair
            && !self.stale_applied
            && self.conformance.ok
    }

    /// One console status line.
    pub fn line(&self) -> String {
        format!(
            "{:18} {:4}  class={:<9} action={:<11} detect={:>7.1}ms repair={:>7.1}ms \
             mttr={:>7.1}ms lost={:<2} refused={:<2} fenced={:<3} conf={}",
            self.name,
            if self.ok() { "OK" } else { "FAIL" },
            self.class,
            self.action,
            self.detect_ms,
            self.repair_ms,
            self.mttr_ms,
            self.lost_acked_sets,
            self.refused,
            self.fenced_sends,
            if self.conformance.ok { "ok" } else { "VIOLATED" },
        )
    }

    /// Fold the outcome into the bench report as prefixed notes.
    pub fn note_into(&self, r: &mut Report) {
        let p = |k: &str| format!("{}_{k}", self.name);
        r.note(&p("repair_ok"), if self.repair_ok { 1.0 } else { 0.0 });
        r.note(&p("detect_ms"), self.detect_ms);
        r.note(&p("repair_ms"), self.repair_ms);
        r.note(&p("mttr_ms"), self.mttr_ms);
        r.note(&p("attempts"), self.attempts as f64);
        r.note(&p("reconfig_pause_us"), self.reconfig_pause_us as f64);
        r.note(&p("fence_epoch"), self.fence_epoch as f64);
        r.note(&p("fenced_sends"), self.fenced_sends as f64);
        r.note(&p("sent"), self.sent as f64);
        r.note(&p("acked"), self.acked as f64);
        r.note(&p("retried"), self.retried as f64);
        r.note(&p("refused"), self.refused as f64);
        r.note(&p("acked_sets"), self.acked_sets as f64);
        r.note(&p("lost_acked_sets"), self.lost_acked_sets as f64);
        r.note(&p("served_after_repair"), if self.served_after_repair { 1.0 } else { 0.0 });
        r.note(&p("stale_applied"), if self.stale_applied { 1.0 } else { 0.0 });
        r.note(&p("conformance_ok"), if self.conformance.ok { 1.0 } else { 0.0 });
        r.note(&p("conformance_events"), self.conformance.events as f64);
        r.note(&p("conformance_violations"), self.conformance.violations as f64);
    }
}

/// The MTTR split, measured from the moment the bench injected the
/// fault (the supervisor's own records start at first detection — the
/// silence window before that is part of what users experience).
fn mttr_split(record: &RepairRecord, injected_at: Instant) -> (f64, f64, f64) {
    let detect = record
        .detected_at
        .saturating_duration_since(injected_at)
        .saturating_add(record.detect_latency);
    let repair = record.repair_latency;
    let mttr = record.done_at.saturating_duration_since(injected_at);
    (
        detect.as_secs_f64() * 1e3,
        repair.as_secs_f64() * 1e3,
        mttr.as_secs_f64() * 1e3,
    )
}

// ---------------------------------------------------------------------
// Scenario 1 — crash → shard re-homing
// ---------------------------------------------------------------------

/// Crash `Bck2` of a 3-way sharded store under traffic. The supervisor
/// classifies the registry crash immediately and repairs by
/// live-reconfiguring to the same architecture over the survivor set
/// `[Bck1, Bck3]`; the migrate closure drains every store (including
/// the dead shard's, whose state survives in-process) and re-homes each
/// entry by the 2-way shard formula before the front resumes.
pub fn scenario_crash_rehoming(k: BenchKnobs) -> RepairOutcome {
    let a = csaw_core::compile(
        sharding(&ShardingSpec { n_backends: 3, ..Default::default() }),
        &LoadConfig::new(),
    )
    .unwrap();
    let b = csaw_core::compile(
        sharding(&ShardingSpec::over(vec!["Bck1".into(), "Bck3".into()])),
        &LoadConfig::new(),
    )
    .unwrap();
    let rt = Runtime::new(&a, RuntimeConfig::default());
    rt.set_tracing(true);
    let front = ShardFrontApp::new(ShardMode::ByKey, 3);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let mut stores: Vec<Arc<Mutex<Store>>> = Vec::new();
    for i in 1..=3 {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();

    // The repair target: reshard over the survivors. Rebuilt per
    // attempt, so each retry gets fresh app boxes over the same shared
    // queues and stores.
    let rebuild: RebuildFn = {
        let target = b.clone();
        let requests = Arc::clone(&requests);
        let replies = Arc::clone(&replies);
        let stores = stores.clone();
        Arc::new(move |_rt, _failed| {
            let mut new_front =
                ShardFrontApp::over(ShardMode::ByKey, vec!["Bck1".into(), "Bck3".into()]);
            new_front.requests = Arc::clone(&requests);
            new_front.replies = Arc::clone(&replies);
            let mut spec = ReconfigSpec::default();
            spec.apps.push(("Fnt".to_string(), Box::new(new_front)));
            let mig = stores.clone();
            // Survivor homes by 2-way shard index: 0 → Bck1, 1 → Bck3.
            spec.migrate = Some(Box::new(move |ctx| {
                let homes = [0usize, 2usize];
                let mut moved = 0u64;
                let mut bytes = 0u64;
                for idx in 0..3 {
                    let drained: Vec<(String, Vec<u8>)> = mig[idx].lock().drain_entries();
                    for (key, val) in drained {
                        let home = homes[shard_of(&key, 2)];
                        if home != idx {
                            moved += 1;
                            bytes += (key.len() + val.len()) as u64;
                        }
                        mig[home].lock().set(&key, val);
                    }
                }
                ctx.note_moved(moved, bytes);
                Ok(())
            }));
            (target.clone(), spec)
        })
    };
    let sup = rt.supervise(SupervisorConfig {
        poll: Duration::from_millis(10),
        verify_timeout: Duration::from_secs(2),
        policy: RepairPolicy::new()
            .on(FailureClass::Crash, vec![RepairAction::Reconfigure(rebuild)]),
        ..Default::default()
    });

    let stop = AtomicBool::new(false);
    let (stats, injected_at, record) = std::thread::scope(|s| {
        let rt_ref = &rt;
        let requests = &requests;
        let replies = &replies;
        let stop_ref = &stop;
        let driver = s.spawn(move || {
            let mut stats = DriveStats::default();
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let cmd = command_for(i);
                drive_one(
                    rt_ref,
                    ("Fnt", "junction"),
                    requests,
                    || replies.lock().len(),
                    &cmd,
                    &mut stats,
                );
                i += 1;
                std::thread::sleep(k.pace);
            }
            stats
        });
        std::thread::sleep(k.warm);
        let injected_at = Instant::now();
        rt.crash("Bck2");
        let repaired = wait_until(Duration::from_secs(10), || {
            sup.records().iter().any(|r| r.instance == "Bck2" && r.ok)
        });
        if repaired {
            std::thread::sleep(k.after);
        }
        stop.store(true, Ordering::Relaxed);
        let stats = driver.join().expect("driver thread");
        let record = sup.records().into_iter().find(|r| r.instance == "Bck2");
        (stats, injected_at, record)
    });
    sup.stop();

    let lost = lost_acked_sets(&stats.acked_sets, &stores);
    let fenced_sends = rt.link_stats().fenced;
    let jsonl = rt.trace_jsonl();
    let dropped = rt.trace_dropped();
    let programs = sup.programs();
    rt.shutdown();

    let mut chain: Vec<&CompiledProgram> = vec![&a];
    chain.extend(programs.iter());
    let conformance = check_repair_chain(&jsonl, dropped, &chain, false);
    outcome_from("crash_rehoming", record, injected_at, stats, lost, fenced_sends, false, conformance, jsonl)
}

// ---------------------------------------------------------------------
// Scenario 2 — partition → fenced promotion
// ---------------------------------------------------------------------

/// Every directed link between the preferred back-end and the rest.
const O_LINKS: [(&str, &str); 4] = [("o", "f"), ("f", "o"), ("o", "s"), ("s", "o")];

/// Partition the preferred back-end `o` of the §7.4 supervised
/// fail-over architecture. Two live observers (`f`, `s`) confirm the
/// silence, the repair fences `o` and promotes the spare via a live
/// reconfiguration; after the partition heals, the zombie is poked into
/// replaying its last ack — which the fence must reject.
pub fn scenario_partition_promote(k: BenchKnobs) -> RepairOutcome {
    let spec = WatchedSpec::default();
    let a = csaw_core::compile(supervised_failover(&spec), &LoadConfig::new()).unwrap();
    let b = csaw_core::compile(promoted(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&a, RuntimeConfig::default());
    rt.set_tracing(true);
    let front = KvFront::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let o = ServerApp::new();
    let s_app = ServerApp::new();
    let store_o = Arc::clone(&o.store);
    let store_s = Arc::clone(&s_app.store);
    rt.bind_app("o", Box::new(o));
    rt.bind_app("s", Box::new(s_app));
    rt.set_policy("f", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(FRONT_TIMEOUT)]).unwrap();
    rt.enable_heartbeats(HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspicion: Duration::from_millis(40),
        k_missed: 2,
    });

    let target = b.clone();
    let sup = rt.supervise(SupervisorConfig {
        poll: Duration::from_millis(10),
        quorum: 2,
        confirm_polls: 2,
        verify_timeout: Duration::from_secs(1),
        policy: RepairPolicy::new().on(
            FailureClass::Partition,
            vec![RepairAction::Reconfigure(Arc::new(move |_rt, _inst| {
                (target.clone(), ReconfigSpec::default())
            }))],
        ),
        ..Default::default()
    });

    let stop = AtomicBool::new(false);
    let (stats, injected_at, record) = std::thread::scope(|sc| {
        let rt_ref = &rt;
        let requests = &requests;
        let replies = &replies;
        let stop_ref = &stop;
        let driver = sc.spawn(move || {
            let mut stats = DriveStats::default();
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let cmd = command_for(i);
                drive_one(
                    rt_ref,
                    ("f", "junction"),
                    requests,
                    || replies.lock().len(),
                    &cmd,
                    &mut stats,
                );
                i += 1;
                std::thread::sleep(k.pace);
            }
            stats
        });
        std::thread::sleep(k.warm);
        let injected_at = Instant::now();
        for (from, to) in O_LINKS {
            rt.set_fault_plan(from, to, FaultPlan::none().with_drop(1.0));
        }
        let repaired = wait_until(Duration::from_secs(10), || {
            sup.records().iter().any(|r| r.instance == "o" && r.ok)
        });
        if repaired {
            std::thread::sleep(k.after);
        }
        stop.store(true, Ordering::Relaxed);
        let stats = driver.join().expect("driver thread");
        let record = sup.records().into_iter().find(|r| r.instance == "o");
        (stats, injected_at, record)
    });

    // Heal the partition and poke the fenced zombie into replaying its
    // last request; with the fence up its acks are dead on the wire.
    for (from, to) in O_LINKS {
        rt.set_fault_plan(from, to, FaultPlan::none());
    }
    rt.deliver_for_test("o", "junction", Update::assert("Run[o]", "mttr-driver"));
    let stale_applied = wait_until(Duration::from_millis(300), || {
        rt.peek_prop("f", "junction", "Reply") == Some(true)
    });
    sup.stop();

    let lost = lost_acked_sets(&stats.acked_sets, &[store_o, store_s]);
    let fenced_sends = rt.link_stats().fenced;
    let jsonl = rt.trace_jsonl();
    let dropped = rt.trace_dropped();
    let programs = sup.programs();
    rt.shutdown();

    let mut chain: Vec<&CompiledProgram> = vec![&a];
    chain.extend(programs.iter());
    // The zombie poke injects an apply with no matching send.
    let conformance = check_repair_chain(&jsonl, dropped, &chain, true);
    outcome_from("partition_promote", record, injected_at, stats, lost, fenced_sends, stale_applied, conformance, jsonl)
}

// ---------------------------------------------------------------------
// Scenario 3 — crash → restart + checkpoint restore
// ---------------------------------------------------------------------

/// Counter app for the checkpoint scenario (see the §10.1 architecture):
/// `save("state")` checkpoints the counter and records what was
/// captured, so recovery can be validated against genuinely
/// checkpointed states only.
struct CounterApp {
    counter: Arc<AtomicU64>,
    checkpointed: Arc<Mutex<Vec<i64>>>,
    recovered: Arc<Mutex<Option<i64>>>,
}

impl InstanceApp for CounterApp {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        let v = self.counter.load(Ordering::SeqCst) as i64;
        self.checkpointed.lock().push(v);
        Ok(Value::Int(v))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        let v = value.as_int().ok_or("bad checkpoint")?;
        self.counter.store(v as u64, Ordering::SeqCst);
        *self.recovered.lock() = Some(v);
        Ok(())
    }
}

/// Blob store app: keeps the latest checkpoint value.
struct BlobStoreApp {
    latest: Arc<Mutex<Option<Value>>>,
}

impl InstanceApp for BlobStoreApp {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        self.latest.lock().clone().ok_or("no checkpoint stored".into())
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        *self.latest.lock() = Some(value.clone());
        Ok(())
    }
}

/// Crash the checkpoint architecture's primary while its counter
/// advances. The repair is [`RepairAction::RestartThen`]: restart in
/// place, then a hook triggers the recovery junction (`NeedState`), and
/// the verify predicate holds out until the restored state is live.
/// The recovered value must be one that was genuinely checkpointed.
pub fn scenario_crash_restore(k: BenchKnobs) -> RepairOutcome {
    let spec = CheckpointSpec::default();
    let a = csaw_core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&a, RuntimeConfig::default());
    rt.set_tracing(true);

    let counter = Arc::new(AtomicU64::new(0));
    let checkpointed = Arc::new(Mutex::new(Vec::new()));
    let recovered = Arc::new(Mutex::new(None));
    let latest = Arc::new(Mutex::new(None));
    rt.bind_app(
        "Prim",
        Box::new(CounterApp {
            counter: Arc::clone(&counter),
            checkpointed: Arc::clone(&checkpointed),
            recovered: Arc::clone(&recovered),
        }),
    );
    rt.bind_app("Store", Box::new(BlobStoreApp { latest: Arc::clone(&latest) }));
    rt.set_policy("Prim", "checkpoint", Policy::Periodic(Duration::from_millis(20)));
    rt.run_main(vec![Value::Duration(Duration::from_millis(600))]).unwrap();

    // The repair: restart, then trigger the §10.1 restore protocol. The
    // verify predicate keeps the repair open until the state is back.
    let hook: RepairHook = Arc::new(|rt: &Runtime, inst: &str| {
        rt.deliver_for_test(inst, "recover", Update::assert("NeedState", "mttr-driver"));
    });
    let recovered_probe = Arc::clone(&recovered);
    let sup = rt.supervise(SupervisorConfig {
        poll: Duration::from_millis(10),
        verify_timeout: Duration::from_secs(5),
        policy: RepairPolicy::new()
            .on(FailureClass::Crash, vec![RepairAction::RestartThen(hook)])
            .verify_with(move |_rt| recovered_probe.lock().is_some()),
        ..Default::default()
    });

    // Advance the counter while checkpoints flow; wait for a checkpoint
    // at (or past) a landmark so recovery has something fresh to find.
    let t0 = Instant::now();
    while t0.elapsed() < k.warm {
        counter.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(2));
    }
    let landmark = counter.load(Ordering::SeqCst) as i64;
    let stored_fresh = wait_until(Duration::from_secs(10), || {
        matches!(*latest.lock(), Some(Value::Int(v)) if v >= landmark)
    });

    // Crash and lose the in-memory state. The periodic checkpoint is
    // parked first so a post-restart checkpoint of the zeroed counter
    // cannot clobber the blob before recovery reads it back.
    rt.set_policy("Prim", "checkpoint", Policy::OnDemand);
    let injected_at = Instant::now();
    rt.crash("Prim");
    counter.store(0, Ordering::SeqCst);
    let repaired = wait_until(Duration::from_secs(10), || {
        sup.records().iter().any(|r| r.instance == "Prim" && r.ok)
    });
    let got = *recovered.lock();
    let genuine = got.is_some_and(|v| checkpointed.lock().contains(&v) && v >= landmark);

    // Post-repair health: the counter advances and checkpoints flow
    // again.
    rt.set_policy("Prim", "checkpoint", Policy::Periodic(Duration::from_millis(20)));
    let t1 = Instant::now();
    while t1.elapsed() < k.after {
        counter.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(2));
    }
    let new_landmark = counter.load(Ordering::SeqCst) as i64;
    let checkpoints_resumed = wait_until(Duration::from_secs(10), || {
        matches!(*latest.lock(), Some(Value::Int(v)) if v >= new_landmark)
    });
    let record = sup.records().into_iter().find(|r| r.instance == "Prim");
    sup.stop();

    let fenced_sends = rt.link_stats().fenced;
    let jsonl = rt.trace_jsonl();
    let dropped = rt.trace_dropped();
    rt.shutdown();

    // No reconfiguring repair → single-epoch chain. The recovery hook
    // injects a `NeedState` apply with no matching send.
    let conformance = check_repair_chain(&jsonl, dropped, &[&a], true);
    let stats = DriveStats {
        sent: landmark.max(0) as usize,
        acked: if repaired && genuine { landmark.max(0) as usize } else { 0 },
        refused: usize::from(!(stored_fresh && genuine)),
        ..Default::default()
    };
    outcome_from(
        "crash_restore",
        record,
        injected_at,
        stats,
        0,
        fenced_sends,
        false,
        conformance,
        jsonl,
    )
    .with_served_after(checkpoints_resumed)
}

impl RepairOutcome {
    fn with_served_after(mut self, served: bool) -> RepairOutcome {
        self.served_after_repair = served;
        self
    }
}

/// Assemble the outcome from the supervisor's record plus the driver's
/// observations. `served_after_repair` defaults to "the driver acked
/// something and the repair verified"; scenario 3 overrides it with its
/// checkpoint-resumption probe.
#[allow(clippy::too_many_arguments)]
fn outcome_from(
    name: &str,
    record: Option<RepairRecord>,
    injected_at: Instant,
    stats: DriveStats,
    lost: usize,
    fenced_sends: u64,
    stale_applied: bool,
    conformance: ConformanceSummary,
    trace_jsonl: String,
) -> RepairOutcome {
    let (class, action, repair_ok, attempts, pause, fence_epoch, splits) = match &record {
        Some(r) => (
            r.class.label().to_string(),
            r.action.to_string(),
            r.ok,
            r.attempts,
            r.reconfig_pause.as_micros() as u64,
            r.fence_epoch.map_or(-1, |e| e as i64),
            mttr_split(r, injected_at),
        ),
        None => ("undetected".into(), "-".into(), false, 0, 0, -1, (f64::NAN, f64::NAN, f64::NAN)),
    };
    RepairOutcome {
        name: name.to_string(),
        class,
        action,
        repair_ok,
        detect_ms: splits.0,
        repair_ms: splits.1,
        mttr_ms: splits.2,
        attempts,
        reconfig_pause_us: pause,
        fence_epoch,
        fenced_sends,
        sent: stats.sent,
        acked: stats.acked,
        retried: stats.retried,
        refused: stats.refused,
        acked_sets: stats.acked_sets.len(),
        lost_acked_sets: lost,
        served_after_repair: repair_ok && stats.acked > 0,
        stale_applied,
        conformance,
        trace_jsonl,
    }
}

/// Run all three scenarios in sequence.
pub fn run_all(k: BenchKnobs) -> Vec<RepairOutcome> {
    vec![
        scenario_crash_rehoming(k),
        scenario_partition_promote(k),
        scenario_crash_restore(k),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A compressed crash → shard re-homing repair: the supervisor must
    /// detect the crash, re-home the dead shard's entries, lose nothing
    /// acked, and the cross-epoch trace must conform.
    #[test]
    fn smoke_crash_rehoming_repairs_under_traffic() {
        let out = scenario_crash_rehoming(knobs(true));
        assert!(out.repair_ok, "repair did not verify: {out:?}");
        assert_eq!(out.class, "crash");
        assert_eq!(out.action, "reconfigure");
        assert_eq!(out.lost_acked_sets, 0, "lost acked writes");
        assert_eq!(out.refused, 0, "refused requests");
        assert!(out.served_after_repair, "no traffic after the repair");
        assert!(out.mttr_ms > 0.0);
        assert!(out.conformance.ok, "cross-epoch violations:\n{}", out.conformance.detail);
    }
}
