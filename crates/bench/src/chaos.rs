//! Chaos-grade soak harness for the fail-over architectures.
//!
//! Drives the §7.3 write-to-all fail-over, the §7.4 watched fail-over
//! and the §10.1 checkpoint architectures under *seeded* randomized
//! fault schedules — probabilistic message drop and duplication, delivery
//! jitter, and a scheduled directional partition — and checks end-to-end
//! invariants:
//!
//! 1. **No lost accepted requests**: every request the front-end accepted
//!    eventually produces a reply.
//! 2. **Eventual single active back-end**: the arbitration props never
//!    end up contradictory, and at least one back-end is serving.
//! 3. **KV convergence**: after partitions heal and the back-ends
//!    re-register, the replicas agree with a reference model that applied
//!    the answered commands in order.
//!
//! Every schedule is derived from one master seed, so a failing soak can
//! be replayed. The same schedule with the reliability layer disabled
//! ([`ChaosSchedule::without_reliability`]) demonstrably violates the
//! invariants — that asymmetry is the point of the harness.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::{
    FaultPlan, HeartbeatConfig, HostCtx, InstanceApp, LinkStats, RetryPolicy, Runtime,
    RuntimeConfig,
};
use mini_redis::apps::{FailoverFrontApp, ServerApp};
use mini_redis::{Command, Reply, Store};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::conformance_runs::{check_runtime_trace, ConformanceSummary};
use crate::report::Report;

/// The soak keyspace: all generated commands target these keys, so
/// convergence can be checked per key.
const DATA_KEYS: [&str; 6] = ["k0", "k1", "k2", "k3", "k4", "k5"];
/// Counter keys (kept separate so `INCR` never hits binary values).
const CTR_KEYS: [&str; 2] = ["c0", "c1"];

/// A seeded fault schedule for one soak run.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    /// Master seed: workload and per-link fault dice derive from it.
    pub seed: u64,
    /// Number of client requests to drive.
    pub requests: usize,
    /// Per-message drop probability on the request-path links.
    pub drop: f64,
    /// Per-message duplication probability on the request-path links.
    pub dup: f64,
    /// Uniform extra delivery jitter bound.
    pub jitter: Duration,
    /// When the scheduled directional partition opens (relative to
    /// fault-plan installation).
    pub partition_after: Duration,
    /// Partition length ([`Duration::ZERO`] = no partition).
    pub partition_len: Duration,
    /// Whether the reliability layer (retry + dedup) is active.
    pub reliability: bool,
    /// Inter-request pacing, so a soak spans its partition window
    /// instead of finishing before the outage opens.
    pub pace: Duration,
    /// How long the driver waits for any single request before declaring
    /// it lost.
    pub request_deadline: Duration,
    /// Record a causal trace during the soak and replay it through the
    /// `csaw-semantics` conformance checker as a fourth invariant.
    pub conformance: bool,
}

impl ChaosSchedule {
    /// The acceptance schedule: 5% drop, 5% dup, 1ms jitter, and one 2s
    /// directional partition starting 400ms in.
    pub fn acceptance(seed: u64) -> ChaosSchedule {
        ChaosSchedule {
            seed,
            requests: 120,
            drop: 0.05,
            dup: 0.05,
            jitter: Duration::from_millis(1),
            partition_after: Duration::from_millis(400),
            partition_len: Duration::from_secs(2),
            reliability: true,
            pace: Duration::from_millis(20),
            request_deadline: Duration::from_secs(5),
            conformance: false,
        }
    }

    /// Enable (or disable) trace recording + conformance replay.
    pub fn with_conformance(mut self, on: bool) -> ChaosSchedule {
        self.conformance = on;
        self
    }

    /// The same schedule with retry and dedup switched off (the ablation
    /// that demonstrates the invariants failing).
    pub fn without_reliability(mut self) -> ChaosSchedule {
        self.reliability = false;
        // Don't stall the whole run on requests that are provably lost.
        self.request_deadline = self.request_deadline.min(Duration::from_millis(1500));
        self
    }

    /// Set the drop probability (ablation sweeps).
    pub fn with_drop(mut self, p: f64) -> ChaosSchedule {
        self.drop = p;
        self
    }

    /// Set the request count.
    pub fn with_requests(mut self, n: usize) -> ChaosSchedule {
        self.requests = n;
        self
    }

    /// Remove the scheduled partition (pure-loss ablations).
    pub fn without_partition(mut self) -> ChaosSchedule {
        self.partition_len = Duration::ZERO;
        self
    }

    /// Set the inter-request pacing (0 = drive as fast as possible).
    pub fn with_pace(mut self, pace: Duration) -> ChaosSchedule {
        self.pace = pace;
        self
    }

    /// The drop/dup/jitter plan for one directed request-path link, with
    /// a per-link seed derived from the master seed.
    fn lossy_plan(&self, from: &str, to: &str) -> FaultPlan {
        FaultPlan::none()
            .with_drop(self.drop)
            .with_dup(self.dup)
            .with_jitter(self.jitter)
            .with_seed(mix_seed(self.seed, from, to))
    }

    /// The scheduled-outage plan for the partitioned direction.
    fn partition_plan(&self, from: &str, to: &str) -> FaultPlan {
        self.lossy_plan(from, to).with_outage(
            self.partition_after,
            self.partition_after + self.partition_len,
        )
    }

    /// Generate the deterministic command workload.
    fn workload(&self) -> Vec<Command> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC0FFEE);
        (0..self.requests)
            .map(|i| {
                let key = DATA_KEYS[rng.gen_range(0..DATA_KEYS.len())].to_string();
                match rng.gen_range(0..6u32) {
                    0 | 1 => {
                        let len = rng.gen_range(8..64usize);
                        Command::Set(key, vec![(i % 251) as u8; len])
                    }
                    2 => Command::Append(key, vec![(i % 13) as u8; 8]),
                    3 => Command::Incr(CTR_KEYS[rng.gen_range(0..CTR_KEYS.len())].into()),
                    4 => Command::Get(key),
                    _ => Command::Del(key),
                }
            })
            .collect()
    }

    fn apply(&self, rt: &Runtime, links: &[(&str, &str)], partition: Option<(&str, &str)>) {
        for (a, b) in links {
            rt.set_fault_plan(a, b, self.lossy_plan(a, b));
        }
        if let Some((a, b)) = partition {
            if !self.partition_len.is_zero() {
                rt.set_fault_plan(a, b, self.partition_plan(a, b));
            }
        }
        if !self.reliability {
            rt.set_retry_policy(RetryPolicy::disabled());
            rt.set_dedup(false);
        }
    }
}

fn b2f(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Deterministic per-link seed from the master seed and the endpoints.
fn mix_seed(seed: u64, from: &str, to: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in from.bytes().chain([0xff]).chain(to.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// What one soak run observed.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Architecture label (`failover`, `watched`, `checkpoint`).
    pub arch: String,
    /// The schedule's master seed.
    pub seed: u64,
    /// Requests the driver tried to submit.
    pub requests: usize,
    /// Requests the system accepted (front-end took them).
    pub accepted: usize,
    /// Accepted requests that produced a reply.
    pub answered: usize,
    /// Accepted requests that never produced a reply — invariant 1.
    pub lost: usize,
    /// Requests the front-end refused to accept at all.
    pub refused: usize,
    /// Arbitration props consistent and ≥1 back-end serving — invariant 2.
    pub single_active: bool,
    /// Replicas agree with each other (and the model) — invariant 3.
    pub converged: bool,
    /// The architecture actually exercised its fail-over path (the
    /// watchdog engaged fail-over mode, or an arm hit the partition).
    pub failed_over: bool,
    /// Replies matched the reference model's replies.
    pub model_match: bool,
    /// Network reliability counters at the end of the run.
    pub stats: LinkStats,
    /// Wall-clock seconds.
    pub elapsed: f64,
    /// Conformance replay of the recorded trace — invariant 4, present
    /// only when [`ChaosSchedule::conformance`] was set.
    pub conformance: Option<ConformanceSummary>,
    /// The recorded JSONL trace (for artifact dumps on failure).
    pub trace_jsonl: Option<String>,
}

impl SoakOutcome {
    /// Whether every invariant held.
    pub fn invariants_hold(&self) -> bool {
        self.lost == 0
            && self.refused == 0
            && self.single_active
            && self.converged
            && self.model_match
            && self.conformance.as_ref().is_none_or(|c| c.ok)
    }

    /// The deterministic verdict tuple (what must replay bit-for-bit
    /// across runs of the same seed).
    pub fn verdict(&self) -> (bool, bool, bool, bool) {
        (self.lost == 0 && self.refused == 0, self.single_active, self.converged, self.model_match)
    }

    /// Render as a persistable report (`results/chaos_<arch>.json`).
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            &format!("chaos_{}", self.arch),
            "Chaos soak: fault-injected fail-over invariants",
        );
        r.note("seed", self.seed as f64);
        r.note("requests", self.requests as f64);
        r.note("accepted", self.accepted as f64);
        r.note("answered", self.answered as f64);
        r.note("lost", self.lost as f64);
        r.note("refused", self.refused as f64);
        r.note("single_active", b2f(self.single_active));
        r.note("converged", b2f(self.converged));
        r.note("model_match", b2f(self.model_match));
        r.note("failed_over", b2f(self.failed_over));
        r.note("msgs_sent", self.stats.msgs_sent as f64);
        r.note("drops", self.stats.drops as f64);
        r.note("dups", self.stats.dups as f64);
        r.note("deduped", self.stats.deduped as f64);
        r.note("retries", self.stats.retries as f64);
        r.note("partitioned_sends", self.stats.partitioned as f64);
        r.note("elapsed_s", self.elapsed);
        if let Some(c) = &self.conformance {
            r.note("trace_events", c.events as f64);
            r.note("conformance_violations", c.violations as f64);
            r.note("conformance_ok", b2f(c.ok));
        }
        r.note("invariants_hold", b2f(self.invariants_hold()));
        r.remark(if self.invariants_hold() {
            "PASS: zero lost accepted requests, consistent arbitration, converged KV"
        } else {
            "FAIL: at least one invariant violated (expected when the reliability layer is disabled)"
        });
        r
    }
}

/// Per-key comparison over the soak keyspace (checkpoint blobs are not
/// byte-stable across hash-map iteration orders).
fn stores_agree(a: &Store, b: &Store) -> bool {
    DATA_KEYS
        .iter()
        .chain(CTR_KEYS.iter())
        .all(|k| a.get(k) == b.get(k))
}

// ---------------------------------------------------------------------
// Shared KV apps
// ---------------------------------------------------------------------

/// A KV front-end for the watched architecture: `H1` pops the pending
/// command, `save("n")` ships it, `restore("m")` collects the reply.
pub struct KvFront {
    /// Incoming commands (driver side).
    pub requests: Arc<Mutex<VecDeque<Command>>>,
    /// Collected replies (driver side).
    pub replies: Arc<Mutex<Vec<Reply>>>,
    current: Option<Command>,
}

impl KvFront {
    /// New front with empty queues.
    pub fn new() -> KvFront {
        KvFront {
            requests: Arc::new(Mutex::new(VecDeque::new())),
            replies: Arc::new(Mutex::new(Vec::new())),
            current: None,
        }
    }
}

impl Default for KvFront {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceApp for KvFront {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "H1" {
            self.current = Some(self.requests.lock().pop_front().ok_or("no request")?);
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Bytes(self.current.as_ref().ok_or("no current")?.encode()))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.replies
            .lock()
            .push(Reply::decode(value.as_bytes().ok_or("bytes")?)?);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// §7.3 write-to-all fail-over soak
// ---------------------------------------------------------------------

/// Soak the §7.3 fail-over architecture: faults on every front↔back-end
/// direction, plus one directional partition `f → b1`. Recovery is
/// architectural — the faulted arm times out, `b1` is demoted, and its
/// periodic `startup` junction re-registers it once the link heals.
pub fn soak_failover(schedule: &ChaosSchedule) -> SoakOutcome {
    use csaw_arch::failover::{self, failover, FailoverSpec};

    let t0 = Instant::now();
    let spec = FailoverSpec::default();
    let cp = csaw_core::compile(failover(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    if schedule.conformance {
        rt.set_tracing(true);
    }

    let front = FailoverFrontApp::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let b1 = ServerApp::new();
    let b2 = ServerApp::new();
    let store1 = Arc::clone(&b1.store);
    let store2 = Arc::clone(&b2.store);
    rt.bind_app("b1", Box::new(b1));
    rt.bind_app("b2", Box::new(b2));

    let t = Duration::from_millis(600);
    failover::configure_policies(&rt, &spec, t);
    rt.run_main(vec![Value::Duration(t)]).unwrap();
    wait_until(Duration::from_secs(10), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    });

    // Faults go in after boot so registration is clean; the partition
    // clock starts here.
    schedule.apply(
        &rt,
        &[("f", "b1"), ("b1", "f"), ("f", "b2"), ("b2", "f")],
        Some(("f", "b1")),
    );

    let mut model = Store::new();
    let mut accepted = 0usize;
    let mut answered = 0usize;
    let mut lost = 0usize;
    let mut model_match = true;

    let mut drive = |cmd: &Command, model: &mut Store| {
        requests.lock().push_back(cmd.clone());
        accepted += 1;
        let expect = answered + 1;
        rt.deliver_for_test("f", "c", Update::assert("Req", "chaos-driver"));
        let got = wait_until(schedule.request_deadline, || replies.lock().len() >= expect);
        if got {
            answered += 1;
            let reply = replies.lock()[expect - 1].clone();
            if reply != cmd.execute(model) {
                model_match = false;
            }
        } else {
            lost += 1;
            // The un-served command may still sit in the queue; drop it
            // so it cannot skew a later request's pairing.
            requests.lock().clear();
        }
    };

    for cmd in schedule.workload() {
        drive(&cmd, &mut model);
        std::thread::sleep(schedule.pace);
    }

    // Let demoted back-ends re-register (startup/reactivate are
    // periodic), then fence: a final write-to-all so both replicas catch
    // up. A fence can race a still-settling re-registration and demote
    // the back-end again, so allow a few rounds — each round waits for
    // both registrations and drives one more write.
    let mut fence_rounds = 0usize;
    let mut both_registered = false;
    while fence_rounds < 3 && !both_registered {
        let reregistered = wait_until(Duration::from_secs(10), || {
            rt.peek_prop("f", "c", "Backend[b1::serve]") == Some(true)
                && rt.peek_prop("f", "c", "Backend[b2::serve]") == Some(true)
        });
        if !reregistered {
            break;
        }
        let fence = Command::Set("k0".into(), b"fence".to_vec());
        drive(&fence, &mut model);
        fence_rounds += 1;
        both_registered = rt.peek_prop("f", "c", "Backend[b1::serve]") == Some(true)
            && rt.peek_prop("f", "c", "Backend[b2::serve]") == Some(true);
    }

    let single_active = both_registered;
    let converged = {
        let s1 = store1.lock();
        let s2 = store2.lock();
        stores_agree(&s1, &model) && stores_agree(&s2, &model)
    };
    let stats = rt.link_stats();
    rt.shutdown();
    let (conformance, trace_jsonl) = if schedule.conformance {
        let (summary, jsonl) = check_runtime_trace(&rt, &cp);
        (Some(summary), Some(jsonl))
    } else {
        (None, None)
    };

    SoakOutcome {
        arch: "failover".into(),
        failed_over: stats.partitioned > 0,
        seed: schedule.seed,
        requests: schedule.requests + fence_rounds,
        accepted,
        answered,
        lost,
        refused: 0,
        single_active,
        converged,
        model_match,
        stats,
        elapsed: t0.elapsed().as_secs_f64(),
        conformance,
        trace_jsonl,
    }
}

// ---------------------------------------------------------------------
// §7.4 watched fail-over soak
// ---------------------------------------------------------------------

/// Soak the §7.4 watched fail-over: faults on the request paths
/// (`f ↔ o`, `f ↔ s`) and one directional partition `o → w` — the
/// watchdog's *heartbeat* path. The heartbeat failure detector makes the
/// watchdog suspect `o` (its registry status never changes), raising
/// `failover` so the spare serves; requests keep flowing throughout.
pub fn soak_watched(schedule: &ChaosSchedule) -> SoakOutcome {
    use csaw_arch::watched::{self, watched_failover, WatchedSpec};

    let t0 = Instant::now();
    let spec = WatchedSpec::default();
    let cp = csaw_core::compile(watched_failover(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    if schedule.conformance {
        rt.set_tracing(true);
    }

    let front = KvFront::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let o = ServerApp::new();
    let s = ServerApp::new();
    let store_o = Arc::clone(&o.store);
    let store_s = Arc::clone(&s.store);
    rt.bind_app("o", Box::new(o));
    rt.bind_app("s", Box::new(s));

    watched::configure_policies(&rt, &spec, Duration::from_millis(30));
    rt.run_main(vec![Value::Duration(Duration::from_millis(800))])
        .unwrap();
    rt.enable_heartbeats(HeartbeatConfig::default());
    // Give the detector one full suspicion window of clean pings so the
    // partition, not cold-start silence, is what trips it.
    std::thread::sleep(HeartbeatConfig::default().suspicion);

    schedule.apply(
        &rt,
        &[("f", "o"), ("o", "f"), ("f", "s"), ("s", "f")],
        Some(("o", "w")),
    );

    let mut model = Store::new();
    let mut accepted = 0usize;
    let mut answered = 0usize;
    let mut lost = 0usize;
    let mut refused = 0usize;
    let mut model_match = true;
    let mut consecutive_refusals = 0usize;

    for cmd in schedule.workload() {
        if consecutive_refusals >= 3 {
            // The front-end is wedged (stuck Reply from a lost retract —
            // exactly what the reliability layer prevents). Count the
            // rest as refused rather than stalling a failing run.
            refused += 1;
            continue;
        }
        let deadline = Instant::now() + schedule.request_deadline;
        let mut ok = false;
        while Instant::now() < deadline {
            if requests.lock().is_empty() {
                requests.lock().push_back(cmd.clone());
            }
            if rt.invoke("f", "junction").is_ok() {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        if !ok {
            refused += 1;
            consecutive_refusals += 1;
            requests.lock().clear();
            continue;
        }
        consecutive_refusals = 0;
        accepted += 1;
        // `invoke` returns after the reply restored — or after the
        // bounded wait gave up (Fig. 16's "prioritize throughput"), so
        // in the common case the reply is already queued and this wait
        // returns immediately; the allowance is for late stragglers.
        let expect = answered + 1;
        let got = wait_until(Duration::from_millis(250), || replies.lock().len() >= expect);
        if got {
            answered += 1;
            let reply = replies.lock()[expect - 1].clone();
            if reply != cmd.execute(&mut model) {
                model_match = false;
            }
        } else {
            lost += 1;
        }
        std::thread::sleep(schedule.pace);
    }

    let in_failover = rt.peek_prop("f", "junction", "failover") == Some(true);
    let contradictory = in_failover
        && rt.peek_prop("f", "junction", "nofailover") == Some(true);
    let single_active = !contradictory;
    // The active replica must agree with the model. The warm spare
    // executes every pre-fail-over command too, so it always agrees;
    // `o` may legitimately miss fail-over-era commands.
    let converged = {
        let active = if in_failover { store_s.lock() } else { store_o.lock() };
        stores_agree(&active, &model)
    };
    let stats = rt.link_stats();
    rt.shutdown();
    let (conformance, trace_jsonl) = if schedule.conformance {
        let (summary, jsonl) = check_runtime_trace(&rt, &cp);
        (Some(summary), Some(jsonl))
    } else {
        (None, None)
    };

    SoakOutcome {
        arch: "watched".into(),
        failed_over: in_failover,
        seed: schedule.seed,
        requests: schedule.requests,
        accepted,
        answered,
        lost,
        refused,
        single_active,
        converged,
        model_match,
        stats,
        elapsed: t0.elapsed().as_secs_f64(),
        conformance,
        trace_jsonl,
    }
}

// ---------------------------------------------------------------------
// §10.1 checkpoint soak
// ---------------------------------------------------------------------

/// Counter app for the checkpoint soak: every `save("state")` records
/// what was checkpointed, so recovery can be validated against the set
/// of states that were actually captured.
struct CounterApp {
    counter: Arc<AtomicU64>,
    checkpointed: Arc<Mutex<Vec<i64>>>,
    recovered: Arc<Mutex<Option<i64>>>,
}

impl InstanceApp for CounterApp {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        let v = self.counter.load(Ordering::SeqCst) as i64;
        self.checkpointed.lock().push(v);
        Ok(Value::Int(v))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        let v = value.as_int().ok_or("bad checkpoint")?;
        self.counter.store(v as u64, Ordering::SeqCst);
        *self.recovered.lock() = Some(v);
        Ok(())
    }
}

/// Blob store app: keeps the latest checkpoint value.
struct BlobStoreApp {
    latest: Arc<Mutex<Option<Value>>>,
}

impl InstanceApp for BlobStoreApp {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        self.latest.lock().clone().ok_or("no checkpoint stored".into())
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        *self.latest.lock() = Some(value.clone());
        Ok(())
    }
}

/// Soak the checkpoint architecture: periodic checkpoints flow over a
/// lossy primary↔store link while the counter advances; then the primary
/// crashes and must recover a state that was genuinely checkpointed.
pub fn soak_checkpoint(schedule: &ChaosSchedule) -> SoakOutcome {
    use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};

    let t0 = Instant::now();
    let spec = CheckpointSpec::default();
    let cp = csaw_core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    if schedule.conformance {
        rt.set_tracing(true);
    }

    let counter = Arc::new(AtomicU64::new(0));
    let checkpointed = Arc::new(Mutex::new(Vec::new()));
    let recovered = Arc::new(Mutex::new(None));
    let latest = Arc::new(Mutex::new(None));
    rt.bind_app(
        "Prim",
        Box::new(CounterApp {
            counter: Arc::clone(&counter),
            checkpointed: Arc::clone(&checkpointed),
            recovered: Arc::clone(&recovered),
        }),
    );
    rt.bind_app("Store", Box::new(BlobStoreApp { latest: Arc::clone(&latest) }));
    rt.set_policy(
        "Prim",
        "checkpoint",
        csaw_runtime::runtime::Policy::Periodic(Duration::from_millis(20)),
    );
    rt.run_main(vec![Value::Duration(Duration::from_millis(600))])
        .unwrap();

    schedule.apply(&rt, &[("Prim", "Store"), ("Store", "Prim")], None);

    // Advance the counter while checkpoints flow through the faults.
    let mut accepted = 0usize;
    for _ in 0..schedule.requests {
        counter.fetch_add(1, Ordering::SeqCst);
        accepted += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    // Wait for a checkpoint at (or past) a known landmark to actually
    // land in the store, so recovery has something fresh to find.
    let landmark = counter.load(Ordering::SeqCst) as i64;
    let stored_fresh = wait_until(Duration::from_secs(10), || {
        matches!(*latest.lock(), Some(Value::Int(v)) if v >= landmark)
    });

    // Crash, lose state, recover.
    rt.crash("Prim");
    counter.store(0, Ordering::SeqCst);
    rt.set_policy("Prim", "checkpoint", csaw_runtime::runtime::Policy::OnDemand);
    rt.restart("Prim").unwrap();
    rt.deliver_for_test("Prim", "recover", Update::assert("NeedState", "chaos-driver"));
    let recovered_ok = wait_until(Duration::from_secs(10), || recovered.lock().is_some());

    let got = *recovered.lock();
    // Invariant: the recovered state is one that was genuinely
    // checkpointed — never invented, never torn.
    let genuine = got.is_some_and(|v| checkpointed.lock().contains(&v));
    let answered = if recovered_ok { accepted } else { 0 };
    let stats = rt.link_stats();
    rt.shutdown();
    let (conformance, trace_jsonl) = if schedule.conformance {
        let (summary, jsonl) = check_runtime_trace(&rt, &cp);
        (Some(summary), Some(jsonl))
    } else {
        (None, None)
    };

    SoakOutcome {
        arch: "checkpoint".into(),
        failed_over: false,
        seed: schedule.seed,
        requests: schedule.requests,
        accepted,
        answered,
        lost: accepted - answered,
        refused: 0,
        single_active: true,
        converged: stored_fresh && genuine,
        model_match: genuine,
        stats,
        elapsed: t0.elapsed().as_secs_f64(),
        conformance,
        trace_jsonl,
    }
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = ChaosSchedule::acceptance(7).workload();
        let b = ChaosSchedule::acceptance(7).workload();
        let c = ChaosSchedule::acceptance(8).workload();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn link_seeds_are_direction_sensitive() {
        assert_ne!(mix_seed(1, "f", "b1"), mix_seed(1, "b1", "f"));
        assert_ne!(mix_seed(1, "f", "b1"), mix_seed(2, "f", "b1"));
        // Concatenation ambiguity ("fb" → "1" vs "f" → "b1") must not
        // collide.
        assert_ne!(mix_seed(1, "fb", "1"), mix_seed(1, "f", "b1"));
    }

    #[test]
    fn schedule_builders_compose() {
        let s = ChaosSchedule::acceptance(1)
            .with_drop(0.2)
            .with_requests(10)
            .without_partition()
            .without_reliability();
        assert_eq!(s.drop, 0.2);
        assert_eq!(s.requests, 10);
        assert!(s.partition_len.is_zero());
        assert!(!s.reliability);
    }
}
