//! Suricata experiments: Figs. 24a/24b/24c of §10.

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{Runtime, RuntimeConfig};
use mini_redis::apps::CheckpointStoreApp;
use mini_redis::metrics::{CumulativeByClass, Throughput};
use mini_suricata::apps::{EngineApp, SteeringApp};
use mini_suricata::{CaptureSpec, SyntheticCapture};

use crate::report::Report;

// ---------------------------------------------------------------------
// Fig. 24a — packet rate under checkpointing (+ crash recovery)
// ---------------------------------------------------------------------

/// "The same checkpointing logic was used in Suricata" — the Redis
/// checkpoint architecture re-bound to the packet engine (the
/// reusability claim in action).
pub fn fig24a(seconds: f64) -> Report {
    let spec = CheckpointSpec::default();
    let cp = csaw_core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let prim = EngineApp::new();
    let engine = Arc::clone(&prim.engine);
    rt.bind_app("Prim", Box::new(prim));
    rt.bind_app("Store", Box::new(CheckpointStoreApp::new()));
    let interval = Duration::from_secs_f64(seconds / 8.0);
    rt.set_policy("Prim", "checkpoint", Policy::Periodic(interval));
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    // A large flow population makes checkpoint/restore visibly expensive
    // (the paper's 19× restart spike comes from state-resume cost).
    let cap = SyntheticCapture::generate(&CaptureSpec {
        flows: 30_000,
        packets: 300_000,
        ..Default::default()
    });
    let mut tp = Throughput::start(Duration::from_secs_f64(seconds / 60.0));
    let start = Instant::now();
    let total = Duration::from_secs_f64(seconds);
    let crash_at = Duration::from_secs_f64(seconds * 0.55);
    let mut crashed = false;
    let mut crash_time = 0.0;
    let mut recovered_time = 0.0;
    let mut i = 0usize;
    while start.elapsed() < total {
        if !crashed && start.elapsed() >= crash_at {
            crashed = true;
            crash_time = start.elapsed().as_secs_f64();
            let flows_before = engine.lock().flow_count();
            rt.crash("Prim");
            *engine.lock() = mini_suricata::Engine::new(); // state lost
            rt.set_policy("Prim", "checkpoint", Policy::OnDemand);
            rt.restart("Prim").unwrap();
            rt.deliver_for_test("Prim", "recover", Update::assert("NeedState", "driver"));
            let deadline = Instant::now() + Duration::from_secs(10);
            while engine.lock().flow_count() < flows_before / 2 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            recovered_time = start.elapsed().as_secs_f64();
            rt.set_policy("Prim", "checkpoint", Policy::Periodic(interval));
            continue;
        }
        let pkt = &cap.packets[i % cap.packets.len()];
        i += 1;
        let _ = engine.lock().process(pkt);
        tp.hit();
    }
    let mut report = Report::new("fig24a", "Response of Suricata packet rate to checkpoints");
    report.series("Packet Rate", "time (s)", "packets/s", tp.series());
    report.note("crash_at_s", crash_time);
    report.note("recovered_at_s", recovered_time);
    report.note("total_packets", tp.total() as f64);
    report.note("flows_tracked", engine.lock().flow_count() as f64);
    report.note("alerts", engine.lock().alerts_raised as f64);
    report.remark(
        "expected shape: periodic dips at checkpoints, deep dip + recovery at the crash \
         (paper Fig. 24a)",
    );
    rt.shutdown();
    report
}

// ---------------------------------------------------------------------
// Fig. 24b — cumulative packets steered by 5-tuple hash
// ---------------------------------------------------------------------

/// "The key-based sharding logic was adapted to implement
/// packet-steering in Suricata" — the *same* sharding DSL program, with
/// the steering host hook hashing the 5-tuple.
pub fn fig24b(seconds: f64) -> Report {
    let n = 4;
    let spec = ShardingSpec { n_backends: n, ..Default::default() };
    let cp = csaw_core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let front = SteeringApp::new(n);
    let packets = Arc::clone(&front.packets);
    rt.bind_app("Fnt", Box::new(front));
    let mut engines = Vec::new();
    for i in 1..=n {
        let app = EngineApp::new();
        engines.push(Arc::clone(&app.engine));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    let cap = SyntheticCapture::generate(&CaptureSpec {
        flows: 500,
        packets: 100_000,
        ..Default::default()
    });
    let mut cum = CumulativeByClass::start(n, Duration::from_secs_f64(seconds / 50.0));
    let start = Instant::now();
    let total = Duration::from_secs_f64(seconds);
    let mut i = 0usize;
    while start.elapsed() < total {
        let pkt = cap.packets[i % cap.packets.len()].clone();
        i += 1;
        let shard = pkt.flow_key().shard(n);
        packets.lock().push_back(pkt);
        if rt.invoke("Fnt", "junction").is_ok() {
            cum.hit(shard);
        }
    }
    let mut report = Report::new("fig24b", "Cumulative packets sharded by 5-tuple");
    for (idx, series) in cum.series().into_iter().enumerate() {
        report.series(
            &format!("Shard {}", idx + 1),
            "time (s)",
            "cumulative packets",
            series.into_iter().map(|(x, y)| (x, y as f64)).collect(),
        );
    }
    for (idx, t) in cum.totals().iter().enumerate() {
        report.note(&format!("total_shard_{}", idx + 1), *t as f64);
    }
    for (idx, e) in engines.iter().enumerate() {
        report.note(
            &format!("engine_{}_packets", idx + 1),
            e.lock().packets_seen as f64,
        );
    }
    report.remark(
        "expected shape: cumulative curves splitting in the (heavy-tailed) flow-hash \
         ratios (paper Fig. 24b)",
    );
    rt.shutdown();
    report
}

// ---------------------------------------------------------------------
// Fig. 24c — normalized checkpointing overhead
// ---------------------------------------------------------------------

/// "Overhead is usually less than 10% and spikes to around 19× during
/// checkpoint-restart-and-resume phases" — we compute the per-window
/// normalized overhead of the checkpointed run against an unmodified
/// baseline run of the same engine and capture.
pub fn fig24c(seconds: f64) -> Report {
    // Baseline: unmodified engine (same capture shape as Fig. 24a).
    let cap = SyntheticCapture::generate(&CaptureSpec {
        flows: 30_000,
        packets: 300_000,
        ..Default::default()
    });
    let window = Duration::from_secs_f64(seconds / 40.0);
    let baseline_series = {
        let mut engine = mini_suricata::Engine::new();
        let mut tp = Throughput::start(window);
        let start = Instant::now();
        let total = Duration::from_secs_f64(seconds);
        let mut i = 0usize;
        while start.elapsed() < total {
            let _ = engine.process(&cap.packets[i % cap.packets.len()]);
            i += 1;
            tp.hit();
        }
        tp.series()
    };

    // Checkpointed run reuses the Fig. 24a machinery.
    let ckpt_report = fig24a(seconds);
    let ckpt_series = &ckpt_report.series[0].points;

    // Normalized overhead per window: baseline_rate / checkpointed_rate.
    let n = baseline_series.len().min(ckpt_series.len());
    let mut overhead = Vec::with_capacity(n);
    for k in 0..n {
        let b = baseline_series[k].1.max(1.0);
        let c = ckpt_series[k].1.max(1.0);
        overhead.push((baseline_series[k].0, b / c));
    }
    let spike = overhead.iter().map(|(_, o)| *o).fold(0.0, f64::max);
    let steady: Vec<f64> = overhead.iter().map(|(_, o)| *o).collect();
    let median = {
        let mut s = steady.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    let mut report = Report::new("fig24c", "Normalized checkpointing overhead (Suricata)");
    report.series("Packet Rate overhead", "time (s)", "normalized overhead (×)", overhead);
    report.note("median_overhead_x", median);
    report.note("spike_overhead_x", spike);
    report.remark(
        "expected shape: near-1× steady overhead with a large spike at the \
         checkpoint-restart-and-resume phase (paper Fig. 24c reports <10% steady, ~19× spike)",
    );
    report
}
