//! # csaw-bench — the evaluation harness (§10)
//!
//! One experiment module per table/figure of the paper's evaluation; each
//! has a thin binary wrapper under `src/bin/` that prints the same
//! rows/series the paper plots and writes machine-readable JSON under
//! `results/`. Absolute numbers differ from the paper's testbed — the
//! *shapes* (who wins, by what factor, where dips/crossovers fall) are
//! the reproduction target. See EXPERIMENTS.md for the paper-vs-measured
//! record.
//!
//! | module | regenerates |
//! |---|---|
//! | [`exp_redis`] | Figs. 23a/23b/23c, 25c, 26b, 26c |
//! | [`exp_suricata`] | Figs. 24a/24b/24c |
//! | [`exp_curl`] | Figs. 25a/25b, 26a |
//! | [`exp_loc`] | Table 2 |
//! | [`ablations`] | DESIGN.md ablations (transports, fail-over designs, serializer depth, fan-out, fault tolerance) |
//! | [`autoscale_runs`] | metrics-driven autoscaler: planner-driven reshard over a diurnal day |
//! | [`chaos`] | chaos soak: fault-injected fail-over invariants |
//! | [`conformance_runs`] | trace-conformance validation of the architecture catalogue |
//! | [`overload`] | open-loop overload storm: offered load vs in-deadline goodput, shedding on/off |
//! | [`reconfig_runs`] | live-reconfiguration downtime: four hot-swaps under traffic |
//! | [`self_healing`] | supervisor MTTR: detect → plan → repair per failure class |
//! | [`sim_runs`] | deterministic simulation: seeded schedule exploration with replayable failure artifacts |
//!
//! Experiment durations are time-compressed relative to the paper's 120s
//! runs; scale with `--seconds <n>` on each binary or the
//! `CSAW_EXP_SECONDS` environment variable.

pub mod ablations;
pub mod autoscale_runs;
pub mod chaos;
pub mod conformance_runs;
pub mod exp_curl;
pub mod exp_loc;
pub mod exp_redis;
pub mod exp_suricata;
pub mod overload;
pub mod reconfig_runs;
pub mod report;
pub mod self_healing;
pub mod sim_runs;

/// Experiment duration (seconds), from `CSAW_EXP_SECONDS` or the default.
pub fn exp_seconds(default: f64) -> f64 {
    std::env::var("CSAW_EXP_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Repetitions for mean±std reporting, from `CSAW_EXP_REPS`.
pub fn exp_reps(default: usize) -> usize {
    std::env::var("CSAW_EXP_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
