//! Minimal, dependency-free stand-in for the `rand` crate (offline
//! build; see `crates/shim/`). Implements the subset the workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`], backed by
//! SplitMix64), `gen`/`gen_bool`/`gen_range` over integer and float
//! ranges, and in-place slice shuffling ([`seq::SliceRandom`]).
//!
//! Determinism is a feature here, not a compromise: every workload and
//! fault schedule in the repository is seeded so experiments reproduce
//! bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values producible from 64 random bits.
pub trait FromRandom {
    /// Map 64 random bits to a value of this type.
    fn from_random(bits: u64) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random(bits: u64) -> $t { bits as $t }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_random(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random(bits: u64) -> f64 {
        // 53 uniform bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by an [`Rng`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on empty ranges,
    /// matching `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style unbiased bounded sampling is overkill for simulation
// workloads; modulo with a 64-bit source gives ≤ 2^-32 bias for every
// range the workspace uses.
macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_random(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::from_random(rng.next_u64()) * (self.end - self.start)
    }
}

/// User-facing random-value methods (blanket-implemented over
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::from_random(self.next_u64()) < p
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush,
            // one add + three xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice extension methods.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u16 = r.gen_range(1024..65535);
            assert!((1024..65535).contains(&w));
            let f: f64 = r.gen_range(0.0001..1.0);
            assert!((0.0001..1.0).contains(&f));
            let i: usize = r.gen_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
        assert!(v.choose(&mut r).is_some());
    }
}
