//! Minimal, dependency-free stand-in for the `crossbeam` crate (offline
//! build; see `crates/shim/`). Only `crossbeam::channel` is provided,
//! implemented over `std::sync::mpsc` with a unified `Sender` type for
//! bounded and unbounded channels.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel (bounded or unbounded).
    pub struct Sender<T>(Inner<T>);

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
            })
        }
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Inner::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error for [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message before the timeout.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped.
        Disconnected,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }

    /// A bounded FIFO channel (capacity 0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_timeout_and_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }
    }
}
