//! Minimal, dependency-free stand-in for the `bytes` crate (offline
//! build; see `crates/shim/`): a growable [`BytesMut`] buffer, a
//! frozen reference-counted [`Bytes`] view for zero-copy fan-out, plus
//! the little-endian [`Buf`]/[`BufMut`] accessors the serializer uses.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Freeze into an immutable, cheaply-cloneable [`Bytes`]. The
    /// backing storage moves (no copy); every clone and slice of the
    /// result shares it.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

/// An immutable byte buffer sharing one reference-counted allocation:
/// clones bump a refcount, [`Bytes::slice`] returns a sub-view over
/// the same storage. This is what lets a snapshot be encoded once and
/// handed to N migration targets without N copies.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Take ownership of a `Vec<u8>` without copying.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }

    /// Copy from a slice.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from_vec(src.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of `self` over the same storage (no copy). Panics if
    /// the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy out as a `Vec<u8>` (the one place a copy is explicit).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        // Sole owner of an un-sliced buffer: hand the allocation back.
        if b.start == 0 && b.end == b.data.len() {
            match Arc::try_unwrap(b.data) {
                Ok(v) => return v,
                Err(data) => return data[b.start..b.end].to_vec(),
            }
        }
        b.data[b.start..b.end].to_vec()
    }
}

macro_rules! put_methods {
    ($($name:ident: $t:ty),*) => {$(
        /// Append the little-endian encoding of the value.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// Write-side buffer operations (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    put_methods! {
        put_u16_le: u16, put_u32_le: u32, put_u64_le: u64,
        put_i16_le: i16, put_i32_le: i32, put_i64_le: i64,
        put_f32_le: f32, put_f64_le: f64
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_methods {
    ($($name:ident: $t:ty),*) => {$(
        /// Read the next little-endian value, advancing the cursor.
        /// Panics if not enough bytes remain (callers check
        /// [`Buf::remaining`] first).
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            raw.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// Read-side buffer operations (little-endian subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_methods! {
        get_u16_le: u16, get_u32_le: u32, get_u64_le: u64,
        get_i16_le: i16, get_i32_le: i32, get_i64_le: i64,
        get_f32_le: f32, get_f64_le: f64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_shares_storage_without_copying() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello world");
        let frozen = b.freeze();
        let ptr = frozen.as_ref().as_ptr();
        let clone = frozen.clone();
        assert_eq!(clone.as_ref().as_ptr(), ptr, "clone must share storage");
        let tail = frozen.slice(6..11);
        assert_eq!(tail.as_ref(), b"world");
        assert_eq!(tail.as_ref().as_ptr(), unsafe { ptr.add(6) });
        drop(clone);
        drop(tail);
        let back: Vec<u8> = frozen.into();
        assert_eq!(back.as_ptr(), ptr, "sole owner gets the allocation back");
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_i8(-2);
        b.put_u16_le(3);
        b.put_i16_le(-4);
        b.put_u32_le(5);
        b.put_i32_le(-6);
        b.put_u64_le(7);
        b.put_i64_le(-8);
        b.put_f32_le(9.5);
        b.put_f64_le(-10.25);
        b.put_slice(b"xyz");

        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_i8(), -2);
        assert_eq!(r.get_u16_le(), 3);
        assert_eq!(r.get_i16_le(), -4);
        assert_eq!(r.get_u32_le(), 5);
        assert_eq!(r.get_i32_le(), -6);
        assert_eq!(r.get_u64_le(), 7);
        assert_eq!(r.get_i64_le(), -8);
        assert_eq!(r.get_f32_le(), 9.5);
        assert_eq!(r.get_f64_le(), -10.25);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }
}
