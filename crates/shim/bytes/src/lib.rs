//! Minimal, dependency-free stand-in for the `bytes` crate (offline
//! build; see `crates/shim/`): a growable [`BytesMut`] buffer plus the
//! little-endian [`Buf`]/[`BufMut`] accessors the serializer uses.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

macro_rules! put_methods {
    ($($name:ident: $t:ty),*) => {$(
        /// Append the little-endian encoding of the value.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// Write-side buffer operations (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    put_methods! {
        put_u16_le: u16, put_u32_le: u32, put_u64_le: u64,
        put_i16_le: i16, put_i32_le: i32, put_i64_le: i64,
        put_f32_le: f32, put_f64_le: f64
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_methods {
    ($($name:ident: $t:ty),*) => {$(
        /// Read the next little-endian value, advancing the cursor.
        /// Panics if not enough bytes remain (callers check
        /// [`Buf::remaining`] first).
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            raw.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// Read-side buffer operations (little-endian subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_methods! {
        get_u16_le: u16, get_u32_le: u32, get_u64_le: u64,
        get_i16_le: i16, get_i32_le: i32, get_i64_le: i64,
        get_f32_le: f32, get_f64_le: f64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_i8(-2);
        b.put_u16_le(3);
        b.put_i16_le(-4);
        b.put_u32_le(5);
        b.put_i32_le(-6);
        b.put_u64_le(7);
        b.put_i64_le(-8);
        b.put_f32_le(9.5);
        b.put_f64_le(-10.25);
        b.put_slice(b"xyz");

        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_i8(), -2);
        assert_eq!(r.get_u16_le(), 3);
        assert_eq!(r.get_i16_le(), -4);
        assert_eq!(r.get_u32_le(), 5);
        assert_eq!(r.get_i32_le(), -6);
        assert_eq!(r.get_u64_le(), 7);
        assert_eq!(r.get_i64_le(), -8);
        assert_eq!(r.get_f32_le(), 9.5);
        assert_eq!(r.get_f64_le(), -10.25);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }
}
