//! Minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository is fully offline, so the
//! workspace vendors the tiny API subset it actually uses as path
//! dependencies (see `crates/shim/`). Semantics match parking_lot where
//! the workspace depends on them:
//!
//! * locks are not poisoned — a panic while holding a lock leaves the
//!   data accessible (we recover the guard from std's `PoisonError`);
//! * `Condvar::wait_until` / `wait_for` take `&mut MutexGuard` and
//!   report timeouts via [`WaitTimeoutResult::timed_out`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError, TryLockError};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard out while
    // blocking; it is always `Some` outside `Condvar` internals.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard { inner: Some(e.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared (read) RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive (write) RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => {
                Some(RwLockWriteGuard { inner: e.into_inner() })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout (vs notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(r.timed_out())
    }

    /// Block until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if until <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, until - now)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        assert!(c.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        assert!(c.wait_until(&mut g, Instant::now()).timed_out());
    }

    #[test]
    fn condvar_notifies() {
        let m = Arc::new(Mutex::new(false));
        let c = Arc::new(Condvar::new());
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = c2.wait_for(&mut g, Duration::from_secs(5));
                if r.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        c.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn guard_survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
