//! One junction's key-value table.

use std::collections::{HashMap, VecDeque};

use csaw_core::names::SetElem;
use csaw_core::value::Value;

/// The kind of a pushed update.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateKind {
    /// `assert [γ] P` — set a proposition true.
    Assert,
    /// `retract [γ] P` — set a proposition false.
    Retract,
    /// `write(n, γ)` — push a named datum.
    Data(Value),
}

/// A pushed update from another junction.
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// Target key (proposition key or datum name).
    pub key: String,
    /// What to do.
    pub kind: UpdateKind,
    /// Fully-qualified sender junction (diagnostics only).
    pub from: String,
    /// Per-link sequence number assigned by the transport for
    /// receiver-side deduplication of retried/duplicated deliveries.
    /// `0` means unsequenced (local or test delivery): never deduped.
    pub seq: u64,
}

impl Update {
    /// Convenience constructor for an assertion.
    pub fn assert(key: impl Into<String>, from: impl Into<String>) -> Update {
        Update { key: key.into(), kind: UpdateKind::Assert, from: from.into(), seq: 0 }
    }
    /// Convenience constructor for a retraction.
    pub fn retract(key: impl Into<String>, from: impl Into<String>) -> Update {
        Update { key: key.into(), kind: UpdateKind::Retract, from: from.into(), seq: 0 }
    }
    /// Convenience constructor for a data write.
    pub fn data(key: impl Into<String>, value: Value, from: impl Into<String>) -> Update {
        Update { key: key.into(), kind: UpdateKind::Data(value), from: from.into(), seq: 0 }
    }
    /// The sending *instance* (prefix of `from` before `::`), the scope
    /// at which the transport sequences and dedups.
    pub fn sender_instance(&self) -> &str {
        self.from.split("::").next().unwrap_or(&self.from)
    }
}

/// Errors raised by table operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// The key does not exist in this table.
    NoSuchKey(String),
    /// Attempt to read (`restore`) or transmit (`write`) `undef` (§6).
    Undef(String),
    /// A subset/idx value was not valid relative to its base set — the
    /// "contract with the host language" of §6.
    InvalidIndex { name: String, value: String },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::NoSuchKey(k) => write!(f, "no such key `{k}`"),
            TableError::Undef(k) => write!(f, "`{k}` is undef"),
            TableError::InvalidIndex { name, value } => {
                write!(f, "`{value}` is not a valid value for index/subset `{name}`")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Outcome of delivering an update to a table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Applied immediately (junction idle is *not* immediate — this only
    /// happens inside an open `wait` window).
    AppliedNow,
    /// Queued; will apply at the next scheduling.
    Queued,
}

/// A structured observation of one table mutation, emitted to the
/// installed [`TableObserver`]. The sequence numbers are the table's
/// own operation counter at the event (`op`), the op of the latest
/// local write to the key (`lop`), and the op at window-open time
/// (`wop`) — exactly the quantities the §8 local-priority update rule
/// is stated over, so a recorded trace can be re-checked against the
/// formal rule (see `csaw-semantics::conformance`).
#[derive(Clone, Debug, PartialEq)]
pub enum TableEvent {
    /// `save` / local `assert`/`retract`: the key now shadows older
    /// arrivals within this activation.
    LocalWrite {
        /// Written key.
        key: String,
        /// Table operation sequence of the write.
        op: u64,
    },
    /// A remote update reached the table: applied immediately (an open
    /// window admitted it) or queued for the next scheduling.
    Deliver {
        /// Target key.
        key: String,
        /// Fully-qualified sender junction.
        from: String,
        /// Transport per-link sequence number (0 = unsequenced).
        link_seq: u64,
        /// Table operation sequence at arrival.
        op: u64,
        /// Whether an open window applied it immediately.
        applied: bool,
        /// Whether the junction was executing at arrival.
        during_run: bool,
    },
    /// A queued update applied at scheduling time.
    FlushApply {
        /// Target key.
        key: String,
        /// Fully-qualified sender junction.
        from: String,
        /// Transport per-link sequence number (0 = unsequenced).
        link_seq: u64,
        /// Table operation sequence at arrival.
        op: u64,
        /// Whether the junction was executing at arrival.
        during_run: bool,
    },
    /// A queued update dropped by local priority ("local updates have
    /// priority", §8): it arrived during a run and a later local write
    /// (`lop > op`) shadowed it.
    ShadowDrop {
        /// Target key.
        key: String,
        /// Fully-qualified sender junction.
        from: String,
        /// Transport per-link sequence number (0 = unsequenced).
        link_seq: u64,
        /// Table operation sequence at arrival.
        op: u64,
        /// Operation sequence of the shadowing local write.
        lop: u64,
        /// Whether the junction was executing at arrival (always true
        /// for a shadow drop).
        during_run: bool,
    },
    /// A queued update applied retroactively by an opening window
    /// (it arrived after the latest local write to its key).
    RetroApply {
        /// Target key.
        key: String,
        /// Fully-qualified sender junction.
        from: String,
        /// Transport per-link sequence number (0 = unsequenced).
        link_seq: u64,
        /// Table operation sequence at arrival.
        op: u64,
    },
    /// A `wait` window opened admitting `keys`.
    WindowOpen {
        /// Window token (per-table).
        token: u64,
        /// Operation sequence at open time.
        wop: u64,
        /// Admitted keys.
        keys: Vec<String>,
    },
    /// A `wait` window closed (explicitly or at end of activation).
    WindowClose {
        /// Window token.
        token: u64,
    },
    /// `keep` discarded a queued update.
    KeepDrop {
        /// Target key.
        key: String,
        /// Fully-qualified sender junction.
        from: String,
        /// Transport per-link sequence number (0 = unsequenced).
        link_seq: u64,
    },
}

/// Observer installed by the runtime to stream [`TableEvent`]s into its
/// trace layer. `enabled` is consulted before an event is even built,
/// so an installed-but-disabled observer costs one branch per mutation.
pub trait TableObserver: Send + Sync {
    /// Cheap gate checked before constructing an event.
    fn enabled(&self) -> bool {
        true
    }
    /// Receive one event, with the table's current epoch. By value: the
    /// observer is the only consumer, so it keeps the event's strings
    /// instead of cloning them.
    fn on_event(&self, epoch: u64, event: TableEvent);
}

/// `Table` derives `Debug`; the observer slot has no useful rendering.
#[derive(Clone, Default)]
struct ObserverSlot(Option<std::sync::Arc<dyn TableObserver>>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(set)"
        } else {
            "ObserverSlot(none)"
        })
    }
}

/// A point-in-time copy of the visible table state, used by transaction
/// blocks `⟨|E|⟩` for rollback.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    props: HashMap<String, bool>,
    data: HashMap<String, Value>,
    subsets: HashMap<String, Option<Vec<SetElem>>>,
    idxs: HashMap<String, Option<String>>,
}

#[derive(Clone, Debug)]
struct Pending {
    update: Update,
    /// Whether the junction was executing when it arrived.
    during_run: bool,
    /// Global operation sequence number at arrival, for ordering against
    /// local writes within an activation.
    seq: u64,
}

/// One queued update in an exported [`TableState`].
#[derive(Clone, Debug, PartialEq)]
pub struct PendingState {
    /// The queued update itself.
    pub update: Update,
    /// Whether the junction was executing when it arrived.
    pub during_run: bool,
    /// Table operation sequence at arrival.
    pub seq: u64,
}

/// The complete exported state of a table, for live reconfiguration.
///
/// Unlike [`Snapshot`] (visible state only, for transaction rollback),
/// `TableState` carries everything the §8 update rule is stated over:
/// the pending queue, the per-key local-write shadows
/// (`locally_written`), the operation counter, the activation epoch and
/// the window-token counter. Importing an exported state therefore
/// resumes the table exactly where it left off — a queued update that
/// would have been shadow-dropped before export is still shadow-dropped
/// after import.
///
/// Collections are sorted vectors rather than maps so the exported
/// state has a canonical form (stable encoding, comparable in tests).
#[derive(Clone, Debug, PartialEq)]
pub struct TableState {
    /// Propositions and their values, sorted by key.
    pub props: Vec<(String, bool)>,
    /// Data entries (including `undef`), sorted by key.
    pub data: Vec<(String, Value)>,
    /// Subsets: (name, base set, current value), sorted by name.
    pub subsets: Vec<(String, Vec<SetElem>, Option<Vec<SetElem>>)>,
    /// Indexes: (name, base set, current value), sorted by name.
    pub idxs: Vec<(String, Vec<SetElem>, Option<String>)>,
    /// The pending update queue, in arrival order.
    pub pending: Vec<PendingState>,
    /// Activation epoch at export.
    pub epoch: u64,
    /// Per-key (epoch, op-seq) of the latest local write, sorted by key.
    pub locally_written: Vec<(String, u64, u64)>,
    /// Operation counter at export.
    pub op_seq: u64,
    /// Next `wait` window token.
    pub next_window: u64,
}

/// One open `wait` window.
#[derive(Clone, Debug)]
struct Window {
    token: u64,
    keys: Vec<String>,
    /// Operation sequence at open time. A remote update may apply
    /// through this window only when no local write to its key happened
    /// at or after the open (`lop < wop`): the window admits replies
    /// the peer produced in reaction to state we exposed *before*
    /// opening it, but a local write after the open re-takes priority
    /// (§8) and a raced remote update queues instead.
    wop: u64,
}

/// One junction's key-value table.
///
/// All mutation of *visible* state goes through `set_*_local` (local
/// operations: `save`, local `assert`/`retract`) or [`Table::deliver`]
/// (remote pushes). The runtime brackets junction activations with
/// [`Table::begin_activation`] / [`Table::end_activation`].
#[derive(Debug)]
pub struct Table {
    props: HashMap<String, bool>,
    data: HashMap<String, Value>,
    subsets: HashMap<String, Option<Vec<SetElem>>>,
    subset_bases: HashMap<String, Vec<SetElem>>,
    idxs: HashMap<String, Option<String>>,
    idx_bases: HashMap<String, Vec<SetElem>>,
    pending: VecDeque<Pending>,
    epoch: u64,
    running: bool,
    /// key → (epoch, op-sequence) of the most recent local write.
    locally_written: HashMap<String, (u64, u64)>,
    /// Monotonic operation counter ordering local writes vs deliveries.
    op_seq: u64,
    /// Keys currently admitted by active `wait`s. Multiple windows may be
    /// open at once: parallel composition can run several `wait`s in one
    /// activation (Fig. 13's back-end fan-out).
    windows: Vec<Window>,
    next_window: u64,
    observer: ObserverSlot,
}

impl Table {
    /// Create an empty table.
    pub fn new() -> Table {
        Table {
            props: HashMap::new(),
            data: HashMap::new(),
            subsets: HashMap::new(),
            subset_bases: HashMap::new(),
            idxs: HashMap::new(),
            idx_bases: HashMap::new(),
            pending: VecDeque::new(),
            epoch: 0,
            running: false,
            locally_written: HashMap::new(),
            op_seq: 0,
            windows: Vec::new(),
            next_window: 0,
            observer: ObserverSlot(None),
        }
    }

    /// Install the runtime's event observer (trace layer).
    pub fn set_observer(&mut self, observer: std::sync::Arc<dyn TableObserver>) {
        self.observer = ObserverSlot(Some(observer));
    }

    #[inline]
    fn emit<F: FnOnce() -> TableEvent>(&self, build: F) {
        if let Some(o) = &self.observer.0 {
            if o.enabled() {
                o.on_event(self.epoch, build());
            }
        }
    }

    /// Declare a proposition with its initial value.
    pub fn declare_prop(&mut self, key: impl Into<String>, init: bool) {
        self.props.insert(key.into(), init);
    }

    /// Declare a datum (initialized to `undef`).
    pub fn declare_data(&mut self, key: impl Into<String>) {
        self.data.insert(key.into(), Value::Undef);
    }

    /// Declare a subset over the given base set (initialized to `undef`).
    pub fn declare_subset(&mut self, name: impl Into<String>, base: Vec<SetElem>) {
        let name = name.into();
        self.subsets.insert(name.clone(), None);
        self.subset_bases.insert(name, base);
    }

    /// Declare an index over the given base set (initialized to `undef`).
    pub fn declare_idx(&mut self, name: impl Into<String>, base: Vec<SetElem>) {
        let name = name.into();
        self.idxs.insert(name.clone(), None);
        self.idx_bases.insert(name, base);
    }

    /// Current epoch (activation counter).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the junction is currently executing.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Start an activation: apply pending updates ("updates are not made
    /// to the table until the junction is next scheduled"), then mark the
    /// junction running under a fresh epoch.
    pub fn begin_activation(&mut self) {
        self.flush_pending();
        self.epoch += 1;
        self.running = true;
    }

    /// End the activation.
    pub fn end_activation(&mut self) {
        self.running = false;
        for w in std::mem::take(&mut self.windows) {
            self.emit(|| TableEvent::WindowClose { token: w.token });
        }
    }

    /// Apply all eligible pending updates. An update that arrived at a
    /// running junction and was *followed* by a local write to the same
    /// key is dropped ("local updates have priority", §8) — the op
    /// sequence orders the local write against the arrival, so a remote
    /// reply that arrived after our last local write still applies.
    pub fn flush_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            let lop = self.locally_written.get(&p.update.key).map(|&(_, s)| s);
            let shadowed = p.during_run && lop.is_some_and(|s| s > p.seq);
            if shadowed {
                self.emit(|| TableEvent::ShadowDrop {
                    key: p.update.key.clone(),
                    from: p.update.from.clone(),
                    link_seq: p.update.seq,
                    op: p.seq,
                    lop: lop.unwrap_or(0),
                    during_run: p.during_run,
                });
            } else {
                self.apply(&p.update);
                self.emit(|| TableEvent::FlushApply {
                    key: p.update.key.clone(),
                    from: p.update.from.clone(),
                    link_seq: p.update.seq,
                    op: p.seq,
                    during_run: p.during_run,
                });
            }
        }
    }

    fn apply(&mut self, u: &Update) {
        match &u.kind {
            UpdateKind::Assert => {
                self.props.insert(u.key.clone(), true);
            }
            UpdateKind::Retract => {
                self.props.insert(u.key.clone(), false);
            }
            UpdateKind::Data(v) => {
                self.data.insert(u.key.clone(), v.clone());
            }
        }
    }

    /// Deliver a remote update. Applies immediately only when the key is
    /// admitted by an open `wait` window *and* no local write to the key
    /// happened since that window opened — the same seq comparison
    /// [`Table::open_window`] makes for retroactive application. A
    /// remote update that raced behind a local write queues instead of
    /// clobbering it ("local updates have priority", §8) and applies at
    /// the next scheduling under the ordinary flush rule.
    pub fn deliver(&mut self, update: Update) -> Delivery {
        self.op_seq += 1;
        let op = self.op_seq;
        let lop = self.locally_written.get(&update.key).map(|&(_, s)| s);
        let admitted = self.windows.iter().any(|w| {
            w.keys.iter().any(|k| k == &update.key) && lop.is_none_or(|s| s < w.wop)
        });
        if admitted {
            self.apply(&update);
            self.emit(|| TableEvent::Deliver {
                key: update.key.clone(),
                from: update.from.clone(),
                link_seq: update.seq,
                op,
                applied: true,
                during_run: self.running,
            });
            return Delivery::AppliedNow;
        }
        self.emit(|| TableEvent::Deliver {
            key: update.key.clone(),
            from: update.from.clone(),
            link_seq: update.seq,
            op,
            applied: false,
            during_run: self.running,
        });
        self.pending.push_back(Pending {
            update,
            during_run: self.running,
            seq: op,
        });
        Delivery::Queued
    }

    /// Deliver a run of remote updates in order. Exactly equivalent to
    /// calling [`Table::deliver`] per update — each still gets its own
    /// `op_seq`, window admission check, and trace event, so the §8
    /// local-priority semantics and the denoted event structure are
    /// unchanged; what a batch amortizes is everything *around* this
    /// call (one table-lock acquisition and one waiter wakeup per run,
    /// see `Cell::deliver_batch` in the runtime). Returns how many
    /// updates applied immediately.
    pub fn deliver_batch(&mut self, updates: Vec<Update>) -> usize {
        let mut applied = 0;
        for u in updates {
            if self.deliver(u) == Delivery::AppliedNow {
                applied += 1;
            }
        }
        applied
    }

    /// Open a `wait` window admitting the given keys; returns a token for
    /// [`Table::close_window`].
    ///
    /// Pending updates to the window's keys that arrived *after* the most
    /// recent local write to that key are applied retroactively: `wait`
    /// "allows for specific records in the KV table to be updated by
    /// another instance" even when the reply raced ahead of the `wait`
    /// itself (the remote peer can only have reacted to our local write,
    /// so such updates are causally newer).
    pub fn open_window(&mut self, keys: Vec<String>) -> u64 {
        let token = self.next_window;
        self.next_window += 1;
        self.op_seq += 1;
        let wop = self.op_seq;
        self.emit(|| TableEvent::WindowOpen { token, wop, keys: keys.clone() });
        let mut keep = std::collections::VecDeque::with_capacity(self.pending.len());
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            let in_window = keys.iter().any(|k| k == &p.update.key);
            let newer_than_local = self
                .locally_written
                .get(&p.update.key)
                .is_none_or(|&(_, s)| p.seq > s);
            if in_window && newer_than_local {
                self.apply(&p.update);
                self.emit(|| TableEvent::RetroApply {
                    key: p.update.key.clone(),
                    from: p.update.from.clone(),
                    link_seq: p.update.seq,
                    op: p.seq,
                });
            } else {
                keep.push_back(p);
            }
        }
        self.pending = keep;
        self.windows.push(Window { token, keys, wop });
        token
    }

    /// Close one `wait` window.
    pub fn close_window(&mut self, token: u64) {
        let before = self.windows.len();
        self.windows.retain(|w| w.token != token);
        if self.windows.len() != before {
            self.emit(|| TableEvent::WindowClose { token });
        }
    }

    /// `keep`: discard pending updates for the given keys. Idempotent.
    pub fn keep(&mut self, keys: &[String]) {
        let mut kept = std::collections::VecDeque::with_capacity(self.pending.len());
        for p in std::mem::take(&mut self.pending) {
            if keys.iter().any(|k| k == &p.update.key) {
                self.emit(|| TableEvent::KeepDrop {
                    key: p.update.key.clone(),
                    from: p.update.from.clone(),
                    link_seq: p.update.seq,
                });
            } else {
                kept.push_back(p);
            }
        }
        self.pending = kept;
    }

    /// Read a proposition.
    pub fn prop(&self, key: &str) -> Option<bool> {
        self.props.get(key).copied()
    }

    /// Locally set a proposition (`assert []`/`retract []`). Local writes
    /// are visible immediately and shadow pending remote updates.
    pub fn set_prop_local(&mut self, key: &str, value: bool) -> Result<(), TableError> {
        if !self.props.contains_key(key) {
            return Err(TableError::NoSuchKey(key.to_string()));
        }
        self.props.insert(key.to_string(), value);
        self.op_seq += 1;
        self.locally_written
            .insert(key.to_string(), (self.epoch, self.op_seq));
        self.emit(|| TableEvent::LocalWrite { key: key.to_string(), op: self.op_seq });
        Ok(())
    }

    /// Read a datum.
    pub fn data(&self, key: &str) -> Option<&Value> {
        self.data.get(key)
    }

    /// Read a datum for `restore`/`write`: errors on missing or `undef`.
    pub fn data_defined(&self, key: &str) -> Result<&Value, TableError> {
        match self.data.get(key) {
            None => Err(TableError::NoSuchKey(key.to_string())),
            Some(Value::Undef) => Err(TableError::Undef(key.to_string())),
            Some(v) => Ok(v),
        }
    }

    /// Locally set a datum (`save`).
    pub fn set_data_local(&mut self, key: &str, value: Value) -> Result<(), TableError> {
        if !self.data.contains_key(key) {
            return Err(TableError::NoSuchKey(key.to_string()));
        }
        self.data.insert(key.to_string(), value);
        self.op_seq += 1;
        self.locally_written
            .insert(key.to_string(), (self.epoch, self.op_seq));
        self.emit(|| TableEvent::LocalWrite { key: key.to_string(), op: self.op_seq });
        Ok(())
    }

    /// Set a subset's value; each element must belong to the base set
    /// (the §6 host-language contract).
    pub fn set_subset(&mut self, name: &str, elems: Vec<SetElem>) -> Result<(), TableError> {
        let base = self
            .subset_bases
            .get(name)
            .ok_or_else(|| TableError::NoSuchKey(name.to_string()))?;
        for e in &elems {
            if !base.contains(e) {
                return Err(TableError::InvalidIndex {
                    name: name.to_string(),
                    value: e.key(),
                });
            }
        }
        self.subsets.insert(name.to_string(), Some(elems));
        Ok(())
    }

    /// Membership test; `None` while the subset is `undef`.
    pub fn subset_contains(&self, name: &str, elem_key: &str) -> Option<bool> {
        self.subsets
            .get(name)?
            .as_ref()
            .map(|elems| elems.iter().any(|e| e.key() == elem_key))
    }

    /// Set an index's value; must belong to the base set.
    pub fn set_idx(&mut self, name: &str, elem_key: &str) -> Result<(), TableError> {
        let base = self
            .idx_bases
            .get(name)
            .ok_or_else(|| TableError::NoSuchKey(name.to_string()))?;
        if !base.iter().any(|e| e.key() == elem_key) {
            return Err(TableError::InvalidIndex {
                name: name.to_string(),
                value: elem_key.to_string(),
            });
        }
        self.idxs.insert(name.to_string(), Some(elem_key.to_string()));
        Ok(())
    }

    /// Read an index's current value (element key), if defined.
    pub fn idx(&self, name: &str) -> Option<&str> {
        self.idxs.get(name)?.as_deref()
    }

    /// Base set of a declared index.
    pub fn idx_base(&self, name: &str) -> Option<&[SetElem]> {
        self.idx_bases.get(name).map(|v| v.as_slice())
    }

    /// Base set of a declared subset.
    pub fn subset_base(&self, name: &str) -> Option<&[SetElem]> {
        self.subset_bases.get(name).map(|v| v.as_slice())
    }

    /// Whether a key names a declared proposition.
    pub fn has_prop(&self, key: &str) -> bool {
        self.props.contains_key(key)
    }

    /// Whether a key names a declared datum.
    pub fn has_data(&self, key: &str) -> bool {
        self.data.contains_key(key)
    }

    /// Number of queued (pending) updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// All propositions and their current values, sorted by key. Used by
    /// `reconsider` to detect whether anything changed since an arm was
    /// selected.
    pub fn props_fingerprint(&self) -> Vec<(String, bool)> {
        let mut v: Vec<_> = self.props.iter().map(|(k, b)| (k.clone(), *b)).collect();
        v.sort();
        v
    }

    /// Snapshot the visible state (not the pending queue).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            props: self.props.clone(),
            data: self.data.clone(),
            subsets: self.subsets.clone(),
            idxs: self.idxs.clone(),
        }
    }

    /// Roll back the visible state to a snapshot ("a failure results in a
    /// clean rollback of the KV table", §6).
    pub fn rollback(&mut self, snap: Snapshot) {
        self.props = snap.props;
        self.data = snap.data;
        self.subsets = snap.subsets;
        self.idxs = snap.idxs;
    }

    /// Export the complete table state for migration. Meant to be taken
    /// at quiescence (no activation running, all windows closed); open
    /// windows do not survive an export.
    pub fn export_state(&self) -> TableState {
        let mut props: Vec<_> = self.props.iter().map(|(k, v)| (k.clone(), *v)).collect();
        props.sort();
        let mut data: Vec<_> = self.data.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        data.sort_by(|a, b| a.0.cmp(&b.0));
        let mut subsets: Vec<_> = self
            .subsets
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    self.subset_bases.get(k).cloned().unwrap_or_default(),
                    v.clone(),
                )
            })
            .collect();
        subsets.sort_by(|a, b| a.0.cmp(&b.0));
        let mut idxs: Vec<_> = self
            .idxs
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    self.idx_bases.get(k).cloned().unwrap_or_default(),
                    v.clone(),
                )
            })
            .collect();
        idxs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut locally_written: Vec<_> = self
            .locally_written
            .iter()
            .map(|(k, &(e, s))| (k.clone(), e, s))
            .collect();
        locally_written.sort();
        TableState {
            props,
            data,
            subsets,
            idxs,
            pending: self
                .pending
                .iter()
                .map(|p| PendingState {
                    update: p.update.clone(),
                    during_run: p.during_run,
                    seq: p.seq,
                })
                .collect(),
            epoch: self.epoch,
            locally_written,
            op_seq: self.op_seq,
            next_window: self.next_window,
        }
    }

    /// Import a previously exported state, replacing this table's state
    /// wholesale — declarations included. The inverse of
    /// [`Table::export_state`]: entries, the pending queue, the seq
    /// counters and the local-priority shadows all resume exactly where
    /// the export left them. The observer slot is untouched.
    pub fn import_state(&mut self, state: TableState) {
        self.props = state.props.into_iter().collect();
        self.data = state.data.into_iter().collect();
        self.subsets.clear();
        self.subset_bases.clear();
        for (name, base, value) in state.subsets {
            self.subsets.insert(name.clone(), value);
            self.subset_bases.insert(name, base);
        }
        self.idxs.clear();
        self.idx_bases.clear();
        for (name, base, value) in state.idxs {
            self.idxs.insert(name.clone(), value);
            self.idx_bases.insert(name, base);
        }
        self.pending = state
            .pending
            .into_iter()
            .map(|p| Pending {
                update: p.update,
                during_run: p.during_run,
                seq: p.seq,
            })
            .collect();
        self.epoch = state.epoch;
        self.locally_written = state
            .locally_written
            .into_iter()
            .map(|(k, e, s)| (k, (e, s)))
            .collect();
        self.op_seq = state.op_seq;
        self.windows.clear();
        self.next_window = state.next_window;
        self.running = false;
    }
}

impl Default for Table {
    fn default() -> Self {
        Table::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new();
        t.declare_prop("Work", false);
        t.declare_prop("Retried", false);
        t.declare_data("n");
        t
    }

    #[test]
    fn declarations_and_reads() {
        let t = table();
        assert_eq!(t.prop("Work"), Some(false));
        assert_eq!(t.prop("Ghost"), None);
        assert_eq!(t.data("n"), Some(&Value::Undef));
        assert!(t.has_prop("Work") && !t.has_prop("n"));
        assert!(t.has_data("n") && !t.has_data("Work"));
    }

    #[test]
    fn undef_data_cannot_be_read_for_write() {
        let t = table();
        assert_eq!(t.data_defined("n"), Err(TableError::Undef("n".into())));
    }

    #[test]
    fn local_writes_require_declaration() {
        let mut t = table();
        assert!(t.set_prop_local("Ghost", true).is_err());
        assert!(t.set_data_local("ghost", Value::Int(1)).is_err());
        t.set_prop_local("Work", true).unwrap();
        assert_eq!(t.prop("Work"), Some(true));
    }

    #[test]
    fn updates_queue_until_next_activation() {
        let mut t = table();
        t.deliver(Update::assert("Work", "f::j"));
        // Not yet applied.
        assert_eq!(t.prop("Work"), Some(false));
        assert_eq!(t.pending_len(), 1);
        t.begin_activation();
        assert_eq!(t.prop("Work"), Some(true));
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn updates_apply_in_arrival_order() {
        let mut t = table();
        t.deliver(Update::assert("Work", "a"));
        t.deliver(Update::retract("Work", "b"));
        t.deliver(Update::data("n", Value::Int(1), "a"));
        t.deliver(Update::data("n", Value::Int(2), "b"));
        t.begin_activation();
        assert_eq!(t.prop("Work"), Some(false));
        assert_eq!(t.data("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn local_priority_shadows_pending() {
        let mut t = table();
        t.begin_activation();
        // Remote update arrives mid-run…
        t.deliver(Update::assert("Work", "f::j"));
        // …and the junction locally writes the same key.
        t.set_prop_local("Work", false).unwrap();
        t.end_activation();
        t.begin_activation();
        // The pending remote update was ignored.
        assert_eq!(t.prop("Work"), Some(false));
    }

    #[test]
    fn local_priority_is_per_epoch() {
        let mut t = table();
        // Local write in activation 1.
        t.begin_activation();
        t.set_prop_local("Work", false).unwrap();
        t.end_activation();
        // Remote update arrives while idle — must apply.
        t.deliver(Update::assert("Work", "f::j"));
        t.begin_activation();
        assert_eq!(t.prop("Work"), Some(true));
    }

    #[test]
    fn wait_window_applies_immediately() {
        let mut t = table();
        t.begin_activation();
        let tok = t.open_window(vec!["Work".to_string(), "n".to_string()]);
        assert_eq!(t.deliver(Update::assert("Work", "g::j")), Delivery::AppliedNow);
        assert_eq!(t.prop("Work"), Some(true));
        assert_eq!(
            t.deliver(Update::data("n", Value::Int(9), "g::j")),
            Delivery::AppliedNow
        );
        assert_eq!(t.data("n"), Some(&Value::Int(9)));
        // Keys outside the window still queue.
        assert_eq!(t.deliver(Update::assert("Retried", "g::j")), Delivery::Queued);
        t.close_window(tok);
        assert_eq!(t.deliver(Update::retract("Work", "g::j")), Delivery::Queued);
    }

    #[test]
    fn concurrent_windows_are_independent() {
        let mut t = table();
        t.begin_activation();
        let w1 = t.open_window(vec!["Work".to_string()]);
        let w2 = t.open_window(vec!["Retried".to_string()]);
        assert_eq!(t.deliver(Update::assert("Work", "a")), Delivery::AppliedNow);
        assert_eq!(t.deliver(Update::assert("Retried", "a")), Delivery::AppliedNow);
        t.close_window(w1);
        // w2 still admits Retried but Work now queues.
        assert_eq!(t.deliver(Update::retract("Work", "a")), Delivery::Queued);
        assert_eq!(t.deliver(Update::retract("Retried", "a")), Delivery::AppliedNow);
        t.close_window(w2);
        assert_eq!(t.deliver(Update::assert("Retried", "a")), Delivery::Queued);
    }

    #[test]
    fn batch_delivery_is_equivalent_to_sequential() {
        // `deliver_batch` must denote exactly the event structure of
        // per-update `deliver` calls: same applied/queued decisions,
        // same op_seq assignment, same final state — across random
        // scripts mixing windows, local writes, and mid-run delivery.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..48u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let keys = ["Work", "Retried", "n"];
            let updates: Vec<Update> = (0..40)
                .map(|i| {
                    let k = keys[rng.gen_range(0..keys.len())];
                    match rng.gen_range(0..3) {
                        0 => Update::assert(k, "g::j"),
                        1 => Update::retract(k, "g::j"),
                        _ => Update::data(k, Value::Int(i), "g::j"),
                    }
                })
                .collect();
            let window: Vec<String> = keys
                .iter()
                .filter(|_| rng.gen_bool(0.5))
                .map(|k| k.to_string())
                .collect();
            let local_write = rng.gen_bool(0.5);
            let run = |batched: bool| {
                let mut t = table();
                t.begin_activation();
                t.open_window(window.clone());
                if local_write {
                    t.set_prop_local("Work", true).unwrap();
                }
                if batched {
                    t.deliver_batch(updates.clone());
                } else {
                    for u in updates.clone() {
                        t.deliver(u);
                    }
                }
                t.end_activation();
                // A fresh activation flushes the pending queue, so the
                // flush rule is part of the equivalence too.
                t.begin_activation();
                t.end_activation();
                t.export_state()
            };
            assert_eq!(run(true), run(false), "seed {seed} diverged");
        }
    }

    #[test]
    fn window_closes_at_end_of_activation() {
        let mut t = table();
        t.begin_activation();
        t.open_window(vec!["Work".to_string()]);
        t.end_activation();
        assert_eq!(t.deliver(Update::assert("Work", "g")), Delivery::Queued);
    }

    #[test]
    fn keep_discards_pending() {
        let mut t = table();
        t.deliver(Update::assert("Work", "a"));
        t.deliver(Update::data("n", Value::Int(5), "a"));
        t.keep(&["Work".to_string()]);
        assert_eq!(t.pending_len(), 1);
        // Idempotent.
        t.keep(&["Work".to_string()]);
        assert_eq!(t.pending_len(), 1);
        t.begin_activation();
        assert_eq!(t.prop("Work"), Some(false));
        assert_eq!(t.data("n"), Some(&Value::Int(5)));
    }

    #[test]
    fn snapshot_rollback() {
        let mut t = table();
        t.begin_activation();
        let snap = t.snapshot();
        t.set_prop_local("Work", true).unwrap();
        t.set_data_local("n", Value::Int(7)).unwrap();
        t.rollback(snap);
        assert_eq!(t.prop("Work"), Some(false));
        assert_eq!(t.data("n"), Some(&Value::Undef));
    }

    #[test]
    fn rollback_does_not_restore_pending() {
        let mut t = table();
        let snap = t.snapshot();
        t.deliver(Update::assert("Work", "a"));
        t.rollback(snap);
        assert_eq!(t.pending_len(), 1);
    }

    #[test]
    fn subsets_validate_membership() {
        let mut t = table();
        t.declare_subset(
            "tgt",
            vec![SetElem::Instance("b1".into()), SetElem::Instance("b2".into())],
        );
        // Undef until set.
        assert_eq!(t.subset_contains("tgt", "b1"), None);
        t.set_subset("tgt", vec![SetElem::Instance("b1".into())]).unwrap();
        assert_eq!(t.subset_contains("tgt", "b1"), Some(true));
        assert_eq!(t.subset_contains("tgt", "b2"), Some(false));
        // Violating the host contract is an error.
        let err = t.set_subset("tgt", vec![SetElem::Instance("zz".into())]);
        assert!(matches!(err, Err(TableError::InvalidIndex { .. })));
    }

    #[test]
    fn idx_validates_membership() {
        let mut t = table();
        t.declare_idx(
            "tgt",
            vec![SetElem::Instance("b1".into()), SetElem::Instance("b2".into())],
        );
        assert_eq!(t.idx("tgt"), None);
        t.set_idx("tgt", "b2").unwrap();
        assert_eq!(t.idx("tgt"), Some("b2"));
        assert!(matches!(
            t.set_idx("tgt", "zz"),
            Err(TableError::InvalidIndex { .. })
        ));
        assert_eq!(t.idx_base("tgt").unwrap().len(), 2);
    }

    #[test]
    fn window_does_not_admit_updates_raced_behind_local_writes() {
        // Regression: an open window used to apply any admitted key
        // immediately, so a remote update that raced behind the latest
        // local write clobbered it mid-activation. The window must make
        // the same seq comparison as `open_window`.
        let mut t = table();
        t.begin_activation();
        let tok = t.open_window(vec!["Work".to_string()]);
        // Local write after the window opened re-takes priority.
        t.set_prop_local("Work", false).unwrap();
        assert_eq!(t.deliver(Update::assert("Work", "g::j")), Delivery::Queued);
        assert_eq!(
            t.prop("Work"),
            Some(false),
            "raced remote update must not clobber the local write"
        );
        t.close_window(tok);
        t.end_activation();
        // The queued update is not shadowed (it arrived after the local
        // write), so it applies at the next scheduling under the
        // ordinary §8 queue rule.
        t.begin_activation();
        assert_eq!(t.prop("Work"), Some(true));
    }

    #[test]
    fn window_opened_after_local_write_still_admits() {
        let mut t = table();
        t.begin_activation();
        t.set_prop_local("Work", false).unwrap();
        // The wait opened after our write: replies react to state we
        // exposed before waiting, so they apply immediately.
        t.open_window(vec!["Work".to_string()]);
        assert_eq!(t.deliver(Update::assert("Work", "g::j")), Delivery::AppliedNow);
        assert_eq!(t.prop("Work"), Some(true));
    }

    #[test]
    fn observer_records_update_rule_quantities() {
        use std::sync::{Arc, Mutex};
        #[derive(Default)]
        struct Collect(Mutex<Vec<(u64, TableEvent)>>);
        impl TableObserver for Collect {
            fn on_event(&self, epoch: u64, event: TableEvent) {
                self.0.lock().unwrap().push((epoch, event));
            }
        }
        let collect = Arc::new(Collect::default());
        let mut t = table();
        t.set_observer(Arc::clone(&collect) as Arc<dyn TableObserver>);
        t.begin_activation();
        t.deliver(Update::assert("Work", "g::j"));
        t.set_prop_local("Work", false).unwrap();
        t.end_activation();
        t.begin_activation(); // shadow-drops the stale delivery
        t.end_activation();
        let events: Vec<TableEvent> =
            collect.0.lock().unwrap().iter().map(|(_, e)| e.clone()).collect();
        let dop = match &events[0] {
            TableEvent::Deliver { key, applied, during_run, op, .. } => {
                assert_eq!(key, "Work");
                assert!(!applied && *during_run);
                *op
            }
            other => panic!("expected Deliver first, got {other:?}"),
        };
        let lop = match &events[1] {
            TableEvent::LocalWrite { key, op } => {
                assert_eq!(key, "Work");
                assert!(*op > dop);
                *op
            }
            other => panic!("expected LocalWrite second, got {other:?}"),
        };
        assert!(
            events.iter().any(|e| matches!(
                e,
                TableEvent::ShadowDrop { lop: l, op, .. } if *l == lop && *op == dop
            )),
            "shadow drop with the shadowing lop must be recorded: {events:?}"
        );
    }

    #[test]
    fn epochs_advance_per_activation() {
        let mut t = table();
        assert_eq!(t.epoch(), 0);
        t.begin_activation();
        assert_eq!(t.epoch(), 1);
        assert!(t.is_running());
        t.end_activation();
        t.begin_activation();
        assert_eq!(t.epoch(), 2);
    }
}
