//! # csaw-kv — distributed key-value tables for junctions
//!
//! "C-Saw … reduc\[es\] architecture implementation to the definition and
//! management of distributed key-value tables" (§1). Each junction owns a
//! KV table holding its propositions and named data; junctions *push*
//! updates into each other's tables but can only *read* their own (§6,
//! *Distributed Key-Value table* — a restricted tuple space).
//!
//! This crate implements:
//!
//! * [`Table`] — one junction's table, with the paper's update rules:
//!   - remote updates arriving while the junction runs are **queued** and
//!     applied at the next scheduling,
//!   - except keys opened by an active `wait [n⃗] F`, which apply
//!     immediately (`open_window`),
//!   - local writes shadow pending remote updates to the same key made
//!     during the same activation ("**local updates have priority**", §8),
//!   - `keep` discards pending updates for chosen keys,
//!   - transaction blocks `⟨|E|⟩` snapshot and roll back the table.
//! * [`Update`] — the unit of junction↔junction synchronization
//!   (`write` for data, `assert`/`retract` for propositions).

pub mod table;

pub use table::{
    Delivery, PendingState, Snapshot, Table, TableError, TableEvent, TableObserver, TableState,
    Update, UpdateKind,
};
