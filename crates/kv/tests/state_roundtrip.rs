//! Property test: `Table::export_state` / `Table::import_state` is a
//! lossless round-trip across randomized operation histories.
//!
//! Live reconfiguration migrates junction tables by exporting their
//! state at quiescence and importing it into the successor topology, so
//! the export must preserve *everything* the §8 update rule is stated
//! over: entries (props, data, subsets, idxs), the pending queue with
//! per-update seqs, the operation counter, and the local-priority
//! shadows (`locally_written`). Each seed drives a random interleaving
//! of activations, local writes, deliveries, windows and `keep`s, then
//! checks that (a) the re-imported table exports identically and (b) it
//! *behaves* identically on the next activation — in particular that a
//! pending update shadowed by a pre-export local write is still dropped
//! after import.

use csaw_core::names::SetElem;
use csaw_core::value::Value;
use csaw_kv::table::{Table, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 48;
const OPS_PER_SEED: usize = 120;

const PROPS: [&str; 3] = ["Work", "Retried", "Done"];
const DATA: [&str; 3] = ["n", "m", "blob"];

fn fresh_table() -> Table {
    let mut t = Table::new();
    for p in PROPS {
        t.declare_prop(p, false);
    }
    for d in DATA {
        t.declare_data(d);
    }
    t.declare_subset(
        "grp",
        vec![
            SetElem::Instance("b1".into()),
            SetElem::Instance("b2".into()),
            SetElem::Instance("b3".into()),
        ],
    );
    t.declare_idx(
        "tgt",
        vec![SetElem::Instance("b1".into()), SetElem::Instance("b2".into())],
    );
    t
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4usize) {
        0 => Value::Int(rng.gen_range(-100..100i64)),
        1 => Value::Str(format!("s{}", rng.gen_range(0..1000u32))),
        2 => Value::Bytes((0..rng.gen_range(0..16usize)).map(|_| rng.gen::<u8>()).collect()),
        _ => Value::Bool(rng.gen_bool(0.5)),
    }
}

fn random_update(rng: &mut StdRng) -> Update {
    let from = format!("peer{}::j", rng.gen_range(0..3u32));
    let mut u = match rng.gen_range(0..3usize) {
        0 => Update::assert(PROPS[rng.gen_range(0..PROPS.len())], from),
        1 => Update::retract(PROPS[rng.gen_range(0..PROPS.len())], from),
        _ => Update::data(DATA[rng.gen_range(0..DATA.len())], random_value(rng), from),
    };
    // Sequenced like transport deliveries sometimes, unsequenced others.
    if rng.gen_bool(0.5) {
        u.seq = rng.gen_range(1..1000u64);
    }
    u
}

/// Drive a random operation history against the table.
fn churn(t: &mut Table, rng: &mut StdRng, ops: usize) {
    let mut active = false;
    let mut open: Vec<u64> = Vec::new();
    for _ in 0..ops {
        match rng.gen_range(0..10usize) {
            0 => {
                if !active {
                    t.begin_activation();
                    active = true;
                }
            }
            1 => {
                if active {
                    t.end_activation();
                    open.clear();
                    active = false;
                }
            }
            2 | 3 => {
                t.deliver(random_update(rng));
            }
            4 => {
                let _ = t.set_prop_local(PROPS[rng.gen_range(0..PROPS.len())], rng.gen_bool(0.5));
            }
            5 => {
                let _ = t.set_data_local(DATA[rng.gen_range(0..DATA.len())], random_value(rng));
            }
            6 => {
                if active {
                    let key = if rng.gen_bool(0.5) {
                        PROPS[rng.gen_range(0..PROPS.len())]
                    } else {
                        DATA[rng.gen_range(0..DATA.len())]
                    };
                    open.push(t.open_window(vec![key.to_string()]));
                }
            }
            7 => {
                if let Some(tok) = open.pop() {
                    t.close_window(tok);
                }
            }
            8 => {
                if rng.gen_bool(0.3) {
                    t.keep(&[PROPS[rng.gen_range(0..PROPS.len())].to_string()]);
                }
            }
            _ => {
                let _ = t.set_subset(
                    "grp",
                    vec![SetElem::Instance(format!("b{}", rng.gen_range(1..4u32)))],
                );
                let _ = t.set_idx("tgt", &format!("b{}", rng.gen_range(1..3u32)));
            }
        }
    }
    // Export happens at quiescence: no running activation.
    if active {
        t.end_activation();
    }
}

#[test]
fn export_import_round_trips_across_48_seeds() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xC5A0_0000 + seed);
        let mut original = fresh_table();
        churn(&mut original, &mut rng, OPS_PER_SEED);

        let exported = original.export_state();
        // Entry, seq and shadow preservation in the exported form.
        assert_eq!(exported.epoch, original.epoch(), "seed {seed}: epoch");
        assert_eq!(
            exported.pending.len(),
            original.pending_len(),
            "seed {seed}: pending queue length"
        );

        let mut restored = Table::new();
        restored.import_state(exported.clone());
        assert_eq!(
            restored.export_state(),
            exported,
            "seed {seed}: re-export must be identical"
        );

        // Behavioral equivalence: both tables must agree after the next
        // activation (same flush/shadow-drop decisions — this exercises
        // `locally_written`, per-pending seqs and `during_run` flags).
        original.begin_activation();
        restored.begin_activation();
        original.end_activation();
        restored.end_activation();
        assert_eq!(
            original.props_fingerprint(),
            restored.props_fingerprint(),
            "seed {seed}: post-flush props diverge"
        );
        for d in DATA {
            assert_eq!(original.data(d), restored.data(d), "seed {seed}: datum {d}");
        }
        assert_eq!(
            original.pending_len(),
            restored.pending_len(),
            "seed {seed}: post-flush pending"
        );
        assert_eq!(
            original.export_state(),
            restored.export_state(),
            "seed {seed}: post-flush full state diverges"
        );
    }
}

#[test]
fn import_preserves_local_priority_shadow() {
    // Directed regression: a delivery that arrived during a run and was
    // then shadowed by a local write must STILL be dropped when the
    // flush happens on the imported copy.
    let mut t = fresh_table();
    t.begin_activation();
    t.deliver(Update::assert("Work", "peer::j"));
    t.set_prop_local("Work", false).unwrap();
    t.end_activation();

    let mut copy = Table::new();
    copy.import_state(t.export_state());
    assert_eq!(copy.pending_len(), 1);
    copy.begin_activation();
    assert_eq!(
        copy.prop("Work"),
        Some(false),
        "shadowed update must not apply after import"
    );
    assert_eq!(copy.pending_len(), 0);
}

#[test]
fn import_preserves_post_write_delivery_order() {
    // A delivery that arrived after the latest local write still applies
    // at the first activation after import — op-seq ordering survives.
    let mut t = fresh_table();
    t.begin_activation();
    t.set_prop_local("Work", false).unwrap();
    t.deliver(Update::assert("Work", "peer::j"));
    t.end_activation();

    let mut copy = Table::new();
    copy.import_state(t.export_state());
    copy.begin_activation();
    assert_eq!(copy.prop("Work"), Some(true), "post-local-write delivery applies");
}
