//! mini-redis running under the C-Saw architectures end-to-end: the
//! §10.1 features (sharding by key and by size, caching, checkpointing,
//! fail-over) exercised against the real store.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use csaw_arch::caching::{caching, CachingSpec};
use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw_arch::failover::{self, failover, FailoverSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_kv::Update;
use csaw_runtime::runtime::Policy;
use csaw_runtime::{Runtime, RuntimeConfig};
use mini_redis::apps::{
    CacheApp, CheckpointStoreApp, FailoverFrontApp, ServerApp, ShardFrontApp, ShardMode,
};
use mini_redis::hash::shard_of;
use mini_redis::{Command, Reply};

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn redis_sharded_by_key_end_to_end() {
    let spec = ShardingSpec::default();
    let cp = csaw_core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let front = ShardFrontApp::new(ShardMode::ByKey, 4);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let mut stores = Vec::new();
    for i in 1..=4 {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    // SET then GET 20 keys through the architecture.
    for i in 0..20 {
        requests
            .lock()
            .push_back(Command::Set(format!("k{i}"), format!("v{i}").into_bytes()));
        rt.invoke("Fnt", "junction").unwrap();
    }
    for i in 0..20 {
        requests.lock().push_back(Command::Get(format!("k{i}")));
        rt.invoke("Fnt", "junction").unwrap();
    }
    assert!(wait_until(Duration::from_secs(5), || replies.lock().len() == 40));
    // GET replies (the second half) return the stored values.
    let all: Vec<Reply> = replies.lock().drain(..).collect();
    for (i, r) in all[20..].iter().enumerate() {
        assert_eq!(r, &Reply::Bulk(format!("v{i}").into_bytes()));
    }
    // Keys are partitioned by djb2: each key lives only on its shard.
    for i in 0..20 {
        let key = format!("k{i}");
        let home = shard_of(&key, 4);
        for (s, store) in stores.iter().enumerate() {
            assert_eq!(store.lock().exists(&key), s == home, "key {key} shard {s}");
        }
    }
    rt.shutdown();
}

#[test]
fn redis_sharded_by_object_size() {
    let spec = ShardingSpec { n_backends: 3, ..Default::default() };
    let cp = csaw_core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let front = ShardFrontApp::new(ShardMode::BySize, 3);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let mut stores = Vec::new();
    for i in 1..=3 {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    // One object per size class: ≤4KB, ≤64KB, >64KB.
    let sizes = [1024usize, 16_384, 128_000];
    for (i, size) in sizes.iter().enumerate() {
        requests
            .lock()
            .push_back(Command::Set(format!("obj{i}"), vec![0xCD; *size]));
        rt.invoke("Fnt", "junction").unwrap();
    }
    assert!(wait_until(Duration::from_secs(5), || replies.lock().len() == 3));
    // Each object landed on the shard of its size class.
    for (i, store) in stores.iter().enumerate() {
        assert!(store.lock().exists(&format!("obj{i}")), "class {i}");
        assert_eq!(store.lock().len(), 1);
    }
    rt.shutdown();
}

#[test]
fn redis_caching_serves_hot_reads_from_cache() {
    let spec = CachingSpec::default();
    let cp = csaw_core::compile(caching(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let cache = CacheApp::new(1024);
    let requests = Arc::clone(&cache.requests);
    let replies = Arc::clone(&cache.replies);
    let hits = Arc::clone(&cache.hits);
    rt.bind_app("Cache", Box::new(cache));
    let fun = ServerApp::new();
    let handled = Arc::clone(&fun.handled);
    let store = Arc::clone(&fun.store);
    rt.bind_app("Fun", Box::new(fun));
    rt.set_policy("Cache", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    store.lock().set("hot", b"value".to_vec());
    // 1 write-through + 5 reads of the same key.
    for _ in 0..5 {
        requests.lock().push_back(Command::Get("hot".into()));
        rt.invoke("Cache", "junction").unwrap();
    }
    assert!(wait_until(Duration::from_secs(5), || replies.lock().len() == 5));
    // First read missed (hit the Fun instance); the rest were cache hits.
    assert_eq!(handled.load(Ordering::Relaxed), 1);
    assert_eq!(hits.load(Ordering::Relaxed), 4);
    for r in replies.lock().iter() {
        assert_eq!(r, &Reply::Bulk(b"value".to_vec()));
    }
    rt.shutdown();
}

#[test]
fn redis_checkpoint_restores_store_after_crash() {
    let spec = CheckpointSpec::default();
    let cp = csaw_core::compile(checkpoint(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let prim = ServerApp::new();
    let store = Arc::clone(&prim.store);
    rt.bind_app("Prim", Box::new(prim));
    let ckpt = CheckpointStoreApp::new();
    let latest = Arc::clone(&ckpt.latest);
    rt.bind_app("Store", Box::new(ckpt));
    rt.set_policy("Prim", "checkpoint", Policy::Periodic(Duration::from_millis(30)));
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    for i in 0..25 {
        store.lock().set(&format!("k{i}"), vec![i as u8; 100]);
    }
    let filled = store.lock().checkpoint().unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        latest.lock().as_ref().is_some_and(|b| b.len() >= filled.len())
    }));

    // Crash: the store's contents are lost.
    rt.crash("Prim");
    store.lock().flush();
    rt.set_policy("Prim", "checkpoint", Policy::OnDemand);
    rt.restart("Prim").unwrap();
    rt.deliver_for_test("Prim", "recover", Update::assert("NeedState", "driver"));
    assert!(wait_until(Duration::from_secs(5), || store.lock().len() == 25));
    assert_eq!(store.lock().get("k7"), Some(&vec![7u8; 100][..]));
    rt.shutdown();
}

#[test]
fn redis_failover_replicates_and_survives_crash() {
    let spec = FailoverSpec::default();
    let cp = csaw_core::compile(failover(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&cp, RuntimeConfig::default());
    let front = FailoverFrontApp::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let mut stores = Vec::new();
    for name in ["b1", "b2"] {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(name, Box::new(app));
    }
    let t = Duration::from_millis(400);
    failover::configure_policies(&rt, &spec, t);
    rt.run_main(vec![Value::Duration(t)]).unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    }));

    let request = |cmd: Command| {
        requests.lock().push_back(cmd);
        rt.deliver_for_test("f", "c", Update::assert("Req", "client"));
    };
    request(Command::Set("x".into(), b"1".to_vec()));
    assert!(wait_until(Duration::from_secs(5), || replies.lock().len() == 1));
    // Warm replication: both back-ends applied the write.
    assert!(wait_until(Duration::from_secs(2), || {
        stores[0].lock().exists("x") && stores[1].lock().exists("x")
    }));

    // Crash b1 mid-flight; the system keeps serving via b2.
    rt.crash("b1");
    request(Command::Get("x".into()));
    assert!(wait_until(Duration::from_secs(10), || replies.lock().len() == 2));
    assert_eq!(
        replies.lock().back().cloned(),
        Some(Reply::Bulk(b"1".to_vec()))
    );
    rt.shutdown();
}
