//! `InstanceApp` adapters binding the store into the `csaw-arch`
//! architectures. This is the "typification" work of §3: the application
//! is divided into parts (server, router, cache) that junctions invoke
//! through host hooks. The LoC of these adapters corresponds to the
//! paper's **Redis(DSL)** column in Table 2 (code edited in the
//! application to define junctions).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use csaw_core::value::Value;
use csaw_runtime::{HostCtx, InstanceApp};
use parking_lot::Mutex;

use crate::command::{Command, Reply};
use crate::hash::{shard_of, size_class};
use crate::store::Store;

/// A queue of requests a driver deposits and an app consumes.
pub type RequestQueue = Arc<Mutex<VecDeque<Command>>>;
/// A queue of replies an app produces and a driver consumes.
pub type ReplyQueue = Arc<Mutex<VecDeque<Reply>>>;

/// How the shard front-end routes (§5.2: "the simplest sharding is
/// key-based … we implemented … feature-based sharding based on object
/// size").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardMode {
    /// djb2(key) mod N.
    ByKey,
    /// Size-class of the object (0–4KB / 4–64KB / >64KB), tracked in a
    /// custom key→size table maintained on writes.
    BySize,
}

// SECTION: server
// ---------------------------------------------------------------------
// Back-end server
// ---------------------------------------------------------------------

/// A Redis back-end instance: executes commands against its own store.
/// Serves the sharding (`Handle`), fail-over (`H2`) and checkpointing
/// hook names.
pub struct ServerApp {
    /// The keyspace (shared so drivers/tests can inspect).
    pub store: Arc<Mutex<Store>>,
    /// Commands executed.
    pub handled: Arc<AtomicU64>,
    pending: Option<Command>,
    last_reply: Option<Reply>,
}

impl ServerApp {
    /// New server with a fresh store.
    pub fn new() -> ServerApp {
        ServerApp {
            store: Arc::new(Mutex::new(Store::new())),
            handled: Arc::new(AtomicU64::new(0)),
            pending: None,
            last_reply: None,
        }
    }

    /// New server sharing the given store handle.
    pub fn with_store(store: Arc<Mutex<Store>>) -> ServerApp {
        ServerApp {
            store,
            handled: Arc::new(AtomicU64::new(0)),
            pending: None,
            last_reply: None,
        }
    }

    fn execute_pending(&mut self) -> Result<(), String> {
        let cmd = self.pending.take().ok_or("no pending command")?;
        let reply = cmd.execute(&mut self.store.lock());
        self.handled.fetch_add(1, Ordering::Relaxed);
        self.last_reply = Some(reply);
        Ok(())
    }
}

impl Default for ServerApp {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceApp for ServerApp {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        match name {
            // Sharding back-end and fail-over back-end work hooks.
            "Handle" | "H2" | "F" => self.execute_pending(),
            _ => Ok(()),
        }
    }

    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            // Response payloads.
            "m" | "preresp" => Ok(Value::Bytes(
                self.last_reply
                    .as_ref()
                    .ok_or("no reply to save")?
                    .encode(),
            )),
            // Full-state checkpoint.
            "state" => Ok(Value::Bytes(self.store.lock().checkpoint()?)),
            other => Err(format!("server: unexpected save({other})")),
        }
    }

    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        let bytes = value.as_bytes().ok_or("expected bytes")?;
        match key {
            // Incoming requests.
            "n" | "req" => {
                self.pending = Some(Command::decode(bytes)?);
                Ok(())
            }
            // Checkpoint restore / replica sync.
            "state" => self.store.lock().restore(bytes),
            other => Err(format!("server: unexpected restore({other})")),
        }
    }
}

// ENDSECTION: server
// SECTION: sharding
// ---------------------------------------------------------------------
// Shard front-end
// ---------------------------------------------------------------------

/// The routing half of a shard front-end, shared by [`ShardFrontApp`]
/// and [`CachedShardFrontApp`].
struct Router {
    mode: ShardMode,
    n_backends: usize,
    backend_prefix: String,
    /// Explicit backend names overriding `backend_prefix` numbering —
    /// the routing-side counterpart of `ShardingSpec::over`: after a
    /// shard re-homing repair the survivor set (`[Bck1, Bck3]`) is not
    /// expressible as prefix + contiguous index.
    backends: Option<Vec<String>>,
    /// "a custom table that maps keys to object sizes" (§5.2).
    size_table: HashMap<String, usize>,
}

impl Router {
    fn new(mode: ShardMode, n_backends: usize) -> Router {
        Router {
            mode,
            n_backends,
            backend_prefix: "Bck".into(),
            backends: None,
            size_table: HashMap::new(),
        }
    }

    fn over(mode: ShardMode, backends: Vec<String>) -> Router {
        Router {
            n_backends: backends.len(),
            backends: Some(backends),
            ..Router::new(mode, 0)
        }
    }

    fn route(&mut self, cmd: &Command) -> usize {
        match self.mode {
            ShardMode::ByKey => cmd.key().map_or(0, |k| shard_of(k, self.n_backends)),
            ShardMode::BySize => {
                let key = match cmd.key() {
                    Some(k) => k,
                    None => return 0,
                };
                // Track sizes on writes; route by the recorded size.
                if let Command::Set(_, v) = cmd {
                    self.size_table.insert(key.to_string(), v.len());
                }
                let size = self.size_table.get(key).copied().unwrap_or(0);
                size_class(size).min(self.n_backends - 1)
            }
        }
    }

    fn target(&mut self, cmd: &Command) -> String {
        let shard = self.route(cmd);
        match &self.backends {
            Some(names) => names[shard].clone(),
            None => format!("{}{}", self.backend_prefix, shard + 1),
        }
    }
}

/// The sharding front-end: `Choose()` routes the pending command.
pub struct ShardFrontApp {
    /// Incoming client requests.
    pub requests: RequestQueue,
    /// Outgoing replies.
    pub replies: ReplyQueue,
    router: Router,
    current: Option<Command>,
}

impl ShardFrontApp {
    /// Build a front-end for `n_backends` shards.
    pub fn new(mode: ShardMode, n_backends: usize) -> ShardFrontApp {
        ShardFrontApp {
            requests: Arc::new(Mutex::new(VecDeque::new())),
            replies: Arc::new(Mutex::new(VecDeque::new())),
            router: Router::new(mode, n_backends),
            current: None,
        }
    }

    /// Build a front-end sharding over an explicit backend list (the
    /// survivor set after a re-homing repair).
    pub fn over(mode: ShardMode, backends: Vec<String>) -> ShardFrontApp {
        ShardFrontApp {
            router: Router::over(mode, backends),
            ..ShardFrontApp::new(mode, 0)
        }
    }
}

impl InstanceApp for ShardFrontApp {
    fn host_call(&mut self, name: &str, ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "Choose" {
            let cmd = self
                .requests
                .lock()
                .pop_front()
                .ok_or("no pending request")?;
            let target = self.router.target(&cmd);
            self.current = Some(cmd);
            ctx.set_idx("tgt", &target)?;
        }
        Ok(())
    }

    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            "n" => Ok(Value::Bytes(
                self.current.as_ref().ok_or("no current command")?.encode(),
            )),
            other => Err(format!("shard-front: unexpected save({other})")),
        }
    }

    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        match key {
            "m" => {
                let reply = Reply::decode(value.as_bytes().ok_or("expected bytes")?)?;
                self.replies.lock().push_back(reply);
                Ok(())
            }
            other => Err(format!("shard-front: unexpected restore({other})")),
        }
    }
}

/// The cache-fronted shard front-end (`csaw_arch::sharding::
/// sharding_cached`): Fig. 7's memoizing cache merged into the Fig. 5
/// router. Pure reads are served from the in-process cache when
/// possible; misses and writes route to a shard, and fresh read
/// replies are memoized on the way back. Writes invalidate.
///
/// This is the autoscaler's cache-tier target app: when the read
/// fraction crosses the high watermark, the planner swaps the plain
/// [`ShardFrontApp`] front-end for this one in a single-quiesce phase.
pub struct CachedShardFrontApp {
    /// Incoming client requests.
    pub requests: RequestQueue,
    /// Outgoing replies.
    pub replies: ReplyQueue,
    /// Cache hits.
    pub hits: Arc<AtomicU64>,
    /// Cache misses.
    pub misses: Arc<AtomicU64>,
    router: Router,
    cache: HashMap<String, Reply>,
    capacity: usize,
    current: Option<Command>,
    fresh: Option<Reply>,
}

impl CachedShardFrontApp {
    /// Build for `n_backends` shards with a bounded cache.
    pub fn new(mode: ShardMode, n_backends: usize, capacity: usize) -> CachedShardFrontApp {
        CachedShardFrontApp {
            requests: Arc::new(Mutex::new(VecDeque::new())),
            replies: Arc::new(Mutex::new(VecDeque::new())),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            router: Router::new(mode, n_backends),
            cache: HashMap::new(),
            capacity,
            current: None,
            fresh: None,
        }
    }

    /// Build over an explicit backend list.
    pub fn over(mode: ShardMode, backends: Vec<String>, capacity: usize) -> CachedShardFrontApp {
        CachedShardFrontApp {
            router: Router::over(mode, backends),
            ..CachedShardFrontApp::new(mode, 0, capacity)
        }
    }
}

impl InstanceApp for CachedShardFrontApp {
    fn host_call(&mut self, name: &str, ctx: &mut HostCtx<'_>) -> Result<(), String> {
        match name {
            "CheckCacheable" => {
                let cmd = self
                    .requests
                    .lock()
                    .pop_front()
                    .ok_or("no pending request")?;
                let cacheable = !cmd.is_write();
                if cmd.is_write() {
                    if let Some(k) = cmd.key() {
                        self.cache.remove(k);
                    }
                }
                self.current = Some(cmd);
                self.fresh = None;
                ctx.set_prop("Cacheable", cacheable)?;
                Ok(())
            }
            "LookupCache" => {
                let key = self
                    .current
                    .as_ref()
                    .and_then(|c| c.key())
                    .ok_or("no key to look up")?
                    .to_string();
                if let Some(reply) = self.cache.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.replies.lock().push_back(reply.clone());
                    ctx.set_prop("Cached", true)?;
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    ctx.set_prop("Cached", false)?;
                }
                Ok(())
            }
            // The miss arm routes like the plain front-end — but the
            // command was already pulled by `CheckCacheable`.
            "Choose" => {
                let cmd = self.current.clone().ok_or("no current command")?;
                let target = self.router.target(&cmd);
                ctx.set_idx("tgt", &target)?;
                Ok(())
            }
            "UpdateCache" => {
                if self.capacity == 0 {
                    return Ok(());
                }
                let key = self
                    .current
                    .as_ref()
                    .and_then(|c| c.key())
                    .ok_or("no key to cache")?
                    .to_string();
                let reply = self.fresh.clone().ok_or("no fresh value")?;
                if self.cache.len() >= self.capacity {
                    if let Some(k) = self.cache.keys().next().cloned() {
                        self.cache.remove(&k);
                    }
                }
                self.cache.insert(key, reply);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            "n" => Ok(Value::Bytes(
                self.current.as_ref().ok_or("no current command")?.encode(),
            )),
            other => Err(format!("cached-shard-front: unexpected save({other})")),
        }
    }

    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        match key {
            "m" => {
                let reply = Reply::decode(value.as_bytes().ok_or("expected bytes")?)?;
                self.fresh = Some(reply.clone());
                self.replies.lock().push_back(reply);
                Ok(())
            }
            other => Err(format!("cached-shard-front: unexpected restore({other})")),
        }
    }
}

// ENDSECTION: sharding
// SECTION: caching
// ---------------------------------------------------------------------
// Cache front-end
// ---------------------------------------------------------------------

/// The caching layer of Fig. 7: consults an in-process cache before
/// forwarding to the `Fun` instance (which runs a [`ServerApp`] under
/// hook name `F`).
pub struct CacheApp {
    /// Incoming requests.
    pub requests: RequestQueue,
    /// Outgoing replies.
    pub replies: ReplyQueue,
    /// Cache hits (for the Fig. 23c gain measurement).
    pub hits: Arc<AtomicU64>,
    /// Cache misses.
    pub misses: Arc<AtomicU64>,
    cache: HashMap<String, Reply>,
    capacity: usize,
    current: Option<Command>,
    fresh: Option<Reply>,
}

impl CacheApp {
    /// Build with a bounded cache.
    pub fn new(capacity: usize) -> CacheApp {
        CacheApp {
            requests: Arc::new(Mutex::new(VecDeque::new())),
            replies: Arc::new(Mutex::new(VecDeque::new())),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            cache: HashMap::new(),
            capacity,
            current: None,
            fresh: None,
        }
    }
}

impl InstanceApp for CacheApp {
    fn host_call(&mut self, name: &str, ctx: &mut HostCtx<'_>) -> Result<(), String> {
        match name {
            "CheckCacheable" => {
                let cmd = self
                    .requests
                    .lock()
                    .pop_front()
                    .ok_or("no pending request")?;
                // Only pure reads are memoizable; writes invalidate.
                let cacheable = !cmd.is_write();
                if cmd.is_write() {
                    if let Some(k) = cmd.key() {
                        self.cache.remove(k);
                    }
                }
                self.current = Some(cmd);
                self.fresh = None;
                ctx.set_prop("Cacheable", cacheable)?;
                Ok(())
            }
            "LookupCache" => {
                let key = self
                    .current
                    .as_ref()
                    .and_then(|c| c.key())
                    .ok_or("no key to look up")?
                    .to_string();
                if let Some(reply) = self.cache.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.replies.lock().push_back(reply.clone());
                    ctx.set_prop("Cached", true)?;
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    ctx.set_prop("Cached", false)?;
                }
                Ok(())
            }
            "UpdateCache" => {
                if self.capacity == 0 {
                    // Cache disabled (the "No Caching" arm of Fig. 23c).
                    return Ok(());
                }
                let key = self
                    .current
                    .as_ref()
                    .and_then(|c| c.key())
                    .ok_or("no key to cache")?
                    .to_string();
                let reply = self.fresh.clone().ok_or("no fresh value")?;
                if self.cache.len() >= self.capacity {
                    // Host-side eviction policy ("outside of the DSL's
                    // scope"): drop an arbitrary entry.
                    if let Some(k) = self.cache.keys().next().cloned() {
                        self.cache.remove(&k);
                    }
                }
                self.cache.insert(key, reply);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            "n" => Ok(Value::Bytes(
                self.current.as_ref().ok_or("no current command")?.encode(),
            )),
            other => Err(format!("cache: unexpected save({other})")),
        }
    }

    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        match key {
            "m" => {
                let reply = Reply::decode(value.as_bytes().ok_or("expected bytes")?)?;
                self.fresh = Some(reply.clone());
                self.replies.lock().push_back(reply);
                Ok(())
            }
            other => Err(format!("cache: unexpected restore({other})")),
        }
    }
}

// ENDSECTION: caching
// SECTION: failover
// ---------------------------------------------------------------------
// Fail-over front-end
// ---------------------------------------------------------------------

/// The fail-over front-end for Redis: keeps a mirror of the canonical
/// store so `save("state")` reflects each served request.
pub struct FailoverFrontApp {
    /// Incoming requests.
    pub requests: RequestQueue,
    /// Outgoing replies.
    pub replies: ReplyQueue,
    mirror: Store,
    current: Option<Command>,
    /// Whether `current` has already been folded into the mirror.
    /// `save("state")` runs both per request (the Call arm) and per
    /// back-end (re-)registration (`Initialize`); without this flag a
    /// re-registration between two requests would apply the same
    /// command to the mirror twice, corrupting it for non-idempotent
    /// commands (APPEND, INCR).
    advanced: bool,
}

impl FailoverFrontApp {
    /// New front-end with an empty canonical store.
    pub fn new() -> FailoverFrontApp {
        FailoverFrontApp {
            requests: Arc::new(Mutex::new(VecDeque::new())),
            replies: Arc::new(Mutex::new(VecDeque::new())),
            mirror: Store::new(),
            current: None,
            advanced: false,
        }
    }
}

impl Default for FailoverFrontApp {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceApp for FailoverFrontApp {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        match name {
            "H1" => {
                self.current = Some(
                    self.requests
                        .lock()
                        .pop_front()
                        .ok_or("no pending request")?,
                );
                self.advanced = false;
                Ok(())
            }
            // H3 (emit response) has no host-side work here: the reply
            // queue was filled by restore("preresp").
            _ => Ok(()),
        }
    }

    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            "req" => Ok(Value::Bytes(
                self.current.as_ref().ok_or("no current command")?.encode(),
            )),
            "state" => {
                // Advance the canonical state by the served command —
                // at most once per command, however many times the
                // state is saved before the next request.
                if !self.advanced {
                    if let Some(cmd) = &self.current {
                        if cmd.is_write() {
                            let _ = cmd.execute(&mut self.mirror);
                        }
                    }
                    self.advanced = true;
                }
                Ok(Value::Bytes(self.mirror.checkpoint()?))
            }
            other => Err(format!("failover-front: unexpected save({other})")),
        }
    }

    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        let bytes = value.as_bytes().ok_or("expected bytes")?;
        match key {
            "state" => self.mirror.restore(bytes),
            "preresp" => {
                self.replies.lock().push_back(Reply::decode(bytes)?);
                Ok(())
            }
            other => Err(format!("failover-front: unexpected restore({other})")),
        }
    }
}

// ENDSECTION: failover
// SECTION: checkpoint
// ---------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------

/// The checkpoint-store instance: keeps the latest blob.
pub struct CheckpointStoreApp {
    /// Latest checkpoint (shared for driver inspection).
    pub latest: Arc<Mutex<Option<Vec<u8>>>>,
}

impl CheckpointStoreApp {
    /// Empty store.
    pub fn new() -> CheckpointStoreApp {
        CheckpointStoreApp {
            latest: Arc::new(Mutex::new(None)),
        }
    }
}

impl Default for CheckpointStoreApp {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceApp for CheckpointStoreApp {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Bytes(
            self.latest.lock().clone().ok_or("no checkpoint stored")?,
        ))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        *self.latest.lock() = Some(value.as_bytes().ok_or("expected bytes")?.to_vec());
        Ok(())
    }
}

// ENDSECTION: checkpoint

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> csaw_kv::Table {
        let mut t = csaw_kv::Table::new();
        t.declare_prop("Cacheable", false);
        t.declare_prop("Cached", false);
        t.declare_idx(
            "tgt",
            (1..=4)
                .map(|i| csaw_core::names::SetElem::Instance(format!("Bck{i}")))
                .collect(),
        );
        t
    }

    #[test]
    fn server_executes_and_replies() {
        let mut app = ServerApp::new();
        app.restore("n", &Value::Bytes(Command::Set("k".into(), b"v".to_vec()).encode()))
            .unwrap();
        let mut t = table();
        let writes: Vec<String> = vec![];
        let mut ctx = HostCtx::new(&mut t, &writes, "b", "j");
        app.host_call("Handle", &mut ctx).unwrap();
        let m = app.save("m").unwrap();
        assert_eq!(Reply::decode(m.as_bytes().unwrap()).unwrap(), Reply::Ok);
        assert_eq!(app.store.lock().get("k"), Some(&b"v"[..]));
        assert_eq!(app.handled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn server_checkpoint_round_trip() {
        let mut a = ServerApp::new();
        a.store.lock().set("x", b"1".to_vec());
        let state = a.save("state").unwrap();
        let mut b = ServerApp::new();
        b.restore("state", &state).unwrap();
        assert_eq!(b.store.lock().get("x"), Some(&b"1"[..]));
    }

    #[test]
    fn shard_front_routes_by_key() {
        let mut app = ShardFrontApp::new(ShardMode::ByKey, 4);
        let cmd = Command::Get("user:7".into());
        let expected = shard_of("user:7", 4) + 1;
        app.requests.lock().push_back(cmd);
        let mut t = table();
        let writes = vec!["tgt".to_string()];
        let mut ctx = HostCtx::new(&mut t, &writes, "Fnt", "junction");
        app.host_call("Choose", &mut ctx).unwrap();
        assert_eq!(ctx.idx("tgt"), Some(format!("Bck{expected}").as_str()));
    }

    #[test]
    fn shard_front_routes_by_size_class() {
        let mut app = ShardFrontApp::new(ShardMode::BySize, 3);
        let mut t = table();
        let writes = vec!["tgt".to_string()];
        // A big SET lands in class 2; a subsequent GET of the same key
        // routes to the same shard via the size table.
        for cmd in [
            Command::Set("big".into(), vec![0; 128_000]),
            Command::Get("big".into()),
        ] {
            app.requests.lock().push_back(cmd);
            let mut ctx = HostCtx::new(&mut t, &writes, "Fnt", "junction");
            app.host_call("Choose", &mut ctx).unwrap();
            assert_eq!(ctx.idx("tgt"), Some("Bck3"));
        }
    }

    #[test]
    fn cache_app_protocol() {
        let mut app = CacheApp::new(100);
        let mut t = table();
        let writes = vec!["Cacheable".to_string(), "Cached".to_string()];
        // Miss path.
        app.requests.lock().push_back(Command::Get("k".into()));
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Cache", "j");
            app.host_call("CheckCacheable", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cacheable"), Some(true));
            app.host_call("LookupCache", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cached"), Some(false));
        }
        // Fun's reply comes back; cache it.
        app.restore("m", &Value::Bytes(Reply::Bulk(b"v".to_vec()).encode()))
            .unwrap();
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Cache", "j");
            app.host_call("UpdateCache", &mut ctx).unwrap();
        }
        // Hit path.
        app.requests.lock().push_back(Command::Get("k".into()));
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Cache", "j");
            app.host_call("CheckCacheable", &mut ctx).unwrap();
            app.host_call("LookupCache", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cached"), Some(true));
        }
        assert_eq!(app.hits.load(Ordering::Relaxed), 1);
        assert_eq!(app.misses.load(Ordering::Relaxed), 1);
        // A write invalidates.
        app.requests
            .lock()
            .push_back(Command::Set("k".into(), b"2".to_vec()));
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Cache", "j");
            app.host_call("CheckCacheable", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cacheable"), Some(false));
        }
        assert!(app.cache.is_empty());
    }

    #[test]
    fn cached_shard_front_protocol() {
        let mut app = CachedShardFrontApp::new(ShardMode::ByKey, 4, 100);
        let mut t = table();
        let writes = vec!["Cacheable".into(), "Cached".into(), "tgt".to_string()];
        let expected = format!("Bck{}", shard_of("k", 4) + 1);
        // Miss: classify, look up (miss), route to a shard.
        app.requests.lock().push_back(Command::Get("k".into()));
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Fnt", "junction");
            app.host_call("CheckCacheable", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cacheable"), Some(true));
            app.host_call("LookupCache", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cached"), Some(false));
            app.host_call("Choose", &mut ctx).unwrap();
            assert_eq!(ctx.idx("tgt"), Some(expected.as_str()));
        }
        // Shard reply comes back; memoize it.
        app.restore("m", &Value::Bytes(Reply::Bulk(b"v".to_vec()).encode()))
            .unwrap();
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Fnt", "junction");
            app.host_call("UpdateCache", &mut ctx).unwrap();
        }
        // Hit: served locally, no routing needed.
        app.requests.lock().push_back(Command::Get("k".into()));
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Fnt", "junction");
            app.host_call("CheckCacheable", &mut ctx).unwrap();
            app.host_call("LookupCache", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cached"), Some(true));
        }
        assert_eq!(app.hits.load(Ordering::Relaxed), 1);
        assert_eq!(app.misses.load(Ordering::Relaxed), 1);
        assert_eq!(app.replies.lock().len(), 2);
        // A write invalidates and routes (writes are never cacheable).
        app.requests
            .lock()
            .push_back(Command::Set("k".into(), b"2".to_vec()));
        {
            let mut ctx = HostCtx::new(&mut t, &writes, "Fnt", "junction");
            app.host_call("CheckCacheable", &mut ctx).unwrap();
            assert_eq!(ctx.prop("Cacheable"), Some(false));
            app.host_call("Choose", &mut ctx).unwrap();
            assert_eq!(ctx.idx("tgt"), Some(expected.as_str()));
        }
        assert!(app.cache.is_empty());
    }

    #[test]
    fn failover_front_state_advances_with_writes() {
        let mut app = FailoverFrontApp::new();
        app.requests
            .lock()
            .push_back(Command::Set("k".into(), b"v".to_vec()));
        let mut t = table();
        let writes: Vec<String> = vec![];
        let mut ctx = HostCtx::new(&mut t, &writes, "f", "c");
        app.host_call("H1", &mut ctx).unwrap();
        let state1 = app.save("state").unwrap();
        // A fresh server restored from state1 has the write.
        let mut server = ServerApp::new();
        server.restore("state", &state1).unwrap();
        assert_eq!(server.store.lock().get("k"), Some(&b"v"[..]));
    }

    #[test]
    fn checkpoint_store_round_trip() {
        let mut app = CheckpointStoreApp::new();
        assert!(app.save("state").is_err());
        app.restore("state", &Value::Bytes(vec![1, 2, 3])).unwrap();
        assert_eq!(app.save("state").unwrap(), Value::Bytes(vec![1, 2, 3]));
    }
}
