//! The in-memory keyspace with csaw-serial checkpointing.

use std::collections::BTreeMap;

use csaw_serial::{decode, encode, CodecConfig, HeapValue, Prim, Registry, TypeDesc};

/// Maximum serialized key length (schema cap).
const MAX_KEY: usize = 512;
/// Maximum serialized value length (schema cap).
const MAX_VAL: usize = 8 << 20;

/// The single-threaded in-memory key-value store.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Store {
    entries: BTreeMap<String, Vec<u8>>,
}

impl Store {
    /// Empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// `SET key value`.
    pub fn set(&mut self, key: &str, value: Vec<u8>) {
        self.entries.insert(key.to_string(), value);
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(|v| v.as_slice())
    }

    /// `DEL key` → whether it existed.
    pub fn del(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// `INCR key` → new value; errors if non-integer.
    pub fn incr(&mut self, key: &str) -> Result<i64, String> {
        let cur = match self.entries.get(key) {
            None => 0,
            Some(v) => std::str::from_utf8(v)
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .ok_or("value is not an integer")?,
        };
        let next = cur + 1;
        self.entries.insert(key.to_string(), next.to_string().into_bytes());
        Ok(next)
    }

    /// `APPEND key value` → new length.
    pub fn append(&mut self, key: &str, value: &[u8]) -> usize {
        let e = self.entries.entry(key.to_string()).or_default();
        e.extend_from_slice(value);
        e.len()
    }

    /// `DBSIZE`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `FLUSH`.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Size in bytes of a stored object (object-size sharding).
    pub fn object_size(&self, key: &str) -> Option<usize> {
        self.entries.get(key).map(|v| v.len())
    }

    /// All `(key, value)` pairs in key order (live-migration re-keying).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Remove and return every entry — the drain side of a shard
    /// migration (the receiving shard gets them via [`Store::set`]).
    pub fn drain_entries(&mut self) -> Vec<(String, Vec<u8>)> {
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Total payload bytes.
    pub fn used_bytes(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// The csaw-serial schema for one entry and for the whole store
    /// (a linked list of entries — the shape C-strider walks in the
    /// paper's Redis integration).
    pub fn registry() -> Registry {
        let mut reg = Registry::new();
        let entry = TypeDesc::strct(
            "kv_entry",
            vec![
                ("key", TypeDesc::CString { max_len: MAX_KEY }),
                ("value", TypeDesc::Blob { max_len: MAX_VAL }),
                ("flags", TypeDesc::Prim(Prim::U32)),
            ],
        );
        reg.register("kv_entry", entry);
        reg.register_list_node("kv_list", TypeDesc::Named("kv_entry".into()));
        reg
    }

    fn list_type() -> TypeDesc {
        TypeDesc::ptr(TypeDesc::Named("kv_list".into()))
    }

    fn codec_config(&self) -> CodecConfig {
        CodecConfig {
            // Each list node costs one pointer hop; allow the full store
            // plus slack. This is the knob the paper calls the
            // "configurable recursion depth".
            max_depth: self.entries.len() + 8,
            max_bytes: 64 << 20,
        }
    }

    /// Serialize the full store (checkpoint payload). The traversal
    /// recurses per list node, so it runs on a big-stack thread.
    pub fn checkpoint(&self) -> Result<Vec<u8>, String> {
        let cfg = self.codec_config();
        csaw_serial::codec::with_big_stack(|| {
            let reg = Self::registry();
            let list = HeapValue::list_from(self.entries.iter().map(|(k, v)| {
                HeapValue::Struct(vec![
                    HeapValue::CString(k.clone()),
                    HeapValue::Blob(v.clone()),
                    HeapValue::UInt(0),
                ])
            }));
            encode(&list, &Self::list_type(), &reg, &cfg).map_err(|e| e.to_string())
        })
    }

    /// Restore the full store from a checkpoint payload.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let entries = csaw_serial::codec::with_big_stack(|| {
            let reg = Self::registry();
            let cfg = CodecConfig { max_depth: 1 << 22, max_bytes: 64 << 20 };
            let list = decode(bytes, &Self::list_type(), &reg, &cfg).map_err(|e| e.to_string())?;
            let mut entries = BTreeMap::new();
            for node in list.list_values() {
                if let HeapValue::Struct(fields) = node {
                    if let (HeapValue::CString(k), HeapValue::Blob(v)) = (&fields[0], &fields[1]) {
                        entries.insert(k.clone(), v.clone());
                    }
                }
            }
            Ok::<_, String>(entries)
        })?;
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = Store::new();
        assert!(s.is_empty());
        s.set("a", b"1".to_vec());
        assert_eq!(s.get("a"), Some(&b"1"[..]));
        assert!(s.exists("a"));
        assert!(!s.exists("b"));
        assert_eq!(s.len(), 1);
        assert!(s.del("a"));
        assert!(!s.del("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn incr_semantics() {
        let mut s = Store::new();
        assert_eq!(s.incr("n").unwrap(), 1);
        assert_eq!(s.incr("n").unwrap(), 2);
        s.set("bad", b"xyz".to_vec());
        assert!(s.incr("bad").is_err());
    }

    #[test]
    fn append_semantics() {
        let mut s = Store::new();
        assert_eq!(s.append("k", b"ab"), 2);
        assert_eq!(s.append("k", b"cd"), 4);
        assert_eq!(s.get("k"), Some(&b"abcd"[..]));
    }

    #[test]
    fn object_sizes() {
        let mut s = Store::new();
        s.set("small", vec![0; 100]);
        s.set("big", vec![0; 70_000]);
        assert_eq!(s.object_size("small"), Some(100));
        assert_eq!(s.object_size("big"), Some(70_000));
        assert_eq!(s.object_size("nope"), None);
        assert_eq!(s.used_bytes(), 70_100);
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut s = Store::new();
        for i in 0..50 {
            s.set(&format!("key:{i}"), format!("value-{i}").into_bytes());
        }
        let blob = s.checkpoint().unwrap();
        let mut s2 = Store::new();
        s2.restore(&blob).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn checkpoint_of_empty_store() {
        let s = Store::new();
        let blob = s.checkpoint().unwrap();
        let mut s2 = Store::new();
        s2.set("junk", b"x".to_vec());
        s2.restore(&blob).unwrap();
        assert!(s2.is_empty());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut s = Store::new();
        assert!(s.restore(&[1, 2, 3]).is_err());
    }

    #[test]
    fn checkpoint_scales_with_contents() {
        let mut small = Store::new();
        small.set("a", vec![0; 10]);
        let mut big = Store::new();
        for i in 0..100 {
            big.set(&format!("k{i}"), vec![0; 1000]);
        }
        assert!(big.checkpoint().unwrap().len() > small.checkpoint().unwrap().len() * 50);
    }
}
