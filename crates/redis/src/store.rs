//! The in-memory keyspace with csaw-serial checkpointing, plus the
//! lock-striped [`ShardedStore`] used when many threads hammer one
//! keyspace.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use csaw_serial::{decode, encode, CodecConfig, HeapValue, Prim, Registry, TypeDesc};

use crate::command::{Command, Reply};
use crate::hash::shard_of;

/// Maximum serialized key length (schema cap).
const MAX_KEY: usize = 512;
/// Maximum serialized value length (schema cap).
const MAX_VAL: usize = 8 << 20;

/// The single-threaded in-memory key-value store.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Store {
    entries: BTreeMap<String, Vec<u8>>,
}

impl Store {
    /// Empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// `SET key value`.
    pub fn set(&mut self, key: &str, value: Vec<u8>) {
        self.entries.insert(key.to_string(), value);
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(|v| v.as_slice())
    }

    /// `DEL key` → whether it existed.
    pub fn del(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// `INCR key` → new value; errors if non-integer.
    pub fn incr(&mut self, key: &str) -> Result<i64, String> {
        let cur = match self.entries.get(key) {
            None => 0,
            Some(v) => std::str::from_utf8(v)
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .ok_or("value is not an integer")?,
        };
        let next = cur + 1;
        self.entries.insert(key.to_string(), next.to_string().into_bytes());
        Ok(next)
    }

    /// `APPEND key value` → new length.
    pub fn append(&mut self, key: &str, value: &[u8]) -> usize {
        let e = self.entries.entry(key.to_string()).or_default();
        e.extend_from_slice(value);
        e.len()
    }

    /// `DBSIZE`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `FLUSH`.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Size in bytes of a stored object (object-size sharding).
    pub fn object_size(&self, key: &str) -> Option<usize> {
        self.entries.get(key).map(|v| v.len())
    }

    /// All `(key, value)` pairs in key order (live-migration re-keying).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Remove and return every entry — the drain side of a shard
    /// migration (the receiving shard gets them via [`Store::set`]).
    pub fn drain_entries(&mut self) -> Vec<(String, Vec<u8>)> {
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Total payload bytes.
    pub fn used_bytes(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// The csaw-serial schema for one entry and for the whole store
    /// (a linked list of entries — the shape C-strider walks in the
    /// paper's Redis integration).
    pub fn registry() -> Registry {
        let mut reg = Registry::new();
        let entry = TypeDesc::strct(
            "kv_entry",
            vec![
                ("key", TypeDesc::CString { max_len: MAX_KEY }),
                ("value", TypeDesc::Blob { max_len: MAX_VAL }),
                ("flags", TypeDesc::Prim(Prim::U32)),
            ],
        );
        reg.register("kv_entry", entry);
        reg.register_list_node("kv_list", TypeDesc::Named("kv_entry".into()));
        reg
    }

    fn list_type() -> TypeDesc {
        TypeDesc::ptr(TypeDesc::Named("kv_list".into()))
    }

    fn codec_config(&self) -> CodecConfig {
        CodecConfig {
            // Each list node costs one pointer hop; allow the full store
            // plus slack. This is the knob the paper calls the
            // "configurable recursion depth".
            max_depth: self.entries.len() + 8,
            max_bytes: 64 << 20,
        }
    }

    /// Serialize the full store (checkpoint payload). The traversal
    /// recurses per list node, so it runs on a big-stack thread.
    pub fn checkpoint(&self) -> Result<Vec<u8>, String> {
        let cfg = self.codec_config();
        csaw_serial::codec::with_big_stack(|| {
            let reg = Self::registry();
            let list = HeapValue::list_from(self.entries.iter().map(|(k, v)| {
                HeapValue::Struct(vec![
                    HeapValue::CString(k.clone()),
                    HeapValue::Blob(v.clone()),
                    HeapValue::UInt(0),
                ])
            }));
            encode(&list, &Self::list_type(), &reg, &cfg).map_err(|e| e.to_string())
        })
    }

    /// Restore the full store from a checkpoint payload.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let entries = csaw_serial::codec::with_big_stack(|| {
            let reg = Self::registry();
            let cfg = CodecConfig { max_depth: 1 << 22, max_bytes: 64 << 20 };
            let list = decode(bytes, &Self::list_type(), &reg, &cfg).map_err(|e| e.to_string())?;
            let mut entries = BTreeMap::new();
            for node in list.list_values() {
                if let HeapValue::Struct(fields) = node {
                    if let (HeapValue::CString(k), HeapValue::Blob(v)) = (&fields[0], &fields[1]) {
                        entries.insert(k.clone(), v.clone());
                    }
                }
            }
            Ok::<_, String>(entries)
        })?;
        self.entries = entries;
        Ok(())
    }
}

/// A lock-striped keyspace: N independent [`Store`] stripes, each
/// behind its own mutex, with keys placed by the same djb2 hash the
/// paper's sharding architecture routes on (§10.1). This is the
/// concurrent analog of "shard the hot table lock by key-hash":
/// per-key operations contend only on their stripe, so P threads over
/// P stripes run largely lock-free, where a single `Mutex<Store>`
/// serializes everything.
///
/// Per-key results are byte-identical to a single [`Store`]; the only
/// observable difference is iteration order of aggregate views, which
/// this type canonicalizes by visiting stripes in index order and
/// merging (keys within a stripe stay sorted, cross-stripe merges are
/// re-sorted where the contract requires it).
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Mutex<Store>>,
}

impl ShardedStore {
    /// Empty store with `n` stripes (at least 1).
    pub fn new(n: usize) -> ShardedStore {
        let n = n.max(1);
        ShardedStore { shards: (0..n).map(|_| Mutex::new(Store::new())).collect() }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.shards.len()
    }

    fn stripe(&self, key: &str) -> &Mutex<Store> {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: Vec<u8>) {
        self.stripe(key).lock().set(key, value);
    }

    /// `GET key` (copies the value out of the stripe).
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.stripe(key).lock().get(key).map(|v| v.to_vec())
    }

    /// `DEL key` → whether it existed.
    pub fn del(&self, key: &str) -> bool {
        self.stripe(key).lock().del(key)
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str) -> bool {
        self.stripe(key).lock().exists(key)
    }

    /// `INCR key` → new value; errors if non-integer.
    pub fn incr(&self, key: &str) -> Result<i64, String> {
        self.stripe(key).lock().incr(key)
    }

    /// `APPEND key value` → new length.
    pub fn append(&self, key: &str, value: &[u8]) -> usize {
        self.stripe(key).lock().append(key, value)
    }

    /// Size in bytes of a stored object.
    pub fn object_size(&self, key: &str) -> Option<usize> {
        self.stripe(key).lock().object_size(key)
    }

    /// `DBSIZE`: total entries across stripes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True iff every stripe is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Total payload bytes across stripes.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// `FLUSH` every stripe (stripes flushed in index order; not
    /// atomic across stripes, like any cross-shard operation).
    pub fn flush(&self) {
        for s in &self.shards {
            s.lock().flush();
        }
    }

    /// Remove and return every entry across stripes, in key order.
    pub fn drain_entries(&self) -> Vec<(String, Vec<u8>)> {
        let mut all: Vec<(String, Vec<u8>)> = Vec::new();
        for s in &self.shards {
            all.extend(s.lock().drain_entries());
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Execute one command, locking only the key's stripe. Keyless
    /// commands (`DBSIZE`, `FLUSH`) touch every stripe.
    pub fn execute(&self, cmd: &Command) -> Reply {
        match cmd {
            Command::DbSize => Reply::Int(self.len() as i64),
            Command::Flush => {
                self.flush();
                Reply::Ok
            }
            keyed => {
                let key = keyed.key().expect("keyed command");
                keyed.execute(&mut self.stripe(key).lock())
            }
        }
    }

    /// Serialize the full keyspace in the same csaw-serial format as
    /// [`Store::checkpoint`]: a sharded store and a single store with
    /// the same contents produce interchangeable checkpoints.
    pub fn checkpoint(&self) -> Result<Vec<u8>, String> {
        let mut merged = Store::new();
        for s in &self.shards {
            for (k, v) in s.lock().entries() {
                merged.set(k, v.to_vec());
            }
        }
        merged.checkpoint()
    }

    /// Restore the full keyspace from a [`Store::checkpoint`] payload,
    /// replacing current contents and re-striping every key.
    pub fn restore(&self, bytes: &[u8]) -> Result<(), String> {
        let mut staged = Store::new();
        staged.restore(bytes)?;
        self.flush();
        for (k, v) in staged.drain_entries() {
            self.set(&k, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = Store::new();
        assert!(s.is_empty());
        s.set("a", b"1".to_vec());
        assert_eq!(s.get("a"), Some(&b"1"[..]));
        assert!(s.exists("a"));
        assert!(!s.exists("b"));
        assert_eq!(s.len(), 1);
        assert!(s.del("a"));
        assert!(!s.del("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn incr_semantics() {
        let mut s = Store::new();
        assert_eq!(s.incr("n").unwrap(), 1);
        assert_eq!(s.incr("n").unwrap(), 2);
        s.set("bad", b"xyz".to_vec());
        assert!(s.incr("bad").is_err());
    }

    #[test]
    fn append_semantics() {
        let mut s = Store::new();
        assert_eq!(s.append("k", b"ab"), 2);
        assert_eq!(s.append("k", b"cd"), 4);
        assert_eq!(s.get("k"), Some(&b"abcd"[..]));
    }

    #[test]
    fn object_sizes() {
        let mut s = Store::new();
        s.set("small", vec![0; 100]);
        s.set("big", vec![0; 70_000]);
        assert_eq!(s.object_size("small"), Some(100));
        assert_eq!(s.object_size("big"), Some(70_000));
        assert_eq!(s.object_size("nope"), None);
        assert_eq!(s.used_bytes(), 70_100);
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut s = Store::new();
        for i in 0..50 {
            s.set(&format!("key:{i}"), format!("value-{i}").into_bytes());
        }
        let blob = s.checkpoint().unwrap();
        let mut s2 = Store::new();
        s2.restore(&blob).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn checkpoint_of_empty_store() {
        let s = Store::new();
        let blob = s.checkpoint().unwrap();
        let mut s2 = Store::new();
        s2.set("junk", b"x".to_vec());
        s2.restore(&blob).unwrap();
        assert!(s2.is_empty());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut s = Store::new();
        assert!(s.restore(&[1, 2, 3]).is_err());
    }

    #[test]
    fn checkpoint_scales_with_contents() {
        let mut small = Store::new();
        small.set("a", vec![0; 10]);
        let mut big = Store::new();
        for i in 0..100 {
            big.set(&format!("k{i}"), vec![0; 1000]);
        }
        assert!(big.checkpoint().unwrap().len() > small.checkpoint().unwrap().len() * 50);
    }

    #[test]
    fn sharded_matches_single_store_per_key() {
        let single = Mutex::new(Store::new());
        let sharded = ShardedStore::new(8);
        for i in 0..200 {
            let k = format!("key:{i}");
            single.lock().set(&k, vec![i as u8]);
            sharded.set(&k, vec![i as u8]);
        }
        for i in 0..200 {
            let k = format!("key:{i}");
            assert_eq!(sharded.get(&k).as_deref(), single.lock().get(&k));
            assert_eq!(sharded.object_size(&k), single.lock().object_size(&k));
        }
        assert_eq!(sharded.len(), single.lock().len());
        assert_eq!(sharded.used_bytes(), single.lock().used_bytes());
        assert_eq!(sharded.incr("n").unwrap(), 1);
        assert_eq!(sharded.incr("n").unwrap(), 2);
        assert_eq!(sharded.append("a", b"xy"), 2);
        assert!(sharded.del("key:0"));
        assert!(!sharded.exists("key:0"));
        assert_eq!(sharded.drain_entries().len(), 201);
        assert!(sharded.is_empty());
    }

    #[test]
    fn sharded_execute_covers_keyless_commands() {
        let s = ShardedStore::new(4);
        assert_eq!(s.execute(&Command::Set("a".into(), b"1".to_vec())), Reply::Ok);
        assert_eq!(s.execute(&Command::Get("a".into())), Reply::Bulk(b"1".to_vec()));
        assert_eq!(s.execute(&Command::Incr("a".into())), Reply::Int(2));
        assert_eq!(s.execute(&Command::DbSize), Reply::Int(1));
        assert_eq!(s.execute(&Command::Flush), Reply::Ok);
        assert_eq!(s.execute(&Command::DbSize), Reply::Int(0));
    }

    #[test]
    fn sharded_increments_survive_contention() {
        let s = std::sync::Arc::new(ShardedStore::new(8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        s.incr(&format!("ctr:{}", i % 16)).unwrap();
                        s.set(&format!("t{t}:{i}"), vec![t as u8]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: i64 = (0..16)
            .map(|i| {
                String::from_utf8(s.get(&format!("ctr:{i}")).unwrap())
                    .unwrap()
                    .parse::<i64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 8 * 500, "lost increments under contention");
        assert_eq!(s.len(), 16 + 8 * 500);
    }

    #[test]
    fn sharded_checkpoint_interchanges_with_single_store() {
        let sharded = ShardedStore::new(8);
        for i in 0..50 {
            sharded.set(&format!("key:{i}"), format!("value-{i}").into_bytes());
        }
        // Sharded checkpoint restores into a single store…
        let blob = sharded.checkpoint().unwrap();
        let mut single = Store::new();
        single.restore(&blob).unwrap();
        assert_eq!(single.len(), 50);
        assert_eq!(single.get("key:7"), Some(&b"value-7"[..]));
        // …and a single-store checkpoint restores into a sharded one.
        single.set("extra", b"e".to_vec());
        let blob2 = single.checkpoint().unwrap();
        let target = ShardedStore::new(3);
        target.set("junk", b"x".to_vec());
        target.restore(&blob2).unwrap();
        assert_eq!(target.len(), 51);
        assert!(!target.exists("junk"));
        assert_eq!(target.get("extra").as_deref(), Some(&b"e"[..]));
    }
}
