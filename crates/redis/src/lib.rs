//! # mini-redis — the Redis substrate
//!
//! The paper evaluates C-Saw by re-architecting **Redis v2.0.2**, "a
//! widely-used NoSQL database … implemented as a single-threaded server"
//! (§2), adding checkpointing, key-hash sharding, object-size sharding
//! and caching through the DSL. We cannot ship Redis, so this crate is a
//! from-scratch single-threaded in-memory KV server that exercises the
//! same code paths the experiments measure:
//!
//! * [`store::Store`] — the keyspace, with full-state serialization
//!   through `csaw-serial` (the checkpoint payload);
//! * [`command`] — a Redis-like inline command protocol
//!   (GET/SET/DEL/EXISTS/INCR/APPEND/DBSIZE/FLUSH);
//! * [`hash`] — the djb2 hash the paper uses for key sharding (§10.1);
//! * [`workload`] — a `redis-benchmark` analog: GET/SET mixes over
//!   uniform, hotspot (90/10, the caching experiment) and size-classed
//!   (object-size sharding) key distributions;
//! * [`metrics`] — windowed throughput and latency/CDF recorders that
//!   produce the series the paper's figures plot;
//! * [`apps`] — [`csaw_runtime::InstanceApp`] adapters binding the store
//!   into the `csaw-arch` architectures (server, shard front-end, cache,
//!   checkpoint store);
//! * [`direct`] — the **Redis(C) control**: the same three features
//!   implemented directly against channels/threads *without* the DSL,
//!   including its own management layer, for the Table-2 effort study.

pub mod apps;
pub mod command;
pub mod direct;
pub mod hash;
pub mod metrics;
pub mod store;
pub mod workload;

pub use command::{Command, Reply};
pub use store::{ShardedStore, Store};
pub use workload::{KeyDist, Workload, WorkloadSpec};
