//! redis-benchmark analog: workload generation.
//!
//! The paper "generated workloads by using redis-benchmark using its
//! default parameters" (§10.1) and, for caching, "a read-heavy workload …
//! 90% of requests are directed at 10% of the entries". Object-size
//! sharding uses values quantized into the 0–4KB / 4–64KB / >64KB
//! classes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::command::Command;

/// Key distribution shapes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Uniform over the keyspace (redis-benchmark default-ish).
    Uniform,
    /// A fraction `hot` of keys receives a fraction `p` of requests
    /// (the paper's 90/10 skew is `hot=0.1, p=0.9`).
    Hotspot {
        /// Fraction of the keyspace that is hot.
        hot: f64,
        /// Probability a request targets the hot set.
        p: f64,
    },
    /// Keys deliberately spread across the three object-size classes
    /// (for object-size sharding); the class is encoded in the key.
    SizeClassed,
    /// Deliberately uneven across shards: shard `i` of `n` gets weight
    /// `i+1` (the paper's "uneven workloads place different pressure on
    /// different back-ends").
    Skewed {
        /// Number of shards the skew targets.
        shards: usize,
    },
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of distinct keys.
    pub keyspace: usize,
    /// Fraction of GETs (rest are SETs).
    pub read_ratio: f64,
    /// Value size for SETs (bytes), ignored by `SizeClassed`.
    pub value_size: usize,
    /// Key distribution.
    pub dist: KeyDist,
    /// RNG seed (reproducibility).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            keyspace: 10_000,
            read_ratio: 0.5,
            value_size: 64,
            dist: KeyDist::Uniform,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// The paper's caching workload: "90% of requests are directed at
    /// 10% of the entries", read-heavy.
    pub fn hotspot_90_10() -> WorkloadSpec {
        WorkloadSpec {
            read_ratio: 0.9,
            dist: KeyDist::Hotspot { hot: 0.1, p: 0.9 },
            ..Default::default()
        }
    }
}

/// A deterministic request generator.
pub struct Workload {
    spec: WorkloadSpec,
    rng: StdRng,
}

impl Workload {
    /// Build a generator.
    pub fn new(spec: WorkloadSpec) -> Workload {
        let rng = StdRng::seed_from_u64(spec.seed);
        Workload { spec, rng }
    }

    /// Key for request index under the configured distribution.
    fn next_key(&mut self) -> String {
        match self.spec.dist {
            KeyDist::Uniform => format!("key:{}", self.rng.gen_range(0..self.spec.keyspace)),
            KeyDist::Hotspot { hot, p } => {
                let hot_keys = ((self.spec.keyspace as f64) * hot).max(1.0) as usize;
                if self.rng.gen_bool(p) {
                    format!("key:{}", self.rng.gen_range(0..hot_keys))
                } else {
                    format!(
                        "key:{}",
                        self.rng.gen_range(hot_keys..self.spec.keyspace.max(hot_keys + 1))
                    )
                }
            }
            KeyDist::SizeClassed => {
                let class = self.rng.gen_range(0..3);
                format!("sz{class}:{}", self.rng.gen_range(0..self.spec.keyspace))
            }
            KeyDist::Skewed { shards } => {
                // Weight shard i by (i+1): sample a shard, then a key that
                // djb2-hashes into it (search by probing).
                let total: usize = (1..=shards).sum();
                let mut pick = self.rng.gen_range(0..total);
                let mut shard = 0;
                for i in 0..shards {
                    if pick < i + 1 {
                        shard = i;
                        break;
                    }
                    pick -= i + 1;
                }
                // Probe for a key landing in `shard`.
                loop {
                    let k = format!("key:{}", self.rng.gen_range(0..self.spec.keyspace));
                    if crate::hash::shard_of(&k, shards) == shard {
                        return k;
                    }
                }
            }
        }
    }

    /// Value payload for a key.
    fn value_for(&mut self, key: &str) -> Vec<u8> {
        let size = if let KeyDist::SizeClassed = self.spec.dist {
            match key.as_bytes()[2] - b'0' {
                0 => 1024,    // 0–4KB class
                1 => 16_384,  // 4–64KB class
                _ => 128_000, // >64KB class
            }
        } else {
            self.spec.value_size
        };
        vec![0xAB; size]
    }

    /// Produce the next command.
    #[allow(clippy::should_implement_trait)] // generator, not an iterator (never ends)
    pub fn next(&mut self) -> Command {
        let key = self.next_key();
        if self.rng.gen_bool(self.spec.read_ratio) {
            Command::Get(key)
        } else {
            let v = self.value_for(&key);
            Command::Set(key, v)
        }
    }

    /// Produce a batch.
    pub fn batch(&mut self, n: usize) -> Vec<Command> {
        (0..n).map(|_| self.next()).collect()
    }

    /// Pre-populate commands: one SET per key (warming the store so GETs
    /// hit).
    pub fn preload(&mut self) -> Vec<Command> {
        (0..self.spec.keyspace)
            .map(|i| {
                let key = match self.spec.dist {
                    KeyDist::SizeClassed => format!("sz{}:{i}", i % 3),
                    _ => format!("key:{i}"),
                };
                let v = self.value_for(&key);
                Command::Set(key, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Workload::new(WorkloadSpec::default());
        let mut b = Workload::new(WorkloadSpec::default());
        assert_eq!(a.batch(100), b.batch(100));
    }

    #[test]
    fn read_ratio_respected() {
        let mut w = Workload::new(WorkloadSpec {
            read_ratio: 0.9,
            ..Default::default()
        });
        let reads = w.batch(2000).iter().filter(|c| !c.is_write()).count();
        assert!((1650..=1950).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn hotspot_concentrates_requests() {
        let mut w = Workload::new(WorkloadSpec::hotspot_90_10());
        let hot_keys = 1000; // 10% of 10_000
        let mut hot = 0;
        for c in w.batch(5000) {
            let k = c.key().unwrap();
            let idx: usize = k[4..].parse().unwrap();
            if idx < hot_keys {
                hot += 1;
            }
        }
        assert!(hot > 4000, "hot share too low: {hot}/5000");
    }

    #[test]
    fn size_classed_spreads_classes() {
        let mut w = Workload::new(WorkloadSpec {
            dist: KeyDist::SizeClassed,
            read_ratio: 0.0,
            ..Default::default()
        });
        let mut sizes = [0usize; 3];
        for c in w.batch(300) {
            if let Command::Set(k, v) = c {
                let class = (k.as_bytes()[2] - b'0') as usize;
                sizes[class] += 1;
                let expect = [1024, 16_384, 128_000][class];
                assert_eq!(v.len(), expect);
            }
        }
        for s in sizes {
            assert!(s > 50, "class starved: {sizes:?}");
        }
    }

    #[test]
    fn skewed_is_uneven_in_shard_ratio() {
        let mut w = Workload::new(WorkloadSpec {
            dist: KeyDist::Skewed { shards: 4 },
            read_ratio: 1.0,
            ..Default::default()
        });
        let mut counts = [0usize; 4];
        for c in w.batch(4000) {
            counts[crate::hash::shard_of(c.key().unwrap(), 4)] += 1;
        }
        // Expected ratio ~1:2:3:4.
        assert!(counts[3] > counts[0] * 2, "not skewed: {counts:?}");
        assert!(counts[2] > counts[0], "not monotone: {counts:?}");
    }

    #[test]
    fn preload_covers_keyspace() {
        let mut w = Workload::new(WorkloadSpec {
            keyspace: 50,
            ..Default::default()
        });
        let cmds = w.preload();
        assert_eq!(cmds.len(), 50);
        assert!(cmds.iter().all(|c| c.is_write()));
    }
}
