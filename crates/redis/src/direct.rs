//! The **Redis(C) control**: the paper's Table 2 compares DSL-based
//! re-architecting against the same features "developed without knowledge
//! of the DSL, as a control experiment", written directly in the host
//! language, including "its own internal management system for
//! communication and synchronization between different instances of
//! Redis, which adds 195 lines to each feature".
//!
//! This module is that control, in Rust: checkpointing, sharding and
//! caching implemented directly on threads + channels with a hand-rolled
//! management layer — no C-Saw. It is fully functional (exercised by the
//! tests below) and its per-section line counts feed the Table-2 harness
//! (`loc_mgmt`, `loc_checkpoint`, `loc_sharding`, `loc_caching`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::command::{Command, Reply};
use crate::hash::shard_of;
use crate::store::Store;

// SECTION: mgmt
// ---------------------------------------------------------------------
// Management layer: naming, framing, request/response plumbing, health
// tracking and timeouts between directly-connected instances. This is
// the fixed cost the paper attributes to every direct feature.
// ---------------------------------------------------------------------

/// A framed management message between instances.
pub enum Frame {
    /// A client command with a reply channel.
    Request(Command, Sender<Reply>),
    /// A state transfer (checkpoint payload).
    State(Vec<u8>),
    /// A state request with a reply channel.
    NeedState(Sender<Option<Vec<u8>>>),
    /// Health probe with an ack channel.
    Ping(Sender<()>),
    /// Orderly shutdown.
    Shutdown,
}

/// One registered endpoint: a named mailbox plus liveness flag.
pub struct Endpoint {
    name: String,
    tx: Sender<Frame>,
    alive: Arc<AtomicBool>,
}

impl Endpoint {
    fn send(&self, f: Frame) -> Result<(), String> {
        if !self.alive.load(Ordering::SeqCst) {
            return Err(format!("endpoint `{}` is down", self.name));
        }
        self.tx.send(f).map_err(|_| format!("endpoint `{}` closed", self.name))
    }
}

/// The instance registry: names → endpoints, with health probing.
#[derive(Default)]
pub struct Mgmt {
    endpoints: Mutex<HashMap<String, Arc<Endpoint>>>,
}

impl Mgmt {
    /// Fresh registry.
    pub fn new() -> Arc<Mgmt> {
        Arc::new(Mgmt::default())
    }

    /// Register an endpoint; returns its mailbox receiver and liveness
    /// flag (the instance thread owns both).
    pub fn register(&self, name: &str) -> (Receiver<Frame>, Arc<AtomicBool>) {
        let (tx, rx) = unbounded();
        let alive = Arc::new(AtomicBool::new(true));
        self.endpoints.lock().insert(
            name.to_string(),
            Arc::new(Endpoint { name: name.to_string(), tx, alive: Arc::clone(&alive) }),
        );
        (rx, alive)
    }

    /// Send a frame to a named endpoint.
    pub fn send(&self, to: &str, f: Frame) -> Result<(), String> {
        let ep = self
            .endpoints
            .lock()
            .get(to)
            .cloned()
            .ok_or_else(|| format!("unknown endpoint `{to}`"))?;
        ep.send(f)
    }

    /// Round-trip request with timeout.
    pub fn request(&self, to: &str, cmd: Command, timeout: Duration) -> Result<Reply, String> {
        let (rtx, rrx) = bounded(1);
        self.send(to, Frame::Request(cmd, rtx))?;
        rrx.recv_timeout(timeout)
            .map_err(|_| format!("request to `{to}` timed out"))
    }

    /// Health check: ping with timeout.
    pub fn healthy(&self, name: &str, timeout: Duration) -> bool {
        let (ptx, prx) = bounded(1);
        if self.send(name, Frame::Ping(ptx)).is_err() {
            return false;
        }
        prx.recv_timeout(timeout).is_ok()
    }

    /// Mark an endpoint dead (crash simulation).
    pub fn kill(&self, name: &str) {
        if let Some(ep) = self.endpoints.lock().get(name) {
            ep.alive.store(false, Ordering::SeqCst);
            let _ = ep.tx.send(Frame::Shutdown);
        }
    }
}

/// A server thread: owns a store, drains its mailbox.
fn spawn_server(mgmt: &Arc<Mgmt>, name: &str, store: Arc<Mutex<Store>>) -> JoinHandle<()> {
    let (rx, alive) = mgmt.register(name);
    std::thread::Builder::new()
        .name(format!("direct-{name}"))
        .spawn(move || loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Frame::Request(cmd, reply_to)) => {
                    let reply = cmd.execute(&mut store.lock());
                    let _ = reply_to.send(reply);
                }
                Ok(Frame::State(bytes)) => {
                    let _ = store.lock().restore(&bytes);
                }
                Ok(Frame::NeedState(reply_to)) => {
                    let _ = reply_to.send(store.lock().checkpoint().ok());
                }
                Ok(Frame::Ping(ack)) => {
                    let _ = ack.send(());
                }
                Ok(Frame::Shutdown) => return,
                Err(RecvTimeoutError::Timeout) => {
                    if !alive.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        })
        .expect("spawn server")
}
// ENDSECTION: mgmt

// SECTION: checkpoint
// ---------------------------------------------------------------------
// Direct checkpointing: a primary server and a checkpoint-store thread,
// with a ticker pushing state at fixed intervals and a recovery path.
// ---------------------------------------------------------------------

/// Directly-implemented checkpointing (no DSL).
pub struct DirectCheckpointed {
    mgmt: Arc<Mgmt>,
    /// The primary's store.
    pub store: Arc<Mutex<Store>>,
    latest: Arc<Mutex<Option<Vec<u8>>>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Checkpoints taken.
    pub checkpoints: Arc<AtomicU64>,
}

impl DirectCheckpointed {
    /// Start primary + store + ticker.
    pub fn start(interval: Duration) -> DirectCheckpointed {
        let mgmt = Mgmt::new();
        let store = Arc::new(Mutex::new(Store::new()));
        let primary = spawn_server(&mgmt, "primary", Arc::clone(&store));
        let latest = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let checkpoints = Arc::new(AtomicU64::new(0));
        // Checkpoint-store thread.
        let (srx, salive) = mgmt.register("ckpt-store");
        let latest2 = Arc::clone(&latest);
        let store_thread = std::thread::spawn(move || loop {
            match srx.recv_timeout(Duration::from_millis(50)) {
                Ok(Frame::State(bytes)) => *latest2.lock() = Some(bytes),
                Ok(Frame::NeedState(reply_to)) => {
                    let _ = reply_to.send(latest2.lock().clone());
                }
                Ok(Frame::Ping(ack)) => {
                    let _ = ack.send(());
                }
                Ok(Frame::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => {
                    if !salive.load(Ordering::SeqCst) {
                        return;
                    }
                }
            }
        });
        // Ticker thread.
        let mgmt2 = Arc::clone(&mgmt);
        let stop2 = Arc::clone(&stop);
        let store2 = Arc::clone(&store);
        let counts = Arc::clone(&checkpoints);
        let ticker = std::thread::spawn(move || {
            let mut next = Instant::now() + interval;
            while !stop2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
                if Instant::now() >= next {
                    next += interval;
                    if let Ok(blob) = store2.lock().checkpoint() {
                        if mgmt2.send("ckpt-store", Frame::State(blob)).is_ok() {
                            counts.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            }
        });
        DirectCheckpointed {
            mgmt,
            store,
            latest,
            stop,
            threads: vec![primary, store_thread, ticker],
            checkpoints,
        }
    }

    /// Execute a client command against the primary.
    pub fn request(&self, cmd: Command) -> Result<Reply, String> {
        self.mgmt.request("primary", cmd, Duration::from_secs(5))
    }

    /// Simulate a crash (state loss) and recover from the last
    /// checkpoint.
    pub fn crash_and_recover(&self) -> Result<(), String> {
        self.store.lock().flush();
        let blob = self
            .latest
            .lock()
            .clone()
            .ok_or("no checkpoint available")?;
        self.store.lock().restore(&blob)
    }

    /// Stop all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.mgmt.kill("primary");
        self.mgmt.kill("ckpt-store");
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
// ENDSECTION: checkpoint

// SECTION: sharding
// ---------------------------------------------------------------------
// Direct sharding: N server threads and a router that hashes keys.
// ---------------------------------------------------------------------

/// Directly-implemented key sharding (no DSL).
pub struct DirectSharded {
    mgmt: Arc<Mgmt>,
    n: usize,
    /// Per-shard stores (driver inspection).
    pub stores: Vec<Arc<Mutex<Store>>>,
    threads: Vec<JoinHandle<()>>,
    /// Per-shard request counts.
    pub routed: Vec<Arc<AtomicU64>>,
}

impl DirectSharded {
    /// Start N shard servers.
    pub fn start(n: usize) -> DirectSharded {
        let mgmt = Mgmt::new();
        let mut stores = Vec::new();
        let mut threads = Vec::new();
        let mut routed = Vec::new();
        for i in 0..n {
            let store = Arc::new(Mutex::new(Store::new()));
            threads.push(spawn_server(&mgmt, &format!("shard{i}"), Arc::clone(&store)));
            stores.push(store);
            routed.push(Arc::new(AtomicU64::new(0)));
        }
        DirectSharded { mgmt, n, stores, threads, routed }
    }

    /// Route and execute a command.
    pub fn request(&self, cmd: Command) -> Result<Reply, String> {
        let shard = cmd.key().map_or(0, |k| shard_of(k, self.n));
        self.routed[shard].fetch_add(1, Ordering::SeqCst);
        self.mgmt
            .request(&format!("shard{shard}"), cmd, Duration::from_secs(5))
    }

    /// Stop all threads.
    pub fn shutdown(mut self) {
        for i in 0..self.n {
            self.mgmt.kill(&format!("shard{i}"));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
// ENDSECTION: sharding

// SECTION: caching
// ---------------------------------------------------------------------
// Direct caching: a cache in front of a single server thread.
// ---------------------------------------------------------------------

/// Directly-implemented caching layer (no DSL).
pub struct DirectCached {
    mgmt: Arc<Mgmt>,
    cache: Mutex<HashMap<String, Reply>>,
    capacity: usize,
    threads: Vec<JoinHandle<()>>,
    /// Cache hits.
    pub hits: Arc<AtomicU64>,
    /// Cache misses.
    pub misses: Arc<AtomicU64>,
    /// The backing store.
    pub store: Arc<Mutex<Store>>,
}

impl DirectCached {
    /// Start the backing server.
    pub fn start(capacity: usize) -> DirectCached {
        let mgmt = Mgmt::new();
        let store = Arc::new(Mutex::new(Store::new()));
        let server = spawn_server(&mgmt, "backend", Arc::clone(&store));
        DirectCached {
            mgmt,
            cache: Mutex::new(HashMap::new()),
            capacity,
            threads: vec![server],
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            store,
        }
    }

    /// Execute a command through the cache.
    pub fn request(&self, cmd: Command) -> Result<Reply, String> {
        if cmd.is_write() {
            if let Some(k) = cmd.key() {
                self.cache.lock().remove(k);
            }
            return self.mgmt.request("backend", cmd, Duration::from_secs(5));
        }
        let key = match cmd.key() {
            Some(k) => k.to_string(),
            None => return self.mgmt.request("backend", cmd, Duration::from_secs(5)),
        };
        if let Some(hit) = self.cache.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::SeqCst);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::SeqCst);
        let reply = self.mgmt.request("backend", cmd, Duration::from_secs(5))?;
        let mut cache = self.cache.lock();
        if cache.len() >= self.capacity {
            if let Some(k) = cache.keys().next().cloned() {
                cache.remove(&k);
            }
        }
        cache.insert(key, reply.clone());
        Ok(reply)
    }

    /// Stop all threads.
    pub fn shutdown(mut self) {
        self.mgmt.kill("backend");
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
// ENDSECTION: caching

// ---------------------------------------------------------------------
// Table-2 LoC accounting
// ---------------------------------------------------------------------

fn section_loc(name: &str) -> usize {
    let src = include_str!("direct.rs");
    let start = format!("// SECTION: {name}");
    let end = format!("// ENDSECTION: {name}");
    let mut counting = false;
    let mut count = 0;
    for line in src.lines() {
        if line.trim() == start {
            counting = true;
            continue;
        }
        if line.trim() == end {
            break;
        }
        if counting && !line.trim().is_empty() {
            count += 1;
        }
    }
    count
}

/// LoC of the shared management layer (the paper's +195 per feature).
pub fn loc_mgmt() -> usize {
    section_loc("mgmt")
}
/// LoC of direct checkpointing (excluding mgmt).
pub fn loc_checkpoint() -> usize {
    section_loc("checkpoint")
}
/// LoC of direct sharding (excluding mgmt).
pub fn loc_sharding() -> usize {
    section_loc("sharding")
}
/// LoC of direct caching (excluding mgmt).
pub fn loc_caching() -> usize {
    section_loc("caching")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_checkpoint_recovers() {
        let sys = DirectCheckpointed::start(Duration::from_millis(20));
        sys.request(Command::Set("a".into(), b"1".to_vec())).unwrap();
        // Wait for at least one checkpoint.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sys.checkpoints.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "no checkpoint taken");
            std::thread::sleep(Duration::from_millis(5));
        }
        sys.crash_and_recover().unwrap();
        assert_eq!(
            sys.request(Command::Get("a".into())).unwrap(),
            Reply::Bulk(b"1".to_vec())
        );
        sys.shutdown();
    }

    #[test]
    fn direct_sharding_routes_consistently() {
        let sys = DirectSharded::start(4);
        for i in 0..40 {
            sys.request(Command::Set(format!("k{i}"), vec![i as u8])).unwrap();
        }
        for i in 0..40 {
            assert_eq!(
                sys.request(Command::Get(format!("k{i}"))).unwrap(),
                Reply::Bulk(vec![i as u8])
            );
        }
        // Keys live only on their shard.
        let total: usize = sys.stores.iter().map(|s| s.lock().len()).sum();
        assert_eq!(total, 40);
        assert!(sys.stores.iter().all(|s| s.lock().len() < 40));
        sys.shutdown();
    }

    #[test]
    fn direct_cache_hits_and_invalidates() {
        let sys = DirectCached::start(128);
        sys.request(Command::Set("k".into(), b"v".to_vec())).unwrap();
        assert_eq!(
            sys.request(Command::Get("k".into())).unwrap(),
            Reply::Bulk(b"v".to_vec())
        );
        assert_eq!(
            sys.request(Command::Get("k".into())).unwrap(),
            Reply::Bulk(b"v".to_vec())
        );
        assert_eq!(sys.hits.load(Ordering::SeqCst), 1);
        assert_eq!(sys.misses.load(Ordering::SeqCst), 1);
        // Writes invalidate.
        sys.request(Command::Set("k".into(), b"w".to_vec())).unwrap();
        assert_eq!(
            sys.request(Command::Get("k".into())).unwrap(),
            Reply::Bulk(b"w".to_vec())
        );
        assert_eq!(sys.misses.load(Ordering::SeqCst), 2);
        sys.shutdown();
    }

    #[test]
    fn mgmt_health_and_kill() {
        let mgmt = Mgmt::new();
        let store = Arc::new(Mutex::new(Store::new()));
        let t = spawn_server(&mgmt, "s", store);
        assert!(mgmt.healthy("s", Duration::from_secs(1)));
        mgmt.kill("s");
        assert!(!mgmt.healthy("s", Duration::from_millis(100)));
        let _ = t.join();
        assert!(mgmt
            .request("s", Command::DbSize, Duration::from_millis(100))
            .is_err());
    }

    #[test]
    fn loc_sections_nonzero() {
        assert!(loc_mgmt() > 80, "mgmt loc = {}", loc_mgmt());
        assert!(loc_checkpoint() > 50);
        assert!(loc_sharding() > 30);
        assert!(loc_caching() > 40);
    }
}
