//! Throughput and latency recorders producing the series the paper's
//! figures plot: query rate over time (Figs. 23a/23c), cumulative
//! requests per shard (Figs. 23b/26c), and latency CDFs (Figs. 25c/26b,
//! "obtained directly from redis-benchmark").

use std::time::{Duration, Instant};

/// Windowed throughput: events are bucketed into fixed windows from a
/// start instant; `series()` yields (window-start-seconds, events/sec).
#[derive(Clone, Debug)]
pub struct Throughput {
    window: Duration,
    start: Instant,
    buckets: Vec<u64>,
}

impl Throughput {
    /// Start recording with the given window size.
    pub fn start(window: Duration) -> Throughput {
        Throughput {
            window,
            start: Instant::now(),
            buckets: Vec::new(),
        }
    }

    /// Record one event now.
    pub fn hit(&mut self) {
        self.hit_at(Instant::now());
    }

    /// Record one event at a given instant.
    pub fn hit_at(&mut self, at: Instant) {
        let idx = (at.saturating_duration_since(self.start).as_nanos()
            / self.window.as_nanos().max(1)) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// (seconds-since-start, events-per-second) per window.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let w = self.window.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * w, c as f64 / w))
            .collect()
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Cumulative per-class counters over time (the sharding figures).
#[derive(Clone, Debug)]
pub struct CumulativeByClass {
    window: Duration,
    start: Instant,
    classes: usize,
    /// buckets[class][window] = count
    buckets: Vec<Vec<u64>>,
}

impl CumulativeByClass {
    /// Start recording `classes` series.
    pub fn start(classes: usize, window: Duration) -> CumulativeByClass {
        CumulativeByClass {
            window,
            start: Instant::now(),
            classes,
            buckets: vec![Vec::new(); classes],
        }
    }

    /// Record one event for `class` now.
    pub fn hit(&mut self, class: usize) {
        assert!(class < self.classes);
        let idx = (Instant::now()
            .saturating_duration_since(self.start)
            .as_nanos()
            / self.window.as_nanos().max(1)) as usize;
        let b = &mut self.buckets[class];
        if idx >= b.len() {
            b.resize(idx + 1, 0);
        }
        b[idx] += 1;
    }

    /// Cumulative series per class: (seconds, running-total).
    pub fn series(&self) -> Vec<Vec<(f64, u64)>> {
        let w = self.window.as_secs_f64();
        self.buckets
            .iter()
            .map(|b| {
                let mut total = 0;
                b.iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        total += c;
                        (i as f64 * w, total)
                    })
                    .collect()
            })
            .collect()
    }

    /// Final totals per class.
    pub fn totals(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.iter().sum()).collect()
    }
}

/// Latency recorder with percentile/CDF extraction.
#[derive(Clone, Debug, Default)]
pub struct Latencies {
    samples: Vec<Duration>,
}

impl Latencies {
    /// Empty recorder.
    pub fn new() -> Latencies {
        Latencies::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The q-quantile (0.0–1.0) of the recorded latencies.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut v = self.samples.clone();
        v.sort();
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Mean latency.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        Some(total / self.samples.len() as u32)
    }

    /// CDF points `(latency_ms, cumulative_probability)` at `n` steps —
    /// the Figs. 25c/26b series.
    pub fn cdf(&self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut v = self.samples.clone();
        v.sort();
        (0..=n)
            .map(|i| {
                let q = i as f64 / n as f64;
                let idx = ((v.len() - 1) as f64 * q).round() as usize;
                (v[idx].as_secs_f64() * 1e3, q)
            })
            .collect()
    }
}

/// Mean and standard deviation of a sample of f64s (the "repeated 20
/// times and averaged and reported with their standard deviation"
/// treatment of §10).
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / (samples.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_buckets_by_window() {
        let mut t = Throughput::start(Duration::from_millis(10));
        let t0 = t.start;
        for i in 0..30 {
            t.hit_at(t0 + Duration::from_millis(i));
        }
        let s = t.series();
        assert_eq!(s.len(), 3);
        assert_eq!(t.total(), 30);
        // 10 events per 10ms window → 1000/s.
        assert!((s[0].1 - 1000.0).abs() < 1.0);
    }

    #[test]
    fn cumulative_series_monotone() {
        let mut c = CumulativeByClass::start(2, Duration::from_millis(5));
        for _ in 0..10 {
            c.hit(0);
        }
        c.hit(1);
        let series = c.series();
        assert_eq!(series.len(), 2);
        let s0 = &series[0];
        assert!(s0.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(c.totals(), vec![10, 1]);
    }

    #[test]
    fn latency_quantiles() {
        let mut l = Latencies::new();
        for ms in 1..=100 {
            l.record(Duration::from_millis(ms));
        }
        assert_eq!(l.len(), 100);
        assert_eq!(l.quantile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(l.quantile(1.0), Some(Duration::from_millis(100)));
        let p50 = l.quantile(0.5).unwrap();
        assert!((49..=52).contains(&(p50.as_millis() as u64)));
        let mean = l.mean().unwrap();
        assert!((50..=51).contains(&(mean.as_millis() as u64)));
    }

    #[test]
    fn cdf_shape() {
        let mut l = Latencies::new();
        for ms in [1u64, 1, 1, 1, 10] {
            l.record(Duration::from_millis(ms));
        }
        let cdf = l.cdf(4);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf[0].1, 0.0);
        assert_eq!(cdf[4].1, 1.0);
        // Probabilities non-decreasing, latencies non-decreasing.
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn empty_recorders() {
        let l = Latencies::new();
        assert!(l.is_empty());
        assert_eq!(l.quantile(0.5), None);
        assert_eq!(l.mean(), None);
        assert!(l.cdf(10).is_empty());
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.138089935).abs() < 1e-6);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }
}
