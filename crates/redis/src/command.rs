//! The command protocol: a Redis-like inline syntax with binary-safe
//! encode/decode for shipping commands through junction data.

use crate::store::Store;

/// A client command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `GET key`
    Get(String),
    /// `SET key value`
    Set(String, Vec<u8>),
    /// `DEL key`
    Del(String),
    /// `EXISTS key`
    Exists(String),
    /// `INCR key`
    Incr(String),
    /// `APPEND key value`
    Append(String, Vec<u8>),
    /// `DBSIZE`
    DbSize,
    /// `FLUSH`
    Flush,
}

impl Command {
    /// The command's key, if any (sharding routes on this).
    pub fn key(&self) -> Option<&str> {
        match self {
            Command::Get(k)
            | Command::Set(k, _)
            | Command::Del(k)
            | Command::Exists(k)
            | Command::Incr(k)
            | Command::Append(k, _) => Some(k),
            Command::DbSize | Command::Flush => None,
        }
    }

    /// Whether the command mutates the store (cacheability check).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Command::Set(..) | Command::Del(_) | Command::Incr(_) | Command::Append(..) | Command::Flush
        )
    }

    /// Execute against a store.
    pub fn execute(&self, store: &mut Store) -> Reply {
        match self {
            Command::Get(k) => match store.get(k) {
                Some(v) => Reply::Bulk(v.to_vec()),
                None => Reply::Nil,
            },
            Command::Set(k, v) => {
                store.set(k, v.clone());
                Reply::Ok
            }
            Command::Del(k) => Reply::Int(i64::from(store.del(k))),
            Command::Exists(k) => Reply::Int(i64::from(store.exists(k))),
            Command::Incr(k) => match store.incr(k) {
                Ok(v) => Reply::Int(v),
                Err(e) => Reply::Error(e),
            },
            Command::Append(k, v) => Reply::Int(store.append(k, v) as i64),
            Command::DbSize => Reply::Int(store.len() as i64),
            Command::Flush => {
                store.flush();
                Reply::Ok
            }
        }
    }

    /// Binary-safe encoding: `verb\nkey-len\nkey\nval-len\nval`.
    pub fn encode(&self) -> Vec<u8> {
        fn frame(verb: &str, key: &str, val: &[u8]) -> Vec<u8> {
            let mut out = Vec::with_capacity(verb.len() + key.len() + val.len() + 16);
            out.extend_from_slice(verb.as_bytes());
            out.push(b'\n');
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
            out.extend_from_slice(&(val.len() as u32).to_le_bytes());
            out.extend_from_slice(val);
            out
        }
        match self {
            Command::Get(k) => frame("GET", k, b""),
            Command::Set(k, v) => frame("SET", k, v),
            Command::Del(k) => frame("DEL", k, b""),
            Command::Exists(k) => frame("EXISTS", k, b""),
            Command::Incr(k) => frame("INCR", k, b""),
            Command::Append(k, v) => frame("APPEND", k, v),
            Command::DbSize => frame("DBSIZE", "", b""),
            Command::Flush => frame("FLUSH", "", b""),
        }
    }

    /// Decode from [`Command::encode`]'s format.
    pub fn decode(bytes: &[u8]) -> Result<Command, String> {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("missing verb terminator")?;
        let verb = std::str::from_utf8(&bytes[..nl]).map_err(|_| "bad verb")?;
        let rest = &bytes[nl + 1..];
        if rest.len() < 4 {
            return Err("truncated key length".into());
        }
        let klen = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + klen + 4 {
            return Err("truncated key/value".into());
        }
        let key = std::str::from_utf8(&rest[4..4 + klen])
            .map_err(|_| "bad key")?
            .to_string();
        let vstart = 4 + klen;
        let vlen = u32::from_le_bytes(rest[vstart..vstart + 4].try_into().unwrap()) as usize;
        if rest.len() < vstart + 4 + vlen {
            return Err("truncated value".into());
        }
        let val = rest[vstart + 4..vstart + 4 + vlen].to_vec();
        Ok(match verb {
            "GET" => Command::Get(key),
            "SET" => Command::Set(key, val),
            "DEL" => Command::Del(key),
            "EXISTS" => Command::Exists(key),
            "INCR" => Command::Incr(key),
            "APPEND" => Command::Append(key, val),
            "DBSIZE" => Command::DbSize,
            "FLUSH" => Command::Flush,
            other => return Err(format!("unknown verb `{other}`")),
        })
    }
}

/// A server reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `+OK`
    Ok,
    /// Integer reply.
    Int(i64),
    /// Bulk (binary) reply.
    Bulk(Vec<u8>),
    /// Key absent.
    Nil,
    /// Error reply.
    Error(String),
}

impl Reply {
    /// Binary-safe encoding (1 tag byte + payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Reply::Ok => vec![b'+'],
            Reply::Int(i) => {
                let mut out = vec![b':'];
                out.extend_from_slice(&i.to_le_bytes());
                out
            }
            Reply::Bulk(v) => {
                let mut out = vec![b'$'];
                out.extend_from_slice(v);
                out
            }
            Reply::Nil => vec![b'-'],
            Reply::Error(e) => {
                let mut out = vec![b'!'];
                out.extend_from_slice(e.as_bytes());
                out
            }
        }
    }

    /// Decode from [`Reply::encode`]'s format.
    pub fn decode(bytes: &[u8]) -> Result<Reply, String> {
        let (&tag, payload) = bytes.split_first().ok_or("empty reply")?;
        Ok(match tag {
            b'+' => Reply::Ok,
            b':' => Reply::Int(i64::from_le_bytes(
                payload.try_into().map_err(|_| "bad int")?,
            )),
            b'$' => Reply::Bulk(payload.to_vec()),
            b'-' => Reply::Nil,
            b'!' => Reply::Error(String::from_utf8_lossy(payload).into_owned()),
            t => return Err(format!("unknown reply tag {t}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_against_store() {
        let mut s = Store::new();
        assert_eq!(Command::Set("a".into(), b"1".to_vec()).execute(&mut s), Reply::Ok);
        assert_eq!(Command::Get("a".into()).execute(&mut s), Reply::Bulk(b"1".to_vec()));
        assert_eq!(Command::Get("zz".into()).execute(&mut s), Reply::Nil);
        assert_eq!(Command::Exists("a".into()).execute(&mut s), Reply::Int(1));
        assert_eq!(Command::Incr("a".into()).execute(&mut s), Reply::Int(2));
        assert_eq!(Command::DbSize.execute(&mut s), Reply::Int(1));
        assert_eq!(Command::Del("a".into()).execute(&mut s), Reply::Int(1));
        assert_eq!(Command::Flush.execute(&mut s), Reply::Ok);
    }

    #[test]
    fn command_round_trips() {
        let cases = vec![
            Command::Get("user:1".into()),
            Command::Set("k".into(), vec![0, 1, 2, 255]),
            Command::Del("d".into()),
            Command::Exists("e".into()),
            Command::Incr("i".into()),
            Command::Append("a".into(), b"tail".to_vec()),
            Command::DbSize,
            Command::Flush,
        ];
        for c in cases {
            assert_eq!(Command::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn reply_round_trips() {
        let cases = vec![
            Reply::Ok,
            Reply::Int(-7),
            Reply::Bulk(vec![9; 100]),
            Reply::Nil,
            Reply::Error("oops".into()),
        ];
        for r in cases {
            assert_eq!(Reply::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Command::decode(b"").is_err());
        assert!(Command::decode(b"NOPE\n").is_err());
        assert!(Reply::decode(b"").is_err());
        assert!(Reply::decode(b"?").is_err());
    }

    #[test]
    fn keys_and_writes() {
        assert_eq!(Command::Get("k".into()).key(), Some("k"));
        assert_eq!(Command::DbSize.key(), None);
        assert!(Command::Set("k".into(), vec![]).is_write());
        assert!(!Command::Get("k".into()).is_write());
    }
}
