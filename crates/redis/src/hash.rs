//! Hash functions for sharding: the paper hashes keys "using the djb2
//! hashing algorithm" (§10.1, citing Yigit's collection).

/// The classic djb2 string hash.
pub fn djb2(key: &str) -> u64 {
    let mut h: u64 = 5381;
    for b in key.bytes() {
        h = h.wrapping_mul(33).wrapping_add(b as u64);
    }
    h
}

/// Shard index for a key: `djb2(key) mod n`.
pub fn shard_of(key: &str, n: usize) -> usize {
    (djb2(key) % n as u64) as usize
}

/// Quantize an object size into the paper's classes: "0-4KB, 4KB-64KB,
/// and >64KB" (§5.2). Returns 0, 1 or 2.
pub fn size_class(bytes: usize) -> usize {
    if bytes <= 4 * 1024 {
        0
    } else if bytes <= 64 * 1024 {
        1
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn djb2_reference_values() {
        // djb2("") = 5381; djb2("a") = 5381*33 + 97.
        assert_eq!(djb2(""), 5381);
        assert_eq!(djb2("a"), 5381 * 33 + 97);
        assert_ne!(djb2("foo"), djb2("bar"));
    }

    #[test]
    fn shard_of_is_stable_and_bounded() {
        for key in ["a", "user:1", "x:999", ""] {
            let s = shard_of(key, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(key, 4));
        }
    }

    #[test]
    fn shards_spread_reasonably() {
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[shard_of(&format!("key:{i}"), 4)] += 1;
        }
        for c in counts {
            assert!(c > 500, "degenerate distribution: {counts:?}");
        }
    }

    #[test]
    fn size_classes_match_paper_boundaries() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(4096), 0);
        assert_eq!(size_class(4097), 1);
        assert_eq!(size_class(65536), 1);
        assert_eq!(size_class(65537), 2);
        assert_eq!(size_class(10 << 20), 2);
    }
}
