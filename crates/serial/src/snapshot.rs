//! Schema-driven snapshot codec for junction table state (§9 applied to
//! live reconfiguration).
//!
//! The reconfiguration executor moves a quiesced junction's table from
//! architecture A to architecture B by exporting it
//! (`csaw_kv::TableState`), carrying it across the cut as *bytes*, and
//! importing on the other side. Using the §9 type-aware serializer for
//! that hop — rather than cloning in memory — keeps the migration path
//! identical whether the destination cell lives in this process or
//! behind a TCP link, and it exercises the same depth-capped traversal
//! the paper built for `save`/`restore`.
//!
//! Everything is expressed in the C-like data model of [`crate::schema`]:
//! maps become sorted linked lists, enums become tagged structs. The
//! schema is registered once per codec call into a private [`Registry`].

use csaw_core::names::SetElem;
use csaw_core::value::Value;
use csaw_kv::table::{PendingState, TableState};
use csaw_kv::{Update, UpdateKind};

use bytes::{Bytes, BytesMut};

use crate::codec::{decode, encode_into, CodecConfig, CodecError};
use crate::heap::HeapValue;
use crate::schema::{Prim, Registry, TypeDesc};

const MAX_STR: usize = 1 << 16;
const MAX_BLOB: usize = 32 << 20;

/// Codec limits suited to table snapshots: the pending queue and the
/// entry maps are linked lists, so pointer depth is proportional to
/// their *length*, not to any nesting — the default 64-hop cap would
/// silently truncate a moderately busy table.
pub fn snapshot_config() -> CodecConfig {
    CodecConfig {
        max_depth: 1 << 20,
        max_bytes: 64 << 20,
    }
}

/// Register the table-state schema into `reg` and return the root type.
pub fn table_state_schema(reg: &mut Registry) -> TypeDesc {
    let cs = || TypeDesc::CString { max_len: MAX_STR };
    // Set elements: tagged by kind.
    reg.register(
        "cs_selem",
        TypeDesc::strct(
            "cs_selem",
            vec![
                ("tag", TypeDesc::Prim(Prim::U8)),
                ("a", cs()),
                ("b", cs()),
                ("i", TypeDesc::Prim(Prim::I64)),
            ],
        ),
    );
    reg.register_list_node("cs_selem_list", TypeDesc::Named("cs_selem".into()));
    let selems = || TypeDesc::ptr(TypeDesc::Named("cs_selem_list".into()));
    // DSL values: tagged union.
    reg.register(
        "cs_value",
        TypeDesc::strct(
            "cs_value",
            vec![
                ("tag", TypeDesc::Prim(Prim::U8)),
                ("i", TypeDesc::Prim(Prim::I64)),
                ("s", cs()),
                ("bytes", TypeDesc::Blob { max_len: MAX_BLOB }),
                ("set", selems()),
            ],
        ),
    );
    reg.register(
        "cs_prop",
        TypeDesc::strct(
            "cs_prop",
            vec![("key", cs()), ("val", TypeDesc::Prim(Prim::Bool))],
        ),
    );
    reg.register_list_node("cs_prop_list", TypeDesc::Named("cs_prop".into()));
    reg.register(
        "cs_datum",
        TypeDesc::strct(
            "cs_datum",
            vec![("key", cs()), ("val", TypeDesc::Named("cs_value".into()))],
        ),
    );
    reg.register_list_node("cs_datum_list", TypeDesc::Named("cs_datum".into()));
    reg.register(
        "cs_subset",
        TypeDesc::strct(
            "cs_subset",
            vec![
                ("name", cs()),
                ("base", selems()),
                ("defined", TypeDesc::Prim(Prim::Bool)),
                ("val", selems()),
            ],
        ),
    );
    reg.register_list_node("cs_subset_list", TypeDesc::Named("cs_subset".into()));
    reg.register(
        "cs_idx",
        TypeDesc::strct(
            "cs_idx",
            vec![
                ("name", cs()),
                ("base", selems()),
                ("defined", TypeDesc::Prim(Prim::Bool)),
                ("val", cs()),
            ],
        ),
    );
    reg.register_list_node("cs_idx_list", TypeDesc::Named("cs_idx".into()));
    reg.register(
        "cs_update",
        TypeDesc::strct(
            "cs_update",
            vec![
                ("key", cs()),
                ("kind", TypeDesc::Prim(Prim::U8)),
                ("val", TypeDesc::Named("cs_value".into())),
                ("from", cs()),
                ("seq", TypeDesc::Prim(Prim::U64)),
            ],
        ),
    );
    reg.register(
        "cs_pending",
        TypeDesc::strct(
            "cs_pending",
            vec![
                ("update", TypeDesc::Named("cs_update".into())),
                ("during_run", TypeDesc::Prim(Prim::Bool)),
                ("seq", TypeDesc::Prim(Prim::U64)),
            ],
        ),
    );
    reg.register_list_node("cs_pending_list", TypeDesc::Named("cs_pending".into()));
    reg.register(
        "cs_lw",
        TypeDesc::strct(
            "cs_lw",
            vec![
                ("key", cs()),
                ("epoch", TypeDesc::Prim(Prim::U64)),
                ("op", TypeDesc::Prim(Prim::U64)),
            ],
        ),
    );
    reg.register_list_node("cs_lw_list", TypeDesc::Named("cs_lw".into()));
    let root = TypeDesc::strct(
        "cs_table_state",
        vec![
            ("props", TypeDesc::ptr(TypeDesc::Named("cs_prop_list".into()))),
            ("data", TypeDesc::ptr(TypeDesc::Named("cs_datum_list".into()))),
            ("subsets", TypeDesc::ptr(TypeDesc::Named("cs_subset_list".into()))),
            ("idxs", TypeDesc::ptr(TypeDesc::Named("cs_idx_list".into()))),
            ("pending", TypeDesc::ptr(TypeDesc::Named("cs_pending_list".into()))),
            ("epoch", TypeDesc::Prim(Prim::U64)),
            ("locally_written", TypeDesc::ptr(TypeDesc::Named("cs_lw_list".into()))),
            ("op_seq", TypeDesc::Prim(Prim::U64)),
            ("next_window", TypeDesc::Prim(Prim::U64)),
        ],
    );
    reg.register("cs_table_state", root.clone());
    root
}

// ---------------------------------------------------------------------
// Lowering: TableState → HeapValue
// ---------------------------------------------------------------------

fn lower_selem(e: &SetElem) -> HeapValue {
    let (tag, a, b, i) = match e {
        SetElem::Instance(n) => (0u8, n.clone(), String::new(), 0i64),
        SetElem::Junction(inst, j) => (1, inst.clone(), j.clone(), 0),
        SetElem::Str(s) => (2, s.clone(), String::new(), 0),
        SetElem::Int(i) => (3, String::new(), String::new(), *i),
    };
    HeapValue::Struct(vec![
        HeapValue::UInt(tag as u64),
        HeapValue::CString(a),
        HeapValue::CString(b),
        HeapValue::Int(i),
    ])
}

fn lower_selems(elems: &[SetElem]) -> HeapValue {
    HeapValue::list_from(elems.iter().map(lower_selem))
}

fn lower_value(v: &Value) -> HeapValue {
    let undef = (0u8, 0i64, String::new(), Vec::new(), HeapValue::null());
    let (tag, i, s, bytes, set) = match v {
        Value::Undef => undef,
        Value::Bool(b) => (1, *b as i64, String::new(), Vec::new(), HeapValue::null()),
        Value::Int(n) => (2, *n, String::new(), Vec::new(), HeapValue::null()),
        Value::Str(x) => (3, 0, x.clone(), Vec::new(), HeapValue::null()),
        Value::Bytes(b) => (4, 0, String::new(), b.clone(), HeapValue::null()),
        Value::Duration(d) => (5, d.as_micros() as i64, String::new(), Vec::new(), HeapValue::null()),
        Value::Target(t) => (6, 0, t.clone(), Vec::new(), HeapValue::null()),
        Value::Set(es) => (7, 0, String::new(), Vec::new(), lower_selems(es)),
    };
    HeapValue::Struct(vec![
        HeapValue::UInt(tag as u64),
        HeapValue::Int(i),
        HeapValue::CString(s),
        HeapValue::Blob(bytes),
        set,
    ])
}

fn lower_update(u: &Update) -> HeapValue {
    let (kind, val) = match &u.kind {
        UpdateKind::Assert => (0u8, lower_value(&Value::Undef)),
        UpdateKind::Retract => (1, lower_value(&Value::Undef)),
        UpdateKind::Data(v) => (2, lower_value(v)),
    };
    HeapValue::Struct(vec![
        HeapValue::CString(u.key.clone()),
        HeapValue::UInt(kind as u64),
        val,
        HeapValue::CString(u.from.clone()),
        HeapValue::UInt(u.seq),
    ])
}

fn lower(state: &TableState) -> HeapValue {
    HeapValue::Struct(vec![
        HeapValue::list_from(state.props.iter().map(|(k, v)| {
            HeapValue::Struct(vec![HeapValue::CString(k.clone()), HeapValue::Bool(*v)])
        })),
        HeapValue::list_from(state.data.iter().map(|(k, v)| {
            HeapValue::Struct(vec![HeapValue::CString(k.clone()), lower_value(v)])
        })),
        HeapValue::list_from(state.subsets.iter().map(|(name, base, val)| {
            HeapValue::Struct(vec![
                HeapValue::CString(name.clone()),
                lower_selems(base),
                HeapValue::Bool(val.is_some()),
                lower_selems(val.as_deref().unwrap_or(&[])),
            ])
        })),
        HeapValue::list_from(state.idxs.iter().map(|(name, base, val)| {
            HeapValue::Struct(vec![
                HeapValue::CString(name.clone()),
                lower_selems(base),
                HeapValue::Bool(val.is_some()),
                HeapValue::CString(val.clone().unwrap_or_default()),
            ])
        })),
        HeapValue::list_from(state.pending.iter().map(|p| {
            HeapValue::Struct(vec![
                lower_update(&p.update),
                HeapValue::Bool(p.during_run),
                HeapValue::UInt(p.seq),
            ])
        })),
        HeapValue::UInt(state.epoch),
        HeapValue::list_from(state.locally_written.iter().map(|(k, e, s)| {
            HeapValue::Struct(vec![
                HeapValue::CString(k.clone()),
                HeapValue::UInt(*e),
                HeapValue::UInt(*s),
            ])
        })),
        HeapValue::UInt(state.op_seq),
        HeapValue::UInt(state.next_window),
    ])
}

// ---------------------------------------------------------------------
// Raising: HeapValue → TableState
// ---------------------------------------------------------------------

fn corrupt(what: &str) -> CodecError {
    CodecError::Corrupt(format!("table snapshot: unexpected shape at {what}"))
}

fn as_struct<'a>(v: &'a HeapValue, what: &str) -> Result<&'a [HeapValue], CodecError> {
    match v {
        HeapValue::Struct(fields) => Ok(fields),
        _ => Err(corrupt(what)),
    }
}

fn as_str(v: &HeapValue, what: &str) -> Result<String, CodecError> {
    match v {
        HeapValue::CString(s) => Ok(s.clone()),
        _ => Err(corrupt(what)),
    }
}

fn as_u64(v: &HeapValue, what: &str) -> Result<u64, CodecError> {
    match v {
        HeapValue::UInt(n) => Ok(*n),
        HeapValue::Int(n) => Ok(*n as u64),
        _ => Err(corrupt(what)),
    }
}

fn as_i64(v: &HeapValue, what: &str) -> Result<i64, CodecError> {
    match v {
        HeapValue::Int(n) => Ok(*n),
        HeapValue::UInt(n) => Ok(*n as i64),
        _ => Err(corrupt(what)),
    }
}

fn as_bool(v: &HeapValue, what: &str) -> Result<bool, CodecError> {
    match v {
        HeapValue::Bool(b) => Ok(*b),
        _ => Err(corrupt(what)),
    }
}

fn as_blob(v: &HeapValue, what: &str) -> Result<Vec<u8>, CodecError> {
    match v {
        HeapValue::Blob(b) => Ok(b.clone()),
        _ => Err(corrupt(what)),
    }
}

fn raise_selem(v: &HeapValue) -> Result<SetElem, CodecError> {
    let f = as_struct(v, "selem")?;
    let tag = as_u64(&f[0], "selem.tag")?;
    Ok(match tag {
        0 => SetElem::Instance(as_str(&f[1], "selem.a")?),
        1 => SetElem::Junction(as_str(&f[1], "selem.a")?, as_str(&f[2], "selem.b")?),
        2 => SetElem::Str(as_str(&f[1], "selem.a")?),
        3 => SetElem::Int(as_i64(&f[3], "selem.i")?),
        _ => return Err(corrupt("selem.tag")),
    })
}

fn raise_selems(v: &HeapValue) -> Result<Vec<SetElem>, CodecError> {
    v.list_values().iter().map(|e| raise_selem(e)).collect()
}

fn raise_value(v: &HeapValue) -> Result<Value, CodecError> {
    let f = as_struct(v, "value")?;
    Ok(match as_u64(&f[0], "value.tag")? {
        0 => Value::Undef,
        1 => Value::Bool(as_i64(&f[1], "value.i")? != 0),
        2 => Value::Int(as_i64(&f[1], "value.i")?),
        3 => Value::Str(as_str(&f[2], "value.s")?),
        4 => Value::Bytes(as_blob(&f[3], "value.bytes")?),
        5 => Value::Duration(std::time::Duration::from_micros(
            as_i64(&f[1], "value.i")? as u64,
        )),
        6 => Value::Target(as_str(&f[2], "value.s")?),
        7 => Value::Set(raise_selems(&f[4])?),
        _ => return Err(corrupt("value.tag")),
    })
}

fn raise_update(v: &HeapValue) -> Result<Update, CodecError> {
    let f = as_struct(v, "update")?;
    let kind = match as_u64(&f[1], "update.kind")? {
        0 => UpdateKind::Assert,
        1 => UpdateKind::Retract,
        2 => UpdateKind::Data(raise_value(&f[2])?),
        _ => return Err(corrupt("update.kind")),
    };
    Ok(Update {
        key: as_str(&f[0], "update.key")?,
        kind,
        from: as_str(&f[3], "update.from")?,
        seq: as_u64(&f[4], "update.seq")?,
    })
}

fn raise(v: &HeapValue) -> Result<TableState, CodecError> {
    let f = as_struct(v, "table_state")?;
    let mut props = Vec::new();
    for p in f[0].list_values() {
        let pf = as_struct(p, "prop")?;
        props.push((as_str(&pf[0], "prop.key")?, as_bool(&pf[1], "prop.val")?));
    }
    let mut data = Vec::new();
    for d in f[1].list_values() {
        let df = as_struct(d, "datum")?;
        data.push((as_str(&df[0], "datum.key")?, raise_value(&df[1])?));
    }
    let mut subsets = Vec::new();
    for s in f[2].list_values() {
        let sf = as_struct(s, "subset")?;
        let defined = as_bool(&sf[2], "subset.defined")?;
        subsets.push((
            as_str(&sf[0], "subset.name")?,
            raise_selems(&sf[1])?,
            defined.then(|| raise_selems(&sf[3])).transpose()?,
        ));
    }
    let mut idxs = Vec::new();
    for s in f[3].list_values() {
        let sf = as_struct(s, "idx")?;
        let defined = as_bool(&sf[2], "idx.defined")?;
        idxs.push((
            as_str(&sf[0], "idx.name")?,
            raise_selems(&sf[1])?,
            defined.then(|| as_str(&sf[3], "idx.val")).transpose()?,
        ));
    }
    let mut pending = Vec::new();
    for p in f[4].list_values() {
        let pf = as_struct(p, "pending")?;
        pending.push(PendingState {
            update: raise_update(&pf[0])?,
            during_run: as_bool(&pf[1], "pending.during_run")?,
            seq: as_u64(&pf[2], "pending.seq")?,
        });
    }
    let mut locally_written = Vec::new();
    for l in f[6].list_values() {
        let lf = as_struct(l, "lw")?;
        locally_written.push((
            as_str(&lf[0], "lw.key")?,
            as_u64(&lf[1], "lw.epoch")?,
            as_u64(&lf[2], "lw.op")?,
        ));
    }
    Ok(TableState {
        props,
        data,
        subsets,
        idxs,
        pending,
        epoch: as_u64(&f[5], "epoch")?,
        locally_written,
        op_seq: as_u64(&f[7], "op_seq")?,
        next_window: as_u64(&f[8], "next_window")?,
    })
}

/// The snapshot schema, built once per process. The schema is static —
/// rebuilding the whole registry (a dozen named types) on every encode
/// *and* decode call was pure hot-path waste on the migration path.
fn schema() -> &'static (Registry, TypeDesc) {
    static SCHEMA: std::sync::OnceLock<(Registry, TypeDesc)> = std::sync::OnceLock::new();
    SCHEMA.get_or_init(|| {
        let mut reg = Registry::new();
        let root = table_state_schema(&mut reg);
        (reg, root)
    })
}

/// Encode an exported table state through the §9 codec.
pub fn encode_table_state(state: &TableState) -> Result<Vec<u8>, CodecError> {
    Ok(encode_table_state_bytes(state)?.into())
}

/// Encode an exported table state into a frozen [`Bytes`] buffer: the
/// zero-copy variant for migration fan-out — one encode, N cheap
/// clones, no per-target buffer copies.
pub fn encode_table_state_bytes(state: &TableState) -> Result<Bytes, CodecError> {
    let (reg, root) = schema();
    let mut out = BytesMut::new();
    encode_into(&lower(state), root, reg, &snapshot_config(), &mut out)?;
    Ok(out.freeze())
}

/// Decode bytes produced by [`encode_table_state`].
pub fn decode_table_state(bytes: &[u8]) -> Result<TableState, CodecError> {
    let (reg, root) = schema();
    let hv = decode(bytes, root, reg, &snapshot_config())?;
    raise(&hv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_kv::Table;

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new();
        let state = t.export_state();
        let bytes = encode_table_state(&state).unwrap();
        assert_eq!(decode_table_state(&bytes).unwrap(), state);
    }

    #[test]
    fn populated_table_round_trips() {
        let mut t = Table::new();
        t.declare_prop("Work", false);
        t.declare_data("n");
        t.declare_data("blob");
        t.declare_subset("grp", vec![SetElem::Instance("b1".into())]);
        t.declare_idx(
            "tgt",
            vec![SetElem::Instance("b1".into()), SetElem::Instance("b2".into())],
        );
        t.set_idx("tgt", "b2").unwrap();
        t.begin_activation();
        t.set_prop_local("Work", true).unwrap();
        t.set_data_local("n", Value::Int(-42)).unwrap();
        t.set_data_local("blob", Value::Bytes(vec![0, 1, 2, 255])).unwrap();
        t.deliver(Update::data("n", Value::Str("queued".into()), "peer::j"));
        t.deliver(Update::assert("Work", "peer::j"));
        t.end_activation();

        let state = t.export_state();
        let bytes = encode_table_state(&state).unwrap();
        let back = decode_table_state(&bytes).unwrap();
        assert_eq!(back, state);

        // And the decoded state drives a table identically.
        let mut u = Table::new();
        u.import_state(back);
        u.begin_activation();
        u.end_activation();
        let mut v = Table::new();
        v.import_state(state);
        v.begin_activation();
        v.end_activation();
        assert_eq!(u.export_state(), v.export_state());
    }

    #[test]
    fn all_value_variants_round_trip() {
        let mut t = Table::new();
        for (i, v) in [
            Value::Undef,
            Value::Bool(true),
            Value::Int(i64::MIN + 1),
            Value::Str("héllo".into()),
            Value::Bytes(vec![9; 100]),
            Value::Duration(std::time::Duration::from_millis(1500)),
            Value::Target("b1::serve".into()),
            Value::Set(vec![
                SetElem::Instance("b1".into()),
                SetElem::Junction("b2".into(), "serve".into()),
                SetElem::Str("s".into()),
                SetElem::Int(-7),
            ]),
        ]
        .into_iter()
        .enumerate()
        {
            let key = format!("d{i}");
            t.declare_data(&key);
            if !v.is_undef() {
                t.set_data_local(&key, v).unwrap();
            }
        }
        let state = t.export_state();
        let bytes = encode_table_state(&state).unwrap();
        assert_eq!(decode_table_state(&bytes).unwrap(), state);
    }
}
