//! Depth-limited, schema-driven encode/decode.
//!
//! The wire format is schema-directed (no per-value tags except pointer
//! presence bytes and length prefixes), little-endian throughout:
//!
//! * primitives — fixed width per [`Prim::width`];
//! * structs/arrays — fields/elements in order;
//! * pointers — 1 presence byte (0 = null, 1 = followed by pointee);
//! * C strings / blobs — `u32` length prefix + bytes (truncated at the
//!   schema's `max_len`);
//!
//! Recursion through pointers stops at [`CodecConfig::max_depth`]: deeper
//! structure encodes as null, exactly the paper's "linked lists are only
//! serialized up to a maximum length" truncation. Output larger than
//! [`CodecConfig::max_bytes`] is an error (buffer-overflow protection).

use bytes::{Buf, BufMut, BytesMut};

use crate::heap::HeapValue;
use crate::schema::{Prim, Registry, TypeDesc};

/// Run codec work on a dedicated large-stack thread.
///
/// The schema-directed encoder/decoder recurses once per pointer hop, so
/// serializing a C-like linked list of N nodes needs O(N) stack — exactly
/// the shape the paper's depth cap protects the *buffer* against, but the
/// traversal itself needs stack too. Checkpointing a whole store (tens of
/// thousands of list nodes) must run under this helper; the default 2 MiB
/// thread stack overflows around ~10k nodes.
pub fn with_big_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .name("csaw-serial-bigstack".into())
            .stack_size(512 << 20)
            .spawn_scoped(s, f)
            .expect("spawn big-stack codec thread")
            .join()
            .expect("codec thread panicked")
    })
}

/// Codec limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecConfig {
    /// Maximum pointer-recursion depth; deeper data truncates to null.
    pub max_depth: usize,
    /// Maximum encoded size in bytes.
    pub max_bytes: usize,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            max_depth: 64,
            max_bytes: 16 << 20,
        }
    }
}

/// Errors raised by the codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Value does not conform to the schema.
    Shape(String),
    /// Unknown named type.
    UnknownType(String),
    /// Encoded output exceeded `max_bytes`.
    BufferOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// Input ended prematurely or had trailing garbage.
    Truncated,
    /// Invalid encoding (bad presence byte, non-UTF-8 string…).
    Corrupt(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Shape(s) => write!(f, "value does not match schema: {s}"),
            CodecError::UnknownType(t) => write!(f, "unknown named type `{t}`"),
            CodecError::BufferOverflow { limit } => {
                write!(f, "encoded size exceeds limit of {limit} bytes")
            }
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::Corrupt(s) => write!(f, "corrupt encoding: {s}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a value against a schema. The buffer's backing storage moves
/// into the returned `Vec` — no terminal copy.
pub fn encode(
    value: &HeapValue,
    ty: &TypeDesc,
    reg: &Registry,
    cfg: &CodecConfig,
) -> Result<Vec<u8>, CodecError> {
    let mut out = BytesMut::new();
    encode_into(value, ty, reg, cfg, &mut out)?;
    Ok(out.into())
}

/// Encode a value against a schema, appending to a caller-owned buffer
/// — the zero-copy entry point: hot paths reuse one buffer across
/// frames (or [`bytes::BytesMut::freeze`] the result to fan it out).
pub fn encode_into(
    value: &HeapValue,
    ty: &TypeDesc,
    reg: &Registry,
    cfg: &CodecConfig,
    out: &mut BytesMut,
) -> Result<(), CodecError> {
    encode_inner(value, ty, reg, cfg, 0, out)?;
    if out.len() > cfg.max_bytes {
        return Err(CodecError::BufferOverflow { limit: cfg.max_bytes });
    }
    Ok(())
}

fn check_len(out: &BytesMut, cfg: &CodecConfig) -> Result<(), CodecError> {
    if out.len() > cfg.max_bytes {
        Err(CodecError::BufferOverflow { limit: cfg.max_bytes })
    } else {
        Ok(())
    }
}

fn encode_inner(
    value: &HeapValue,
    ty: &TypeDesc,
    reg: &Registry,
    cfg: &CodecConfig,
    depth: usize,
    out: &mut BytesMut,
) -> Result<(), CodecError> {
    match (value, ty) {
        (v, TypeDesc::Prim(p)) => encode_prim(v, *p, out),
        (HeapValue::Struct(vals), TypeDesc::Struct { fields, name }) => {
            if vals.len() != fields.len() {
                return Err(CodecError::Shape(format!(
                    "struct {name}: {} values for {} fields",
                    vals.len(),
                    fields.len()
                )));
            }
            for (v, (_, t)) in vals.iter().zip(fields.iter()) {
                encode_inner(v, t, reg, cfg, depth, out)?;
            }
            check_len(out, cfg)
        }
        (HeapValue::Array(vals), TypeDesc::Array { elem, len }) => {
            if vals.len() != *len {
                return Err(CodecError::Shape(format!(
                    "array: {} values for length {len}",
                    vals.len()
                )));
            }
            for v in vals {
                encode_inner(v, elem, reg, cfg, depth, out)?;
            }
            check_len(out, cfg)
        }
        (HeapValue::Ptr(opt), TypeDesc::Ptr(inner)) => {
            match opt {
                // Depth cap: deeper structure truncates to null.
                Some(v) if depth < cfg.max_depth => {
                    out.put_u8(1);
                    encode_inner(v, inner, reg, cfg, depth + 1, out)?;
                }
                _ => out.put_u8(0),
            }
            check_len(out, cfg)
        }
        (HeapValue::CString(s), TypeDesc::CString { max_len }) => {
            let bytes = s.as_bytes();
            let take = bytes.len().min(*max_len);
            out.put_u32_le(take as u32);
            out.put_slice(&bytes[..take]);
            check_len(out, cfg)
        }
        (HeapValue::Blob(b), TypeDesc::Blob { max_len }) => {
            let take = b.len().min(*max_len);
            out.put_u32_le(take as u32);
            out.put_slice(&b[..take]);
            check_len(out, cfg)
        }
        (v, TypeDesc::Named(n)) => {
            let t = reg
                .get(n)
                .ok_or_else(|| CodecError::UnknownType(n.clone()))?;
            encode_inner(v, t, reg, cfg, depth, out)
        }
        (v, t) => Err(CodecError::Shape(format!("{v:?} vs {t}"))),
    }
}

fn encode_prim(v: &HeapValue, p: Prim, out: &mut BytesMut) -> Result<(), CodecError> {
    match (v, p) {
        (HeapValue::Int(i), Prim::I8) => out.put_i8(*i as i8),
        (HeapValue::Int(i), Prim::I16) => out.put_i16_le(*i as i16),
        (HeapValue::Int(i), Prim::I32) => out.put_i32_le(*i as i32),
        (HeapValue::Int(i), Prim::I64) => out.put_i64_le(*i),
        (HeapValue::UInt(u), Prim::U8) => out.put_u8(*u as u8),
        (HeapValue::UInt(u), Prim::U16) => out.put_u16_le(*u as u16),
        (HeapValue::UInt(u), Prim::U32) => out.put_u32_le(*u as u32),
        (HeapValue::UInt(u), Prim::U64) => out.put_u64_le(*u),
        (HeapValue::Float(f), Prim::F32) => out.put_f32_le(*f as f32),
        (HeapValue::Float(f), Prim::F64) => out.put_f64_le(*f),
        (HeapValue::Bool(b), Prim::Bool) => out.put_u8(u8::from(*b)),
        (v, p) => return Err(CodecError::Shape(format!("{v:?} vs {}", p.c_name()))),
    }
    Ok(())
}

/// Decode a value against a schema. The whole input must be consumed.
pub fn decode(
    bytes: &[u8],
    ty: &TypeDesc,
    reg: &Registry,
    cfg: &CodecConfig,
) -> Result<HeapValue, CodecError> {
    let mut buf = bytes;
    let v = decode_inner(&mut buf, ty, reg, cfg, 0)?;
    if !buf.is_empty() {
        return Err(CodecError::Corrupt(format!(
            "{} trailing bytes",
            buf.len()
        )));
    }
    Ok(v)
}

fn decode_inner(
    buf: &mut &[u8],
    ty: &TypeDesc,
    reg: &Registry,
    cfg: &CodecConfig,
    depth: usize,
) -> Result<HeapValue, CodecError> {
    match ty {
        TypeDesc::Prim(p) => decode_prim(buf, *p),
        TypeDesc::Struct { fields, .. } => {
            let mut vals = Vec::with_capacity(fields.len());
            for (_, t) in fields {
                vals.push(decode_inner(buf, t, reg, cfg, depth)?);
            }
            Ok(HeapValue::Struct(vals))
        }
        TypeDesc::Array { elem, len } => {
            let mut vals = Vec::with_capacity(*len);
            for _ in 0..*len {
                vals.push(decode_inner(buf, elem, reg, cfg, depth)?);
            }
            Ok(HeapValue::Array(vals))
        }
        TypeDesc::Ptr(inner) => {
            if buf.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            let tag = buf.get_u8();
            match tag {
                0 => Ok(HeapValue::null()),
                1 => {
                    if depth >= cfg.max_depth {
                        return Err(CodecError::Corrupt(
                            "pointer depth exceeds configured maximum".into(),
                        ));
                    }
                    Ok(HeapValue::ptr_to(decode_inner(buf, inner, reg, cfg, depth + 1)?))
                }
                t => Err(CodecError::Corrupt(format!("bad pointer tag {t}"))),
            }
        }
        TypeDesc::CString { max_len } => {
            let bytes = decode_len_prefixed(buf, *max_len)?;
            String::from_utf8(bytes)
                .map(HeapValue::CString)
                .map_err(|_| CodecError::Corrupt("non-UTF-8 C string".into()))
        }
        TypeDesc::Blob { max_len } => {
            Ok(HeapValue::Blob(decode_len_prefixed(buf, *max_len)?))
        }
        TypeDesc::Named(n) => {
            let t = reg
                .get(n)
                .ok_or_else(|| CodecError::UnknownType(n.clone()))?;
            decode_inner(buf, t, reg, cfg, depth)
        }
    }
}

fn decode_len_prefixed(buf: &mut &[u8], max_len: usize) -> Result<Vec<u8>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if len > max_len {
        return Err(CodecError::Corrupt(format!(
            "length {len} exceeds schema maximum {max_len}"
        )));
    }
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn decode_prim(buf: &mut &[u8], p: Prim) -> Result<HeapValue, CodecError> {
    if buf.remaining() < p.width() {
        return Err(CodecError::Truncated);
    }
    Ok(match p {
        Prim::I8 => HeapValue::Int(buf.get_i8() as i64),
        Prim::I16 => HeapValue::Int(buf.get_i16_le() as i64),
        Prim::I32 => HeapValue::Int(buf.get_i32_le() as i64),
        Prim::I64 => HeapValue::Int(buf.get_i64_le()),
        Prim::U8 => HeapValue::UInt(buf.get_u8() as u64),
        Prim::U16 => HeapValue::UInt(buf.get_u16_le() as u64),
        Prim::U32 => HeapValue::UInt(buf.get_u32_le() as u64),
        Prim::U64 => HeapValue::UInt(buf.get_u64_le()),
        Prim::F32 => HeapValue::Float(buf.get_f32_le() as f64),
        Prim::F64 => HeapValue::Float(buf.get_f64_le()),
        Prim::Bool => match buf.get_u8() {
            0 => HeapValue::Bool(false),
            1 => HeapValue::Bool(true),
            t => return Err(CodecError::Corrupt(format!("bad bool byte {t}"))),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeDesc as T;

    fn cfg() -> CodecConfig {
        CodecConfig::default()
    }

    #[test]
    fn prim_round_trips() {
        let reg = Registry::new();
        let cases: Vec<(HeapValue, TypeDesc)> = vec![
            (HeapValue::Int(-5), T::Prim(Prim::I8)),
            (HeapValue::Int(-3000), T::Prim(Prim::I16)),
            (HeapValue::Int(1 << 20), T::Prim(Prim::I32)),
            (HeapValue::Int(i64::MIN), T::Prim(Prim::I64)),
            (HeapValue::UInt(200), T::Prim(Prim::U8)),
            (HeapValue::UInt(u64::MAX), T::Prim(Prim::U64)),
            (HeapValue::Float(3.5), T::Prim(Prim::F64)),
            (HeapValue::Bool(true), T::Prim(Prim::Bool)),
        ];
        for (v, t) in cases {
            let bytes = encode(&v, &t, &reg, &cfg()).unwrap();
            assert_eq!(bytes.len(), match &t {
                T::Prim(p) => p.width(),
                _ => unreachable!(),
            });
            assert_eq!(decode(&bytes, &t, &reg, &cfg()).unwrap(), v);
        }
    }

    #[test]
    fn struct_round_trip() {
        let reg = Registry::new();
        let t = T::strct(
            "kv_entry",
            vec![
                ("key", T::CString { max_len: 64 }),
                ("value", T::Blob { max_len: 1024 }),
                ("expires", T::Prim(Prim::U64)),
            ],
        );
        let v = HeapValue::Struct(vec![
            HeapValue::CString("user:42".into()),
            HeapValue::Blob(vec![1, 2, 3, 4]),
            HeapValue::UInt(0),
        ]);
        let bytes = encode(&v, &t, &reg, &cfg()).unwrap();
        assert_eq!(decode(&bytes, &t, &reg, &cfg()).unwrap(), v);
    }

    #[test]
    fn linked_list_round_trip() {
        let mut reg = Registry::new();
        reg.register_list_node("node", T::Prim(Prim::I64));
        let t = T::ptr(T::Named("node".into()));
        let v = HeapValue::list_from((0..10).map(HeapValue::Int));
        let bytes = encode(&v, &t, &reg, &cfg()).unwrap();
        let back = decode(&bytes, &t, &reg, &cfg()).unwrap();
        assert_eq!(back.list_values().len(), 10);
        assert_eq!(back, v);
    }

    #[test]
    fn deep_list_truncates_at_max_depth() {
        let mut reg = Registry::new();
        reg.register_list_node("node", T::Prim(Prim::I64));
        let t = T::ptr(T::Named("node".into()));
        let v = HeapValue::list_from((0..100).map(HeapValue::Int));
        let small = CodecConfig { max_depth: 10, max_bytes: 1 << 20 };
        let bytes = encode(&v, &t, &reg, &small).unwrap();
        let back = decode(&bytes, &t, &reg, &small).unwrap();
        // Only max_depth nodes survive (each node costs one pointer hop).
        assert_eq!(back.list_values().len(), 10);
    }

    #[test]
    fn string_truncates_at_schema_cap() {
        let reg = Registry::new();
        let t = T::CString { max_len: 4 };
        let v = HeapValue::CString("abcdefgh".into());
        let bytes = encode(&v, &t, &reg, &cfg()).unwrap();
        assert_eq!(
            decode(&bytes, &t, &reg, &cfg()).unwrap(),
            HeapValue::CString("abcd".into())
        );
    }

    #[test]
    fn buffer_overflow_detected() {
        let reg = Registry::new();
        let t = T::Blob { max_len: 1 << 20 };
        let v = HeapValue::Blob(vec![0; 4096]);
        let tiny = CodecConfig { max_depth: 8, max_bytes: 100 };
        assert!(matches!(
            encode(&v, &t, &reg, &tiny),
            Err(CodecError::BufferOverflow { limit: 100 })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let reg = Registry::new();
        let t = T::Prim(Prim::I32);
        assert!(matches!(
            encode(&HeapValue::Bool(true), &t, &reg, &cfg()),
            Err(CodecError::Shape(_))
        ));
    }

    #[test]
    fn unknown_named_type_rejected() {
        let reg = Registry::new();
        let t = T::Named("ghost".into());
        assert!(matches!(
            encode(&HeapValue::Int(1), &t, &reg, &cfg()),
            Err(CodecError::UnknownType(_))
        ));
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let reg = Registry::new();
        // Truncated primitive.
        assert!(matches!(
            decode(&[1, 2], &T::Prim(Prim::I32), &reg, &cfg()),
            Err(CodecError::Truncated)
        ));
        // Bad pointer tag.
        assert!(matches!(
            decode(&[7], &T::ptr(T::Prim(Prim::U8)), &reg, &cfg()),
            Err(CodecError::Corrupt(_))
        ));
        // Trailing garbage.
        let bytes = encode(&HeapValue::UInt(1), &T::Prim(Prim::U8), &reg, &cfg()).unwrap();
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(
            decode(&padded, &T::Prim(Prim::U8), &reg, &cfg()),
            Err(CodecError::Corrupt(_))
        ));
        // Length prefix exceeding schema cap.
        let mut bad = Vec::new();
        bad.extend_from_slice(&100u32.to_le_bytes());
        bad.extend_from_slice(&[0; 100]);
        assert!(matches!(
            decode(&bad, &T::CString { max_len: 4 }, &reg, &cfg()),
            Err(CodecError::Corrupt(_))
        ));
        // Bad bool byte.
        assert!(matches!(
            decode(&[2], &T::Prim(Prim::Bool), &reg, &cfg()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn nested_arrays_round_trip() {
        let reg = Registry::new();
        let t = T::array(T::array(T::Prim(Prim::U16), 2), 3);
        let v = HeapValue::Array(
            (0..3)
                .map(|i| {
                    HeapValue::Array(vec![
                        HeapValue::UInt(i * 2),
                        HeapValue::UInt(i * 2 + 1),
                    ])
                })
                .collect(),
        );
        let bytes = encode(&v, &t, &reg, &cfg()).unwrap();
        assert_eq!(bytes.len(), 12);
        assert_eq!(decode(&bytes, &t, &reg, &cfg()).unwrap(), v);
    }
}
