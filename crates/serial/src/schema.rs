//! Type descriptions for C-like data.
//!
//! A [`TypeDesc`] plays the role of the static type information that
//! C-strider extracts from C source: enough structure for a type-aware
//! traversal to serialize a heap object field by field.

use std::collections::BTreeMap;
use std::fmt;

/// Primitive (machine) types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Prim {
    /// Unsigned 8-bit.
    U8,
    /// Signed 8-bit.
    I8,
    /// Unsigned 16-bit.
    U16,
    /// Signed 16-bit.
    I16,
    /// Unsigned 32-bit.
    U32,
    /// Signed 32-bit.
    I32,
    /// Unsigned 64-bit.
    U64,
    /// Signed 64-bit.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Boolean (encoded as one byte).
    Bool,
}

impl Prim {
    /// Encoded width in bytes.
    pub fn width(self) -> usize {
        match self {
            Prim::U8 | Prim::I8 | Prim::Bool => 1,
            Prim::U16 | Prim::I16 => 2,
            Prim::U32 | Prim::I32 | Prim::F32 => 4,
            Prim::U64 | Prim::I64 | Prim::F64 => 8,
        }
    }

    /// C-like name, used by the code generator.
    pub fn c_name(self) -> &'static str {
        match self {
            Prim::U8 => "uint8_t",
            Prim::I8 => "int8_t",
            Prim::U16 => "uint16_t",
            Prim::I16 => "int16_t",
            Prim::U32 => "uint32_t",
            Prim::I32 => "int32_t",
            Prim::U64 => "uint64_t",
            Prim::I64 => "int64_t",
            Prim::F32 => "float",
            Prim::F64 => "double",
            Prim::Bool => "bool",
        }
    }
}

/// A C-like type description.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeDesc {
    /// A machine primitive.
    Prim(Prim),
    /// A struct with named, ordered fields.
    Struct {
        /// Struct tag.
        name: String,
        /// Ordered fields.
        fields: Vec<(String, TypeDesc)>,
    },
    /// A fixed-length array.
    Array {
        /// Element type.
        elem: Box<TypeDesc>,
        /// Element count.
        len: usize,
    },
    /// A nullable pointer (`T*`). Recursion through pointers is what the
    /// depth limit bounds.
    Ptr(Box<TypeDesc>),
    /// A NUL-terminated C string with a maximum serialized length.
    CString {
        /// Maximum bytes captured (longer strings truncate).
        max_len: usize,
    },
    /// Raw bytes with a runtime length (a sized `void*`), capped.
    Blob {
        /// Maximum bytes captured.
        max_len: usize,
    },
    /// A reference to a named type in a [`Registry`] — the mechanism for
    /// recursive datatypes (linked lists, trees).
    Named(String),
}

impl TypeDesc {
    /// Shorthand struct constructor.
    pub fn strct(name: impl Into<String>, fields: Vec<(&str, TypeDesc)>) -> TypeDesc {
        TypeDesc::Struct {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// Shorthand pointer constructor.
    pub fn ptr(inner: TypeDesc) -> TypeDesc {
        TypeDesc::Ptr(Box::new(inner))
    }

    /// Shorthand array constructor.
    pub fn array(elem: TypeDesc, len: usize) -> TypeDesc {
        TypeDesc::Array {
            elem: Box::new(elem),
            len,
        }
    }

    /// Whether the type (transitively, through the registry) contains a
    /// pointer — i.e. serialization may recurse.
    pub fn is_recursive_through(&self, reg: &Registry, seen: &mut Vec<String>) -> bool {
        match self {
            TypeDesc::Prim(_) | TypeDesc::CString { .. } | TypeDesc::Blob { .. } => false,
            TypeDesc::Ptr(_) => true,
            TypeDesc::Array { elem, .. } => elem.is_recursive_through(reg, seen),
            TypeDesc::Struct { fields, .. } => fields
                .iter()
                .any(|(_, t)| t.is_recursive_through(reg, seen)),
            TypeDesc::Named(n) => {
                if seen.iter().any(|s| s == n) {
                    return true;
                }
                seen.push(n.clone());
                let r = reg
                    .get(n)
                    .map(|t| t.is_recursive_through(reg, seen))
                    .unwrap_or(false);
                seen.pop();
                r
            }
        }
    }
}

impl fmt::Display for TypeDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeDesc::Prim(p) => write!(f, "{}", p.c_name()),
            TypeDesc::Struct { name, .. } => write!(f, "struct {name}"),
            TypeDesc::Array { elem, len } => write!(f, "{elem}[{len}]"),
            TypeDesc::Ptr(t) => write!(f, "{t}*"),
            TypeDesc::CString { .. } => write!(f, "char*"),
            TypeDesc::Blob { .. } => write!(f, "void*"),
            TypeDesc::Named(n) => write!(f, "{n}"),
        }
    }
}

/// A registry of named types. Named references make recursive datatypes
/// (e.g. `struct node { int v; struct node* next; }`) expressible.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    types: BTreeMap<String, TypeDesc>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a type under a name, replacing any previous binding.
    pub fn register(&mut self, name: impl Into<String>, ty: TypeDesc) {
        self.types.insert(name.into(), ty);
    }

    /// Look up a type.
    pub fn get(&self, name: &str) -> Option<&TypeDesc> {
        self.types.get(name)
    }

    /// Iterate over registered (name, type) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &TypeDesc)> {
        self.types.iter()
    }

    /// Standard linked-list node schema: `{ value: T, next: Self* }`.
    pub fn register_list_node(&mut self, name: impl Into<String>, value_ty: TypeDesc) {
        let name = name.into();
        let node = TypeDesc::Struct {
            name: name.clone(),
            fields: vec![
                ("value".to_string(), value_ty),
                ("next".to_string(), TypeDesc::ptr(TypeDesc::Named(name.clone()))),
            ],
        };
        self.register(name, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_widths() {
        assert_eq!(Prim::U8.width(), 1);
        assert_eq!(Prim::I16.width(), 2);
        assert_eq!(Prim::F32.width(), 4);
        assert_eq!(Prim::U64.width(), 8);
        assert_eq!(Prim::Bool.width(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TypeDesc::Prim(Prim::I32).to_string(), "int32_t");
        assert_eq!(
            TypeDesc::ptr(TypeDesc::Prim(Prim::U8)).to_string(),
            "uint8_t*"
        );
        assert_eq!(
            TypeDesc::array(TypeDesc::Prim(Prim::U8), 4).to_string(),
            "uint8_t[4]"
        );
    }

    #[test]
    fn registry_round_trip() {
        let mut r = Registry::new();
        r.register("point", TypeDesc::strct("point", vec![
            ("x", TypeDesc::Prim(Prim::I32)),
            ("y", TypeDesc::Prim(Prim::I32)),
        ]));
        assert!(r.get("point").is_some());
        assert!(r.get("nope").is_none());
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn list_node_is_recursive() {
        let mut r = Registry::new();
        r.register_list_node("node", TypeDesc::Prim(Prim::I64));
        let node = r.get("node").unwrap().clone();
        assert!(node.is_recursive_through(&r, &mut Vec::new()));
        let flat = TypeDesc::strct("flat", vec![("a", TypeDesc::Prim(Prim::U8))]);
        assert!(!flat.is_recursive_through(&r, &mut Vec::new()));
    }
}
