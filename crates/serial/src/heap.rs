//! Dynamic representation of C-like heap data.

use crate::schema::{Prim, Registry, TypeDesc};

/// A dynamically-typed heap object, the thing the type-aware traversal
/// walks. Mirrors [`TypeDesc`] shape-for-shape.
#[derive(Clone, Debug, PartialEq)]
pub enum HeapValue {
    /// Integer primitive (sign/width given by the schema).
    Int(i64),
    /// Unsigned primitive wide enough for u64.
    UInt(u64),
    /// Floating primitive.
    Float(f64),
    /// Boolean primitive.
    Bool(bool),
    /// Struct fields, in schema order.
    Struct(Vec<HeapValue>),
    /// Fixed-length array elements.
    Array(Vec<HeapValue>),
    /// Nullable pointer.
    Ptr(Option<Box<HeapValue>>),
    /// NUL-terminated string payload (without the NUL).
    CString(String),
    /// Sized raw bytes.
    Blob(Vec<u8>),
}

impl HeapValue {
    /// Null pointer.
    pub fn null() -> HeapValue {
        HeapValue::Ptr(None)
    }

    /// Non-null pointer.
    pub fn ptr_to(v: HeapValue) -> HeapValue {
        HeapValue::Ptr(Some(Box::new(v)))
    }

    /// Build a linked list (of `register_list_node` shape) from values.
    /// Returns the head pointer.
    pub fn list_from<I: IntoIterator<Item = HeapValue>>(values: I) -> HeapValue
    where
        I::IntoIter: DoubleEndedIterator,
    {
        let mut head = HeapValue::null();
        for v in values.into_iter().rev() {
            head = HeapValue::ptr_to(HeapValue::Struct(vec![v, head]));
        }
        head
    }

    /// Collect a linked list back into its values (inverse of
    /// [`HeapValue::list_from`]).
    pub fn list_values(&self) -> Vec<&HeapValue> {
        let mut out = Vec::new();
        let mut cur = self;
        while let HeapValue::Ptr(Some(node)) = cur {
            if let HeapValue::Struct(fields) = &**node {
                if fields.len() == 2 {
                    out.push(&fields[0]);
                    cur = &fields[1];
                    continue;
                }
            }
            break;
        }
        out
    }

    /// Check this value structurally conforms to a schema (pointers may
    /// be truncated to null relative to deeper data — that is still
    /// conformant, matching the codec's depth-capping behaviour).
    pub fn conforms(&self, ty: &TypeDesc, reg: &Registry) -> bool {
        match (self, ty) {
            (HeapValue::Int(_), TypeDesc::Prim(p)) => matches!(
                p,
                Prim::I8 | Prim::I16 | Prim::I32 | Prim::I64
            ),
            (HeapValue::UInt(_), TypeDesc::Prim(p)) => {
                matches!(p, Prim::U8 | Prim::U16 | Prim::U32 | Prim::U64)
            }
            (HeapValue::Float(_), TypeDesc::Prim(p)) => matches!(p, Prim::F32 | Prim::F64),
            (HeapValue::Bool(_), TypeDesc::Prim(Prim::Bool)) => true,
            (HeapValue::Struct(vals), TypeDesc::Struct { fields, .. }) => {
                vals.len() == fields.len()
                    && vals
                        .iter()
                        .zip(fields.iter())
                        .all(|(v, (_, t))| v.conforms(t, reg))
            }
            (HeapValue::Array(vals), TypeDesc::Array { elem, len }) => {
                vals.len() == *len && vals.iter().all(|v| v.conforms(elem, reg))
            }
            (HeapValue::Ptr(None), TypeDesc::Ptr(_)) => true,
            (HeapValue::Ptr(Some(v)), TypeDesc::Ptr(inner)) => v.conforms(inner, reg),
            (HeapValue::CString(_), TypeDesc::CString { .. }) => true,
            (HeapValue::Blob(_), TypeDesc::Blob { .. }) => true,
            (v, TypeDesc::Named(n)) => reg.get(n).is_some_and(|t| v.conforms(t, reg)),
            _ => false,
        }
    }

    /// Deep size in nodes (for accounting and tests).
    pub fn node_count(&self) -> usize {
        1 + match self {
            HeapValue::Struct(v) | HeapValue::Array(v) => v.iter().map(|x| x.node_count()).sum(),
            HeapValue::Ptr(Some(v)) => v.node_count(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Prim, Registry, TypeDesc};

    #[test]
    fn list_round_trip() {
        let l = HeapValue::list_from((0..5).map(HeapValue::Int));
        let vals = l.list_values();
        assert_eq!(vals.len(), 5);
        assert_eq!(vals[0], &HeapValue::Int(0));
        assert_eq!(vals[4], &HeapValue::Int(4));
    }

    #[test]
    fn empty_list() {
        let l = HeapValue::list_from(std::iter::empty());
        assert_eq!(l, HeapValue::null());
        assert!(l.list_values().is_empty());
    }

    #[test]
    fn conformance() {
        let mut reg = Registry::new();
        reg.register_list_node("node", TypeDesc::Prim(Prim::I64));
        let node_ptr = TypeDesc::ptr(TypeDesc::Named("node".into()));
        let l = HeapValue::list_from((0..3).map(HeapValue::Int));
        assert!(l.conforms(&node_ptr, &reg));
        // Truncated (null) lists still conform.
        assert!(HeapValue::null().conforms(&node_ptr, &reg));
        // Wrong shapes don't.
        assert!(!HeapValue::Int(1).conforms(&node_ptr, &reg));
        assert!(!HeapValue::Bool(true).conforms(&TypeDesc::Prim(Prim::I32), &reg));
    }

    #[test]
    fn node_counts() {
        assert_eq!(HeapValue::Int(1).node_count(), 1);
        let l = HeapValue::list_from((0..3).map(HeapValue::Int));
        // ptr,struct,int × 3 + terminal null = 10
        assert_eq!(l.node_count(), 10);
    }
}
