//! # csaw-serial — type-aware serialization framework (§9)
//!
//! C-Saw needs to move application state between instances (`save` /
//! `write` / `restore`), and in C this is hard: void pointers, arbitrary
//! casts, implicit allocation sizes. The paper builds on **C-strider**,
//! a type-aware heap traversal, and adds a libclang-based generator so
//! users `#include` generated serializers instead of writing them.
//!
//! This crate reproduces that design for a C-like data model:
//!
//! * [`schema`] — type descriptions ([`TypeDesc`]): primitives, structs,
//!   fixed arrays, nullable pointers, C strings, raw blobs, and named
//!   (possibly recursive) types resolved through a [`Registry`].
//! * [`heap`] — [`HeapValue`], a dynamic representation of C-like heap
//!   data that the traversal walks.
//! * [`codec`] — depth-limited encode/decode. Like the paper's prototype,
//!   "recursive datatypes \[are supported\] up to a maximum, though
//!   configurable, recursion depth … linked lists are only serialized up
//!   to a maximum length", protecting the serialization buffer.
//! * [`gen`] — a code generator that emits Rust serializer source for a
//!   schema, standing in for the paper's libclang tool; its output's LoC
//!   feed the Table-2 study ("generated serialization code … 182 LoC"
//!   for Redis's KV entry, "2380 LoC" for Suricata's packet).

pub mod codec;
pub mod gen;
pub mod heap;
pub mod schema;
pub mod snapshot;

pub use codec::{decode, encode, CodecConfig, CodecError};
pub use heap::HeapValue;
pub use schema::{Prim, Registry, TypeDesc};
pub use snapshot::{decode_table_state, encode_table_state, encode_table_state_bytes};
