//! The chunked transfer client and its audited state.

use std::time::{Duration, Instant};

use csaw_serial::{decode, encode, CodecConfig, HeapValue, Prim, Registry, TypeDesc};

/// The modelled download link (the testbed stand-in). Time is *spent*
/// (slept) so measured wall-clock durations compose naturally with the
/// real cost of the audit architecture.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// One-way latency per request.
    pub latency: Duration,
    /// Bytes per second.
    pub bandwidth: u64,
    /// Chunk size (progress/audit granularity).
    pub chunk: usize,
}

impl LinkModel {
    /// A 1GbE-like link, time-compressed for benchmarking: same
    /// latency/bandwidth *ratio* as the paper's testbed, scaled so a
    /// 10MB transfer takes ~10ms of wall clock.
    pub fn gigabit_scaled() -> LinkModel {
        LinkModel {
            latency: Duration::from_micros(200),
            bandwidth: 1_000_000_000, // modelled bytes per second
            chunk: 256 * 1024,
        }
    }

    /// Pure-model transfer time for a size (no sleeping).
    pub fn model_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth as f64)
    }
}

/// The audited program state: what the snapshot architecture captures
/// and ships to the remote logger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferState {
    /// Requested URL.
    pub url: String,
    /// Total bytes to download.
    pub total: u64,
    /// Bytes downloaded so far.
    pub done: u64,
    /// Rolling checksum of the received data (integrity evidence).
    pub checksum: u64,
    /// Invocation counter.
    pub invocation: u64,
}

impl TransferState {
    fn registry() -> Registry {
        let mut reg = Registry::new();
        reg.register(
            "transfer_state",
            TypeDesc::strct(
                "transfer_state",
                vec![
                    ("url", TypeDesc::CString { max_len: 2048 }),
                    ("total", TypeDesc::Prim(Prim::U64)),
                    ("done", TypeDesc::Prim(Prim::U64)),
                    ("checksum", TypeDesc::Prim(Prim::U64)),
                    ("invocation", TypeDesc::Prim(Prim::U64)),
                ],
            ),
        );
        reg
    }

    /// Serialize through csaw-serial.
    pub fn to_bytes(&self) -> Result<Vec<u8>, String> {
        let v = HeapValue::Struct(vec![
            HeapValue::CString(self.url.clone()),
            HeapValue::UInt(self.total),
            HeapValue::UInt(self.done),
            HeapValue::UInt(self.checksum),
            HeapValue::UInt(self.invocation),
        ]);
        encode(
            &v,
            &TypeDesc::Named("transfer_state".into()),
            &Self::registry(),
            &CodecConfig::default(),
        )
        .map_err(|e| e.to_string())
    }

    /// Deserialize.
    pub fn from_bytes(bytes: &[u8]) -> Result<TransferState, String> {
        let v = decode(
            bytes,
            &TypeDesc::Named("transfer_state".into()),
            &Self::registry(),
            &CodecConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        let HeapValue::Struct(f) = v else {
            return Err("bad transfer state".into());
        };
        let (HeapValue::CString(url), HeapValue::UInt(total), HeapValue::UInt(done),
             HeapValue::UInt(checksum), HeapValue::UInt(invocation)) =
            (&f[0], &f[1], &f[2], &f[3], &f[4])
        else {
            return Err("bad transfer state fields".into());
        };
        Ok(TransferState {
            url: url.clone(),
            total: *total,
            done: *done,
            checksum: *checksum,
            invocation: *invocation,
        })
    }
}

/// The download client.
pub struct Client {
    link: LinkModel,
    /// Current transfer state.
    pub state: TransferState,
}

impl Client {
    /// New client over a link.
    pub fn new(link: LinkModel) -> Client {
        Client {
            link,
            state: TransferState {
                url: String::new(),
                total: 0,
                done: 0,
                checksum: 0,
                invocation: 0,
            },
        }
    }

    /// Download `size` bytes from `url`, invoking `on_chunk` after each
    /// chunk (where the continuous-audit architecture hooks in). Returns
    /// the elapsed wall-clock time.
    pub fn download(
        &mut self,
        url: &str,
        size: u64,
        mut on_chunk: impl FnMut(&TransferState),
    ) -> Duration {
        let t0 = Instant::now();
        self.state = TransferState {
            url: url.to_string(),
            total: size,
            done: 0,
            checksum: 5381,
            invocation: self.state.invocation + 1,
        };
        spin_sleep(self.link.latency);
        let mut remaining = size;
        while remaining > 0 {
            let chunk = remaining.min(self.link.chunk as u64);
            spin_sleep(Duration::from_secs_f64(
                chunk as f64 / self.link.bandwidth as f64,
            ));
            self.state.done += chunk;
            // Model a rolling checksum over the received bytes.
            self.state.checksum = self
                .state
                .checksum
                .wrapping_mul(33)
                .wrapping_add(chunk);
            remaining -= chunk;
            on_chunk(&self.state);
        }
        t0.elapsed()
    }

    /// The link model.
    pub fn link(&self) -> LinkModel {
        self.link
    }
}

/// Sleep that stays accurate for sub-millisecond durations (OS sleep
/// granularity would otherwise dominate the small-file measurements).
fn spin_sleep(d: Duration) {
    if d >= Duration::from_millis(2) {
        std::thread::sleep(d);
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips() {
        let s = TransferState {
            url: "http://files.example/10mb.bin".into(),
            total: 10 << 20,
            done: 4 << 20,
            checksum: 12345,
            invocation: 3,
        };
        assert_eq!(TransferState::from_bytes(&s.to_bytes().unwrap()).unwrap(), s);
    }

    #[test]
    fn download_completes_and_reports_progress() {
        let mut c = Client::new(LinkModel {
            latency: Duration::ZERO,
            bandwidth: 1 << 30,
            chunk: 1024,
        });
        let mut chunks = 0;
        let elapsed = c.download("u", 10 * 1024, |st| {
            chunks += 1;
            assert!(st.done <= st.total);
        });
        assert_eq!(chunks, 10);
        assert_eq!(c.state.done, 10 * 1024);
        assert_eq!(c.state.invocation, 1);
        assert!(elapsed < Duration::from_secs(1));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let link = LinkModel {
            latency: Duration::ZERO,
            bandwidth: 100 << 20, // 100 MB/s
            chunk: 64 * 1024,
        };
        let mut c = Client::new(link);
        let small = c.download("u", 100 * 1024, |_| {});
        let big = c.download("u", 4 << 20, |_| {});
        assert!(
            big > small * 5,
            "big {big:?} should dwarf small {small:?}"
        );
    }

    #[test]
    fn model_time_matches_shape() {
        let link = LinkModel::gigabit_scaled();
        let t1 = link.model_time(1 << 20);
        let t2 = link.model_time(100 << 20);
        assert!(t2 > t1 * 50);
    }

    #[test]
    fn invocation_counter_advances() {
        let mut c = Client::new(LinkModel {
            latency: Duration::ZERO,
            bandwidth: 1 << 30,
            chunk: 4096,
        });
        c.download("a", 1, |_| {});
        c.download("b", 1, |_| {});
        assert_eq!(c.state.invocation, 2);
    }
}
