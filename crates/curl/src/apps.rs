//! `InstanceApp` adapters: the transfer client as the snapshot
//! architecture's *actual* instance and the remote logger as its
//! *auditor* (Fig. 4, use-cases ② and ③).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use csaw_core::value::Value;
use csaw_runtime::{HostCtx, InstanceApp};
use parking_lot::Mutex;

use crate::transfer::{Client, LinkModel, TransferState};

/// The audited transfer client ("Act"). Hook `H1` performs the download
/// whose state the snapshot captures; with continuous auditing the
/// driver invokes the junction per chunk instead.
pub struct CurlApp {
    /// The client.
    pub client: Arc<Mutex<Client>>,
    /// Download jobs (url, size) the driver queues.
    pub jobs: Arc<Mutex<Vec<(String, u64)>>>,
}

impl CurlApp {
    /// New client app over a link.
    pub fn new(link: LinkModel) -> CurlApp {
        CurlApp {
            client: Arc::new(Mutex::new(Client::new(link))),
            jobs: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl InstanceApp for CurlApp {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "H1" || name == "transfer" {
            let (url, size) = self.jobs.lock().pop().ok_or("no queued download")?;
            self.client.lock().download(&url, size, |_| {});
        }
        Ok(())
    }

    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            "n" => Ok(Value::Bytes(self.client.lock().state.to_bytes()?)),
            other => Err(format!("curl: unexpected save({other})")),
        }
    }

    fn restore(&mut self, key: &str, _value: &Value) -> Result<(), String> {
        Err(format!("curl: unexpected restore({key})"))
    }
}

/// The remote audit log ("Aud"): integrity-protected record of captured
/// transfer states.
pub struct AuditorApp {
    /// The received audit records.
    pub log: Arc<Mutex<Vec<TransferState>>>,
    /// Records appended.
    pub appended: Arc<AtomicU64>,
}

impl AuditorApp {
    /// Empty log.
    pub fn new() -> AuditorApp {
        AuditorApp {
            log: Arc::new(Mutex::new(Vec::new())),
            appended: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Default for AuditorApp {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceApp for AuditorApp {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "H2" || name == "append_log" {
            self.appended.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn save(&mut self, key: &str) -> Result<Value, String> {
        Err(format!("auditor: unexpected save({key})"))
    }

    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        match key {
            "n" => {
                let state =
                    TransferState::from_bytes(value.as_bytes().ok_or("expected bytes")?)?;
                self.log.lock().push(state);
                Ok(())
            }
            other => Err(format!("auditor: unexpected restore({other})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn table() -> csaw_kv::Table {
        let mut t = csaw_kv::Table::new();
        t.declare_data("n");
        t
    }

    #[test]
    fn curl_app_downloads_and_snapshots() {
        let mut app = CurlApp::new(LinkModel {
            latency: Duration::ZERO,
            bandwidth: 1 << 30,
            chunk: 4096,
        });
        app.jobs.lock().push(("http://x/1".into(), 8192));
        let mut t = table();
        let writes: Vec<String> = vec![];
        let mut ctx = HostCtx::new(&mut t, &writes, "Act", "junction");
        app.host_call("H1", &mut ctx).unwrap();
        let snap = app.save("n").unwrap();
        let state = TransferState::from_bytes(snap.as_bytes().unwrap()).unwrap();
        assert_eq!(state.done, 8192);
        assert_eq!(state.url, "http://x/1");
    }

    #[test]
    fn auditor_appends_records() {
        let mut aud = AuditorApp::new();
        let state = TransferState {
            url: "u".into(),
            total: 10,
            done: 10,
            checksum: 1,
            invocation: 1,
        };
        aud.restore("n", &Value::Bytes(state.to_bytes().unwrap())).unwrap();
        let mut t = table();
        let writes: Vec<String> = vec![];
        let mut ctx = HostCtx::new(&mut t, &writes, "Aud", "junction");
        aud.host_call("H2", &mut ctx).unwrap();
        assert_eq!(aud.log.lock().len(), 1);
        assert_eq!(aud.appended.load(Ordering::Relaxed), 1);
        assert_eq!(aud.log.lock()[0], state);
    }

    #[test]
    fn curl_app_requires_a_job() {
        let mut app = CurlApp::new(LinkModel::gigabit_scaled());
        let mut t = table();
        let writes: Vec<String> = vec![];
        let mut ctx = HostCtx::new(&mut t, &writes, "Act", "junction");
        assert!(app.host_call("H1", &mut ctx).is_err());
    }
}
