//! # mini-curl — the transfer-client substrate
//!
//! The paper re-architects **cURL** for remote auditing (§2, use-cases ②
//! and ③): program state is captured at key points of an invocation (or
//! continuously) and logged to a remote instance to protect its
//! integrity — the BYOD compliance scenario. The evaluation (§10.3)
//! measures download time for files from 1KB to 1.2GB in three
//! configurations: original, audited with both binaries in the same VM,
//! and audited across VMs over 1GbE.
//!
//! This crate provides:
//!
//! * [`transfer::Client`] — a chunked downloader over a modelled link
//!   (configurable latency/bandwidth, standing in for the paper's
//!   dedicated testbed; see DESIGN.md substitutions), with progress
//!   state and audit hooks at chunk boundaries;
//! * [`transfer::TransferState`] — the audited program state, serialized
//!   through `csaw-serial`;
//! * [`apps`] — `InstanceApp` adapters plugging the client into the
//!   `csaw-arch` remote-snapshot architecture (one-time and continuous
//!   audit).

pub mod apps;
pub mod transfer;

pub use transfer::{Client, LinkModel, TransferState};
