//! Live end-to-end tests: every architecture in the catalogue runs on the
//! runtime with small instrumented apps, exercising the behaviours the
//! paper claims (routing, memoization, fail-over across crashes,
//! watchdog arbitration, checkpoint recovery).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use csaw_arch::caching::{caching, CachingSpec};
use csaw_arch::checkpoint::{checkpoint, CheckpointSpec};
use csaw_arch::failover::{self, failover, FailoverSpec};
use csaw_arch::parallel_sharding::{parallel_sharding, ParallelShardingSpec};
use csaw_arch::sharding::{sharding, ShardingSpec};
use csaw_arch::watched::{self, watched_failover, WatchedSpec};
use csaw_core::program::LoadConfig;
use csaw_core::value::Value;
use csaw_core::Program;
use csaw_kv::Update;
use csaw_runtime::{HostCtx, InstanceApp, Runtime, RuntimeConfig};

fn rt_for(p: Program) -> Runtime {
    let cp = csaw_core::compile(p, &LoadConfig::new()).unwrap();
    Runtime::new(&cp, RuntimeConfig::default())
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

// ---------------------------------------------------------------------
// Sharding (Fig. 5)
// ---------------------------------------------------------------------

/// Front app: `Choose` routes by the request's key hash; driver deposits
/// requests into `pending`.
struct ShardFront {
    pending: Arc<Mutex<Vec<u64>>>,
    current: Option<u64>,
    responses: Arc<Mutex<Vec<i64>>>,
    n_backends: usize,
}

impl InstanceApp for ShardFront {
    fn host_call(&mut self, name: &str, ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "Choose" {
            let key = self.pending.lock().unwrap().pop().ok_or("no pending request")?;
            self.current = Some(key);
            let shard = (key % self.n_backends as u64) as usize + 1;
            ctx.set_idx("tgt", &format!("Bck{shard}"))?;
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.current.ok_or("no current")? as i64))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.responses
            .lock()
            .unwrap()
            .push(value.as_int().ok_or("bad response")?);
        Ok(())
    }
}

/// Back-end app: `Handle` doubles the request and counts it.
#[derive(Clone)]
struct ShardBack {
    handled: Arc<AtomicU64>,
    last: i64,
}

impl InstanceApp for ShardBack {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "Handle" {
            self.handled.fetch_add(1, Ordering::SeqCst);
            self.last *= 2;
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.last))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.last = value.as_int().ok_or("bad request")?;
        Ok(())
    }
}

#[test]
fn sharding_routes_by_choice_function() {
    let spec = ShardingSpec::default();
    let rt = rt_for(sharding(&spec));
    let pending = Arc::new(Mutex::new(Vec::new()));
    let responses = Arc::new(Mutex::new(Vec::new()));
    rt.bind_app(
        "Fnt",
        Box::new(ShardFront {
            pending: Arc::clone(&pending),
            current: None,
            responses: Arc::clone(&responses),
            n_backends: 4,
        }),
    );
    let counters: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, c) in counters.iter().enumerate() {
        rt.bind_app(
            &format!("Bck{}", i + 1),
            Box::new(ShardBack { handled: Arc::clone(c), last: 0 }),
        );
    }
    rt.set_policy("Fnt", "junction", csaw_runtime::runtime::Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_millis(500))]).unwrap();

    // 12 requests, keys 0..12 → 3 per shard, responses are key*2.
    for key in 0..12u64 {
        pending.lock().unwrap().push(key);
        rt.invoke("Fnt", "junction").unwrap();
    }
    assert!(wait_until(Duration::from_secs(5), || {
        responses.lock().unwrap().len() == 12
    }));
    for c in &counters {
        assert_eq!(c.load(Ordering::SeqCst), 3);
    }
    let mut rs = responses.lock().unwrap().clone();
    rs.sort();
    assert_eq!(rs, (0..12).map(|k| k * 2).collect::<Vec<i64>>());
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Parallel sharding (Fig. 6)
// ---------------------------------------------------------------------

struct ParFront {
    subset: Vec<String>,
    payload: i64,
}

impl InstanceApp for ParFront {
    fn host_call(&mut self, name: &str, ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "Choose" {
            let elems: Vec<csaw_core::names::SetElem> = self
                .subset
                .iter()
                .map(|s| csaw_core::names::SetElem::Instance(s.clone()))
                .collect();
            ctx.set_subset("tgt", elems)?;
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.payload))
    }
    fn restore(&mut self, _key: &str, _value: &Value) -> Result<(), String> {
        Ok(())
    }
}

#[derive(Clone)]
struct CountingBack {
    handled: Arc<AtomicU64>,
}

impl InstanceApp for CountingBack {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "Handle" {
            self.handled.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(0))
    }
    fn restore(&mut self, _key: &str, _value: &Value) -> Result<(), String> {
        Ok(())
    }
}

#[test]
fn parallel_sharding_fans_out_to_subset_only() {
    let spec = ParallelShardingSpec::default();
    let rt = rt_for(parallel_sharding(&spec));
    rt.bind_app(
        "Fnt",
        Box::new(ParFront {
            subset: vec!["Bck1".into(), "Bck3".into()],
            payload: 7,
        }),
    );
    let counters: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, c) in counters.iter().enumerate() {
        rt.bind_app(
            &format!("Bck{}", i + 1),
            Box::new(CountingBack { handled: Arc::clone(c) }),
        );
    }
    rt.set_policy("Fnt", "junction", csaw_runtime::runtime::Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_millis(500))]).unwrap();
    rt.invoke("Fnt", "junction").unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        counters[0].load(Ordering::SeqCst) == 1 && counters[2].load(Ordering::SeqCst) == 1
    }));
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(counters[1].load(Ordering::SeqCst), 0);
    assert_eq!(counters[3].load(Ordering::SeqCst), 0);
    // No complains (at least one backend succeeded).
    assert!(rt.take_events().iter().all(|e| e.kind != "complain"));
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Caching (Fig. 7)
// ---------------------------------------------------------------------

struct CacheApp {
    pending: Arc<Mutex<Vec<i64>>>,
    current: i64,
    cache: std::collections::HashMap<i64, i64>,
    served: Arc<Mutex<Vec<i64>>>,
    hits: Arc<AtomicU64>,
}

impl InstanceApp for CacheApp {
    fn host_call(&mut self, name: &str, ctx: &mut HostCtx<'_>) -> Result<(), String> {
        match name {
            "CheckCacheable" => {
                self.current = self.pending.lock().unwrap().pop().ok_or("no request")?;
                // Negative keys model uncacheable requests.
                ctx.set_prop("Cacheable", self.current >= 0)?;
            }
            "LookupCache" => {
                if let Some(v) = self.cache.get(&self.current) {
                    self.hits.fetch_add(1, Ordering::SeqCst);
                    self.served.lock().unwrap().push(*v);
                    ctx.set_prop("Cached", true)?;
                } else {
                    ctx.set_prop("Cached", false)?;
                }
            }
            "UpdateCache" => {
                let v = *self.served.lock().unwrap().last().ok_or("nothing served")?;
                self.cache.insert(self.current, v);
            }
            _ => {}
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.current))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.served
            .lock()
            .unwrap()
            .push(value.as_int().ok_or("bad value")?);
        Ok(())
    }
}

struct FunApp {
    calls: Arc<AtomicU64>,
    last: i64,
}

impl InstanceApp for FunApp {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "F" {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.last = self.last * self.last + 1; // some pure-ish function
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.last))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.last = value.as_int().ok_or("bad arg")?;
        Ok(())
    }
}

#[test]
fn caching_memoizes_repeat_requests() {
    let spec = CachingSpec::default();
    let rt = rt_for(caching(&spec));
    let pending = Arc::new(Mutex::new(Vec::new()));
    let served = Arc::new(Mutex::new(Vec::new()));
    let hits = Arc::new(AtomicU64::new(0));
    let calls = Arc::new(AtomicU64::new(0));
    rt.bind_app(
        "Cache",
        Box::new(CacheApp {
            pending: Arc::clone(&pending),
            current: 0,
            cache: Default::default(),
            served: Arc::clone(&served),
            hits: Arc::clone(&hits),
        }),
    );
    rt.bind_app("Fun", Box::new(FunApp { calls: Arc::clone(&calls), last: 0 }));
    rt.set_policy("Cache", "junction", csaw_runtime::runtime::Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_millis(500))]).unwrap();

    // Keys: 5 ×3 repeats, 9 ×2, and one uncacheable (-1) twice.
    for key in [5, 5, 5, 9, 9, -1, -1] {
        pending.lock().unwrap().push(key);
        rt.invoke("Cache", "junction").unwrap();
    }
    assert!(wait_until(Duration::from_secs(5), || {
        served.lock().unwrap().len() == 7
    }));
    // Fun ran once per distinct cacheable key + once per uncacheable
    // request: 5, 9, -1, -1 → 4 calls; 3 hits.
    assert_eq!(calls.load(Ordering::SeqCst), 4);
    assert_eq!(hits.load(Ordering::SeqCst), 3);
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Fail-over (§7.3)
// ---------------------------------------------------------------------

/// Front-end app: canonical state is a counter; requests come from
/// `pending`; responses land in `responses`.
struct FoFront {
    state: i64,
    pending: Arc<Mutex<Vec<i64>>>,
    current: i64,
    responses: Arc<Mutex<Vec<i64>>>,
}

impl InstanceApp for FoFront {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        match name {
            "H1" => {
                self.current = self.pending.lock().unwrap().pop().ok_or("no request")?;
            }
            "H3" => {}
            _ => {}
        }
        Ok(())
    }
    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            "state" => Ok(Value::Int(self.state)),
            "req" => Ok(Value::Int(self.current)),
            other => Err(format!("unexpected save({other})")),
        }
    }
    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        let v = value.as_int().ok_or("bad value")?;
        match key {
            "state" => self.state = v,
            "preresp" => {
                self.responses.lock().unwrap().push(v);
                self.state += 1; // the served request advances the state
            }
            other => return Err(format!("unexpected restore({other})")),
        }
        Ok(())
    }
}

/// Back-end app: synchronized state + request; H2 computes the response.
#[derive(Clone)]
struct FoBack {
    state: i64,
    req: i64,
    resp: i64,
    served: Arc<AtomicU64>,
    synced: Arc<AtomicU64>,
}

impl InstanceApp for FoBack {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "H2" {
            self.resp = self.state * 1000 + self.req;
            self.served.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    }
    fn save(&mut self, key: &str) -> Result<Value, String> {
        match key {
            "preresp" => Ok(Value::Int(self.resp)),
            other => Err(format!("unexpected save({other})")),
        }
    }
    fn restore(&mut self, key: &str, value: &Value) -> Result<(), String> {
        let v = value.as_int().ok_or("bad value")?;
        match key {
            "state" => {
                self.state = v;
                self.synced.fetch_add(1, Ordering::SeqCst);
            }
            "req" => self.req = v,
            other => return Err(format!("unexpected restore({other})")),
        }
        Ok(())
    }
}

#[allow(clippy::type_complexity)] // test fixture bundle
fn failover_runtime(
    t: Duration,
) -> (Runtime, Arc<Mutex<Vec<i64>>>, Arc<Mutex<Vec<i64>>>, Vec<Arc<AtomicU64>>) {
    let spec = FailoverSpec::default();
    let rt = rt_for(failover(&spec));
    let pending = Arc::new(Mutex::new(Vec::new()));
    let responses = Arc::new(Mutex::new(Vec::new()));
    rt.bind_app(
        "f",
        Box::new(FoFront {
            state: 100,
            pending: Arc::clone(&pending),
            current: 0,
            responses: Arc::clone(&responses),
        }),
    );
    let served: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, s) in served.iter().enumerate() {
        rt.bind_app(
            &format!("b{}", i + 1),
            Box::new(FoBack {
                state: 0,
                req: 0,
                resp: 0,
                served: Arc::clone(s),
                synced: Arc::new(AtomicU64::new(0)),
            }),
        );
    }
    failover::configure_policies(&rt, &spec, t);
    rt.run_main(vec![Value::Duration(t)]).unwrap();
    (rt, pending, responses, served)
}

fn fo_request(rt: &Runtime, pending: &Arc<Mutex<Vec<i64>>>, req: i64) {
    pending.lock().unwrap().push(req);
    rt.deliver_for_test("f", "c", Update::assert("Req", "client"));
}

#[test]
fn failover_serves_through_both_backends() {
    let (rt, pending, responses, served) = failover_runtime(Duration::from_millis(300));
    // Wait for startup (f::c leaves Starting).
    assert!(wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    }));
    fo_request(&rt, &pending, 7);
    assert!(wait_until(Duration::from_secs(5), || {
        responses.lock().unwrap().len() == 1
    }));
    // Both warm replicas served the request (write-to-all design).
    assert_eq!(served[0].load(Ordering::SeqCst), 1);
    assert_eq!(served[1].load(Ordering::SeqCst), 1);
    // Response embeds the synchronized state (100) and the request (7).
    assert_eq!(responses.lock().unwrap()[0], 100_007);
    rt.shutdown();
}

#[test]
fn failover_survives_one_backend_crash() {
    let (rt, pending, responses, served) = failover_runtime(Duration::from_millis(200));
    assert!(wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    }));
    fo_request(&rt, &pending, 1);
    assert!(wait_until(Duration::from_secs(5), || {
        responses.lock().unwrap().len() == 1
    }));
    rt.crash("b1");
    fo_request(&rt, &pending, 2);
    // The b1 arm times out and demotes; b2 serves.
    assert!(wait_until(Duration::from_secs(10), || {
        responses.lock().unwrap().len() == 2
    }));
    assert!(served[1].load(Ordering::SeqCst) >= 2);
    assert_eq!(rt.peek_prop("f", "c", "Backend[b1::serve]"), Some(false));
    assert_eq!(rt.peek_prop("f", "c", "Backend[b2::serve]"), Some(true));
    rt.shutdown();
}

#[test]
fn failover_complains_when_all_backends_dead() {
    let (rt, pending, _responses, _served) = failover_runtime(Duration::from_millis(150));
    assert!(wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    }));
    rt.crash("b1");
    rt.crash("b2");
    fo_request(&rt, &pending, 3);
    assert!(wait_until(Duration::from_secs(10), || {
        rt.take_events().iter().any(|e| e.kind == "complain" && e.instance == "f")
    }));
    rt.shutdown();
}

#[test]
fn failover_backend_reregisters_after_restart() {
    let (rt, pending, responses, served) = failover_runtime(Duration::from_millis(200));
    assert!(wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    }));
    rt.crash("b1");
    fo_request(&rt, &pending, 1);
    assert!(wait_until(Duration::from_secs(10), || {
        responses.lock().unwrap().len() == 1
    }));
    // Restart b1: its startup junction re-registers with f::b, which
    // re-Initializes it and republishes Backend[b1::serve] at f::c.
    rt.restart("b1").unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        rt.peek_prop("f", "c", "Backend[b1::serve]") == Some(true)
    }));
    fo_request(&rt, &pending, 2);
    assert!(wait_until(Duration::from_secs(10), || {
        responses.lock().unwrap().len() == 2
    }));
    // b1 missed request 1 (it was down) but serves request 2 after
    // resynchronizing.
    assert!(wait_until(Duration::from_secs(5), || {
        served[0].load(Ordering::SeqCst) >= 1
    }));
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Watched fail-over (§7.4)
// ---------------------------------------------------------------------

struct WFront {
    pending: Arc<Mutex<Vec<i64>>>,
    current: i64,
    responses: Arc<Mutex<Vec<i64>>>,
}

impl InstanceApp for WFront {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "H1" {
            self.current = self.pending.lock().unwrap().pop().ok_or("no request")?;
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.current))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.responses
            .lock()
            .unwrap()
            .push(value.as_int().ok_or("bad resp")?);
        Ok(())
    }
}

#[derive(Clone)]
struct WBack {
    id: i64,
    req: i64,
    served: Arc<AtomicU64>,
}

impl InstanceApp for WBack {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        if name == "H2" {
            self.served.fetch_add(1, Ordering::SeqCst);
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.id * 1000 + self.req))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.req = value.as_int().ok_or("bad req")?;
        Ok(())
    }
}

#[test]
fn watched_failover_prefers_o_then_fails_over_to_s() {
    let spec = WatchedSpec::default();
    let rt = rt_for(watched_failover(&spec));
    let pending = Arc::new(Mutex::new(Vec::new()));
    let responses = Arc::new(Mutex::new(Vec::new()));
    rt.bind_app(
        "f",
        Box::new(WFront {
            pending: Arc::clone(&pending),
            current: 0,
            responses: Arc::clone(&responses),
        }),
    );
    let o_served = Arc::new(AtomicU64::new(0));
    let s_served = Arc::new(AtomicU64::new(0));
    rt.bind_app("o", Box::new(WBack { id: 1, req: 0, served: Arc::clone(&o_served) }));
    rt.bind_app("s", Box::new(WBack { id: 2, req: 0, served: Arc::clone(&s_served) }));
    watched::configure_policies(&rt, &spec, Duration::from_millis(20));
    rt.run_main(vec![Value::Duration(Duration::from_millis(250))]).unwrap();

    // Normal mode: neither failover nor nofailover is set; the front-end
    // dispatches to both, but only `o` replies (τs's case skips).
    pending.lock().unwrap().push(7);
    rt.invoke("f", "junction").unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        responses.lock().unwrap().len() == 1
    }));
    assert_eq!(responses.lock().unwrap()[0], 1007, "o's reply (id 1)");

    // Crash o → the watchdog raises `failover` at f and s.
    rt.crash("o");
    assert!(wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "junction", "failover") == Some(true)
            && rt.peek_prop("s", "junction", "failover") == Some(true)
    }));
    // Retractions from the previous request may still be in flight, and
    // a failed attempt consumes the queued request (H1 runs before the
    // safety verifies) — re-queue on each retry.
    assert!(wait_until(Duration::from_secs(5), || {
        if pending.lock().unwrap().is_empty() {
            pending.lock().unwrap().push(8);
        }
        rt.invoke("f", "junction").is_ok()
    }));
    assert!(wait_until(Duration::from_secs(5), || {
        responses.lock().unwrap().len() == 2
    }));
    assert_eq!(responses.lock().unwrap()[1], 2008, "s's reply (id 2)");
    assert!(s_served.load(Ordering::SeqCst) >= 1);
    rt.shutdown();
}

#[test]
fn watched_failover_unrecoverable_complains() {
    let spec = WatchedSpec::default();
    let rt = rt_for(watched_failover(&spec));
    watched::configure_policies(&rt, &spec, Duration::from_millis(20));
    rt.run_main(vec![Value::Duration(Duration::from_millis(200))]).unwrap();
    rt.crash("o");
    rt.crash("s");
    assert!(wait_until(Duration::from_secs(5), || {
        rt.take_events()
            .iter()
            .any(|e| e.kind == "complain" && e.instance == "w")
    }));
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Checkpoint (§10.1)
// ---------------------------------------------------------------------

struct CkptPrimary {
    counter: Arc<AtomicU64>,
}

impl InstanceApp for CkptPrimary {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        Ok(Value::Int(self.counter.load(Ordering::SeqCst) as i64))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        self.counter
            .store(value.as_int().ok_or("bad state")? as u64, Ordering::SeqCst);
        Ok(())
    }
}

struct CkptStore {
    latest: Arc<Mutex<Option<Value>>>,
}

impl InstanceApp for CkptStore {
    fn host_call(&mut self, _name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        self.latest.lock().unwrap().clone().ok_or("no checkpoint stored".into())
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        *self.latest.lock().unwrap() = Some(value.clone());
        Ok(())
    }
}

#[test]
fn checkpoint_recovers_after_crash() {
    let spec = CheckpointSpec::default();
    let rt = rt_for(checkpoint(&spec));
    let counter = Arc::new(AtomicU64::new(0));
    let latest = Arc::new(Mutex::new(None));
    rt.bind_app("Prim", Box::new(CkptPrimary { counter: Arc::clone(&counter) }));
    rt.bind_app("Store", Box::new(CkptStore { latest: Arc::clone(&latest) }));
    rt.set_policy(
        "Prim",
        "checkpoint",
        csaw_runtime::runtime::Policy::Periodic(Duration::from_millis(25)),
    );
    rt.run_main(vec![Value::Duration(Duration::from_millis(500))]).unwrap();

    // Advance the app state and let a checkpoint capture it.
    counter.store(42, Ordering::SeqCst);
    assert!(wait_until(Duration::from_secs(5), || {
        matches!(*latest.lock().unwrap(), Some(Value::Int(v)) if v >= 42)
    }));

    // Crash: lose state. Pause checkpointing during recovery (else the
    // post-crash zero state would immediately overwrite the backup),
    // restart and recover from the checkpoint.
    rt.crash("Prim");
    counter.store(0, Ordering::SeqCst);
    rt.set_policy("Prim", "checkpoint", csaw_runtime::runtime::Policy::OnDemand);
    rt.restart("Prim").unwrap();
    rt.deliver_for_test("Prim", "recover", Update::assert("NeedState", "driver"));
    assert!(wait_until(Duration::from_secs(5), || {
        counter.load(Ordering::SeqCst) == 42
    }));
    rt.shutdown();
}
